// Smith-Waterman local alignment with affine gaps (Gotoh), with traceback.
//
// This is the extension kernel of the BWA-MEM-style aligner: seeds found by FM-index
// backward search are extended against a reference window with SW.
//
// Two implementations share the SwResult API:
//   * SmithWaterman — the production kernel: band-limited around the main diagonal
//     sweep, two rolling score rows (O(band) score memory) plus a byte-per-cell
//     traceback (O(|query| * band)), instead of the full version's three
//     (m+1) x (n+1) int matrices. With the default band the kernel covers every
//     diagonal reachable by |n - m| shift plus kDefaultBandRadius of indel drift,
//     which is exhaustive for seed-anchored extension windows.
//   * SmithWatermanFull — the original full-matrix kernel, kept as the test oracle;
//     the banded kernel is parity-tested against it.

#ifndef PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_
#define PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/simd.h"

namespace persona::align {

struct SwParams {
  int match = 2;
  int mismatch = -3;
  int gap_open = -5;    // cost of the first base of a gap (applied once)
  int gap_extend = -1;  // cost of each subsequent gap base
  // Half-width of the diagonal band explored beyond the |ref|-|query| length
  // difference. <= 0 selects kDefaultBandRadius. A radius >= max(|ref|, |query|)
  // makes the banded kernel exactly equivalent to the full-matrix one.
  int band_radius = 0;
};

inline constexpr int kDefaultBandRadius = 32;

struct SwResult {
  int score = 0;
  // Half-open alignment windows in query and reference coordinates.
  int query_begin = 0;
  int query_end = 0;
  int ref_begin = 0;
  int ref_end = 0;
  std::string cigar;  // covers [query_begin, query_end); no clips included
};

// Reusable row/traceback buffers for the banded kernel; one scratch serves any number
// of sequential SmithWaterman calls (batched extension reuses it per thread).
// The fill stores only the banded H matrix; traceback decisions are re-derived from
// the recurrences (E rows / F columns recomputed on demand), which keeps the fill's
// inner loop to two stores and no flag computation.
struct SwScratch {
  AlignedVector<int32_t> h;        // banded H matrix: |query| rows x band width
  std::vector<int> f_prev, f_cur;  // rolling F rows for the fill
  std::vector<int> e_row;          // traceback: E values of one recomputed row
  std::vector<int> f_col;          // traceback: F values of one recomputed column
  std::vector<std::pair<char, int>> runs;
  // Striped (Farrar) fill buffers, used only at vector dispatch levels. All are
  // read with aligned 32-byte vector loads, hence AlignedVector.
  AlignedVector<uint8_t> sq;        // striped query bytes
  AlignedVector<int32_t> sprofile;  // 5 x stripes x lanes query profile
  AlignedVector<int32_t> srow;      // 1-based query row per striped position
  AlignedVector<int32_t> sh;        // striped H: n_cols columns x stripes x lanes
  AlignedVector<int32_t> se;        // E entering the current column
  AlignedVector<int32_t> sf;        // F within the current column (lazy-F loop)
  AlignedVector<int32_t> soob;      // out-of-band masks for the current column
  AlignedVector<int32_t> szero;     // the all-zero virtual column 0
  AlignedVector<int32_t> sbest;     // per-position running max
  AlignedVector<int32_t> sbest_j;   // earliest column achieving it
};

// Band-limited two-row local alignment (see header comment). Returns score 0 (empty
// cigar) when no positive-scoring alignment exists inside the band. `scratch` may be
// null (a call-local scratch is used).
SwResult SmithWaterman(std::string_view ref, std::string_view query, const SwParams& params = {},
                       SwScratch* scratch = nullptr);

// Same kernel pinned to an explicit dispatch level (parity tests and the bench
// drive every level on identical inputs through this). kScalar runs the banded
// two-row fill; kSse4/kAvx2 run the Farrar-striped fill, which produces
// bit-identical results (score, positions, CIGAR) for the standard negative gap
// penalties. An unsupported level falls back to kScalar rather than faulting.
// SmithWaterman == SmithWatermanAtLevel(..., ActiveSimdLevel()).
SwResult SmithWatermanAtLevel(std::string_view ref, std::string_view query,
                              const SwParams& params, SwScratch* scratch, SimdLevel level);

// Full O(|ref| * |query|) local alignment (test oracle).
SwResult SmithWatermanFull(std::string_view ref, std::string_view query,
                           const SwParams& params = {});

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_
