// Smith-Waterman local alignment with affine gaps (Gotoh), with traceback.
//
// This is the extension kernel of the BWA-MEM-style aligner: seeds found by FM-index
// backward search are extended against a reference window with SW. Tests also use it as
// a scoring oracle.

#ifndef PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_
#define PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_

#include <string>
#include <string_view>

namespace persona::align {

struct SwParams {
  int match = 2;
  int mismatch = -3;
  int gap_open = -5;    // cost of the first base of a gap (applied once)
  int gap_extend = -1;  // cost of each subsequent gap base
};

struct SwResult {
  int score = 0;
  // Half-open alignment windows in query and reference coordinates.
  int query_begin = 0;
  int query_end = 0;
  int ref_begin = 0;
  int ref_end = 0;
  std::string cigar;  // covers [query_begin, query_end); no clips included
};

// Full O(|ref| * |query|) local alignment. Returns score 0 (empty cigar) when no positive-
// scoring alignment exists.
SwResult SmithWaterman(std::string_view ref, std::string_view query, const SwParams& params = {});

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SMITH_WATERMAN_H_
