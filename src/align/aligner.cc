#include "src/align/aligner.h"

#include <cstdlib>

namespace persona::align {

void Aligner::AlignBatch(std::span<const genome::Read> reads,
                         std::span<AlignmentResult> results, AlignerScratch* scratch,
                         AlignProfile* profile) const {
  (void)scratch;
  for (size_t i = 0; i < reads.size(); ++i) {
    results[i] = Align(reads[i], profile);
  }
}

std::pair<AlignmentResult, AlignmentResult> Aligner::AlignPair(const genome::Read& read1,
                                                               const genome::Read& read2,
                                                               AlignProfile* profile) const {
  AlignmentResult r1 = Align(read1, profile);
  AlignmentResult r2 = Align(read2, profile);
  FinalizePair(&r1, &r2);
  return {std::move(r1), std::move(r2)};
}

void Aligner::FinalizePair(AlignmentResult* r1, AlignmentResult* r2) {
  r1->flags |= kFlagPaired | kFlagFirstInPair;
  r2->flags |= kFlagPaired | kFlagSecondInPair;

  if (!r1->mapped()) {
    r2->flags |= kFlagMateUnmapped;
  }
  if (!r2->mapped()) {
    r1->flags |= kFlagMateUnmapped;
  }
  if (r1->mapped() && r2->mapped()) {
    r1->mate_location = r2->location;
    r2->mate_location = r1->location;
    if (r2->reverse()) {
      r1->flags |= kFlagMateReverse;
    }
    if (r1->reverse()) {
      r2->flags |= kFlagMateReverse;
    }
    // Proper pair: opposite strands within a plausible insert distance.
    int64_t span = std::llabs(r2->location - r1->location);
    bool opposite = r1->reverse() != r2->reverse();
    if (opposite && span < 10'000) {
      r1->flags |= kFlagProperPair;
      r2->flags |= kFlagProperPair;
      int64_t tlen = span + 101;  // approximate: span + read length
      if (r1->location <= r2->location) {
        r1->template_length = static_cast<int32_t>(tlen);
        r2->template_length = static_cast<int32_t>(-tlen);
      } else {
        r1->template_length = static_cast<int32_t>(-tlen);
        r2->template_length = static_cast<int32_t>(tlen);
      }
    }
  }
}

}  // namespace persona::align
