// Landau-Vishkin SSE4.1 kernel (4 x int32 lanes). This TU is compiled with
// -msse4.1; LvPassSse4 must only be called after SimdLevelSupported(kSse4).

#include "src/align/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstring>

namespace {

struct SseOps {
  using V = __m128i;
  static constexpr int kWidth = persona::align::simd::kLvLanesSse4;

  static V Set1(int32_t x) { return _mm_set1_epi32(x); }
  static V LoadA(const int32_t* p) { return _mm_load_si128(reinterpret_cast<const V*>(p)); }
  static void StoreA(int32_t* p, V v) { _mm_store_si128(reinterpret_cast<V*>(p), v); }
  static V Min(V x, V y) { return _mm_min_epi32(x, y); }
  static V Add(V x, V y) { return _mm_add_epi32(x, y); }
  static V CmpEq(V x, V y) { return _mm_cmpeq_epi32(x, y); }
  static V CmpGt(V x, V y) { return _mm_cmpgt_epi32(x, y); }
  // mask lanes (-1/0) pick b over a.
  static V Blend(V x, V y, V mask) { return _mm_blendv_epi8(x, y, mask); }
  // 4 bytes -> 4 zero-extended int32 lanes.
  static V LoadBytes(const uint8_t* p) {
    int32_t bits;
    std::memcpy(&bits, p, sizeof(bits));
    return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(bits));
  }
};

}  // namespace

#include "src/align/lv_simd.inc.h"

namespace persona::align::simd {

void LvPassSse4(const LvPassArgs& args) { LvPassImpl<SseOps>(args); }

}  // namespace persona::align::simd

#else  // !x86

#include <cstdlib>

namespace persona::align::simd {

// Never reachable: HighestSupportedSimdLevel() is kScalar off x86, and callers
// gate on SimdLevelSupported. Defined so the symbol always links.
void LvPassSse4(const LvPassArgs&) { std::abort(); }

}  // namespace persona::align::simd

#endif
