#include "src/align/alignment.h"

#include "src/util/varint.h"

namespace persona::align {

void EncodeResult(const AlignmentResult& result, Buffer* out) {
  PutSignedVarint(result.location, out);
  PutSignedVarint(result.mate_location, out);
  PutSignedVarint(result.template_length, out);
  PutVarint(result.flags, out);
  PutVarint(result.mapq, out);
  PutSignedVarint(result.edit_distance, out);
  PutSignedVarint(result.score, out);
  PutVarint(result.cigar.size(), out);
  out->Append(result.cigar);
}

Status DecodeResult(std::span<const uint8_t> bytes, size_t* offset, AlignmentResult* out) {
  PERSONA_ASSIGN_OR_RETURN(out->location, GetSignedVarint(bytes, offset));
  PERSONA_ASSIGN_OR_RETURN(out->mate_location, GetSignedVarint(bytes, offset));
  PERSONA_ASSIGN_OR_RETURN(int64_t tlen, GetSignedVarint(bytes, offset));
  out->template_length = static_cast<int32_t>(tlen);
  PERSONA_ASSIGN_OR_RETURN(uint64_t flags, GetVarint(bytes, offset));
  out->flags = static_cast<uint16_t>(flags);
  PERSONA_ASSIGN_OR_RETURN(uint64_t mapq, GetVarint(bytes, offset));
  out->mapq = static_cast<uint8_t>(mapq);
  PERSONA_ASSIGN_OR_RETURN(int64_t ed, GetSignedVarint(bytes, offset));
  out->edit_distance = static_cast<int16_t>(ed);
  PERSONA_ASSIGN_OR_RETURN(int64_t score, GetSignedVarint(bytes, offset));
  out->score = static_cast<int32_t>(score);
  PERSONA_ASSIGN_OR_RETURN(uint64_t cigar_len, GetVarint(bytes, offset));
  if (*offset + cigar_len > bytes.size()) {
    return DataLossError("result record: truncated cigar");
  }
  out->cigar.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, cigar_len);
  *offset += cigar_len;
  return OkStatus();
}

Result<std::vector<CigarOp>> ParseCigar(std::string_view cigar) {
  std::vector<CigarOp> ops;
  if (cigar.empty() || cigar == "*") {
    return ops;
  }
  int64_t run = 0;
  bool have_digits = false;
  for (char c : cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + (c - '0');
      have_digits = true;
      continue;
    }
    switch (c) {
      case 'M':
      case 'I':
      case 'D':
      case 'N':
      case 'S':
      case 'H':
      case 'P':
      case '=':
      case 'X':
        break;
      default:
        return InvalidArgumentError("CIGAR: unknown op letter");
    }
    if (!have_digits || run <= 0) {
      return InvalidArgumentError("CIGAR: op without a positive length");
    }
    ops.push_back({c, run});
    run = 0;
    have_digits = false;
  }
  if (have_digits) {
    return InvalidArgumentError("CIGAR: trailing digits without an op");
  }
  return ops;
}

int64_t CigarQuerySpan(const std::string& cigar) {
  int64_t span = 0;
  int64_t run = 0;
  for (char c : cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + (c - '0');
      continue;
    }
    switch (c) {
      case 'M':
      case 'I':
      case 'S':
      case '=':
      case 'X':
        span += run;
        break;
      default:
        break;  // D, N, H, P consume no read bases
    }
    run = 0;
  }
  return span;
}

int64_t CigarReferenceSpan(const std::string& cigar) {
  int64_t span = 0;
  int64_t run = 0;
  for (char c : cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + (c - '0');
      continue;
    }
    switch (c) {
      case 'M':
      case 'D':
      case 'N':
      case '=':
      case 'X':
        span += run;
        break;
      default:
        break;  // I, S, H, P consume no reference
    }
    run = 0;
  }
  return span;
}

}  // namespace persona::align
