#include "src/align/seed_index.h"

#include <algorithm>
#include <bit>

namespace persona::align {

namespace {

// 2-bit base code; returns 4 for non-ACGT.
inline uint32_t Code2(char c) {
  switch (c) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return 4;
  }
}

}  // namespace

bool SeedIndex::PackSeed(std::string_view bases, size_t offset, int seed_length,
                         uint64_t* seed) {
  if (offset + static_cast<size_t>(seed_length) > bases.size()) {
    return false;
  }
  uint64_t s = 0;
  for (int i = 0; i < seed_length; ++i) {
    uint32_t code = Code2(bases[offset + static_cast<size_t>(i)]);
    if (code >= 4) {
      return false;
    }
    s = (s << 2) | code;
  }
  *seed = s;
  return true;
}

Result<SeedIndex> SeedIndex::Build(const genome::ReferenceGenome& reference,
                                   const SeedIndexOptions& options) {
  if (options.seed_length < 8 || options.seed_length > 31) {
    return InvalidArgumentError("seed_length must be in [8, 31]");
  }
  if (options.build_stride < 1) {
    return InvalidArgumentError("build_stride must be >= 1");
  }
  if (reference.total_length() > static_cast<int64_t>(UINT32_MAX)) {
    return InvalidArgumentError("reference too large for 32-bit positions");
  }

  // Pass 1: collect (seed, global position) pairs.
  struct SeedPos {
    uint64_t seed;
    uint32_t pos;
  };
  std::vector<SeedPos> pairs;
  pairs.reserve(static_cast<size_t>(reference.total_length() / options.build_stride + 1));

  for (size_t ci = 0; ci < reference.num_contigs(); ++ci) {
    const genome::Contig& contig = reference.contig(ci);
    const genome::GenomeLocation start = reference.contig_start(ci);
    std::string_view seq = contig.sequence;
    if (seq.size() < static_cast<size_t>(options.seed_length)) {
      continue;
    }
    RollingSeedPacker packer(seq, options.seed_length);
    for (size_t off = 0; off + static_cast<size_t>(options.seed_length) <= seq.size();
         off += static_cast<size_t>(options.build_stride)) {
      uint64_t seed;
      if (packer.Seed(off, &seed)) {
        pairs.push_back(SeedPos{seed, static_cast<uint32_t>(start + static_cast<int64_t>(off))});
      }
    }
  }

  // Pass 2: group by seed.
  std::sort(pairs.begin(), pairs.end(), [](const SeedPos& a, const SeedPos& b) {
    return a.seed < b.seed || (a.seed == b.seed && a.pos < b.pos);
  });

  SeedIndex index;
  index.options_ = options;

  // Count distinct seeds that survive the repetitiveness cap.
  size_t distinct = 0;
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j].seed == pairs[i].seed) {
      ++j;
    }
    if (j - i <= static_cast<size_t>(options.max_positions_per_seed)) {
      ++distinct;
    }
    i = j;
  }

  size_t table_size = std::bit_ceil(std::max<size_t>(distinct * 2, 16));
  index.table_.assign(table_size, Entry{});
  index.mask_ = table_size - 1;
  index.positions_.reserve(pairs.size());

  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j].seed == pairs[i].seed) {
      ++j;
    }
    size_t count = j - i;
    if (count <= static_cast<size_t>(options.max_positions_per_seed)) {
      uint32_t offset = static_cast<uint32_t>(index.positions_.size());
      for (size_t k = i; k < j; ++k) {
        index.positions_.push_back(pairs[k].pos);
      }
      // Linear-probe insert.
      size_t bucket = index.BucketFor(pairs[i].seed);
      while (index.table_[bucket].seed != kEmptySeed) {
        bucket = (bucket + 1) & index.mask_;
      }
      index.table_[bucket] =
          Entry{pairs[i].seed, offset, static_cast<uint32_t>(count)};
      ++index.num_entries_;
    }
    i = j;
  }
  return index;
}

std::span<const uint32_t> SeedIndex::Lookup(uint64_t seed) const {
  if (table_.empty()) {
    return {};
  }
  size_t bucket = BucketFor(seed);
  while (true) {
    const Entry& entry = table_[bucket];
    if (entry.seed == seed) {
      return {positions_.data() + entry.offset, entry.count};
    }
    if (entry.seed == kEmptySeed) {
      return {};
    }
    bucket = (bucket + 1) & mask_;
  }
}

size_t SeedIndex::MemoryBytes() const {
  return table_.size() * sizeof(Entry) + positions_.size() * sizeof(uint32_t);
}

}  // namespace persona::align
