#include "src/align/edit_distance.h"

#include <algorithm>
#include <vector>

namespace persona::align {

namespace {

// Appends "<run><op>" to a CIGAR being built back-to-front (caller reverses runs).
void AppendRun(char op, int run, std::string* out) {
  if (run <= 0) {
    return;
  }
  *out += std::to_string(run);
  out->push_back(op);
}

}  // namespace

int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  if (max_k < 0) {
    return -1;
  }
  if (m == 0) {
    if (cigar != nullptr) {
      cigar->clear();
    }
    return 0;
  }

  // Banded semi-global DP (Ukkonen's band; computes the same answer as SNAP's
  // Landau-Vishkin kernel): pattern must be fully consumed, the text end is free.
  // D[i][j] defined for |j - i| <= k. Band width B = 2k+1, column index b = j - i + k.
  const int k = max_k;
  const int band = 2 * k + 1;
  const int inf = max_k + 1;

  // DP and traceback matrices, (m+1) rows by band columns.
  std::vector<int> dp(static_cast<size_t>(m + 1) * band, inf);
  std::vector<int8_t> bt(static_cast<size_t>(m + 1) * band, 0);  // 1=diag, 2=up(I), 3=left(D)
  auto at = [&](int i, int b) -> int& { return dp[static_cast<size_t>(i) * band + b]; };
  auto trace = [&](int i, int b) -> int8_t& {
    return bt[static_cast<size_t>(i) * band + b];
  };

  // Row 0: aligning empty pattern prefix against text prefix of length j costs j (D ops),
  // but in semi-global alignment leading text is not free, so cost = j.
  for (int b = 0; b < band; ++b) {
    int j = b - k;  // i = 0
    if (j >= 0 && j <= n && j <= k) {
      at(0, b) = j;
      trace(0, b) = 3;
    }
  }

  for (int i = 1; i <= m; ++i) {
    for (int b = 0; b < band; ++b) {
      int j = i + b - k;
      if (j < 0 || j > n) {
        continue;
      }
      int best = inf;
      int8_t op = 0;
      // Diagonal: match/mismatch consuming pattern[i-1], text[j-1].
      if (j >= 1) {
        int cost = at(i - 1, b) + (pattern[static_cast<size_t>(i - 1)] ==
                                           text[static_cast<size_t>(j - 1)]
                                       ? 0
                                       : 1);
        if (cost < best) {
          best = cost;
          op = 1;
        }
      }
      // Up: insertion (pattern base consumed, no text). j stays, i-1 -> band col b+1.
      if (b + 1 < band) {
        int cost = at(i - 1, b + 1) + 1;
        if (cost < best) {
          best = cost;
          op = 2;
        }
      }
      // Left: deletion (text base consumed, no pattern). i stays, j-1 -> band col b-1.
      if (b - 1 >= 0 && j >= 1) {
        int cost = at(i, b - 1) + 1;
        if (cost < best) {
          best = cost;
          op = 3;
        }
      }
      at(i, b) = best;
      trace(i, b) = op;
    }
  }

  // Answer: min over final row (pattern fully consumed, any text end within band).
  int best = inf;
  int best_b = -1;
  for (int b = 0; b < band; ++b) {
    int j = m + b - k;
    if (j < 0 || j > n) {
      continue;
    }
    if (at(m, b) < best) {
      best = at(m, b);
      best_b = b;
    }
  }
  if (best > max_k) {
    return -1;
  }

  if (cigar != nullptr) {
    // Walk traceback, emitting runs in reverse order.
    std::vector<std::pair<char, int>> runs;
    int i = m;
    int b = best_b;
    while (i > 0 || (b - k + i) > 0) {
      int8_t op = trace(i, b);
      char c;
      if (op == 1) {
        c = 'M';
        --i;  // b unchanged: j and i both decrease
      } else if (op == 2) {
        c = 'I';
        --i;
        ++b;
      } else if (op == 3) {
        c = 'D';
        --b;
      } else {
        break;  // row 0 origin
      }
      if (!runs.empty() && runs.back().first == c) {
        ++runs.back().second;
      } else {
        runs.emplace_back(c, 1);
      }
    }
    cigar->clear();
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      AppendRun(it->first, it->second, cigar);
    }
  }
  return best;
}

int FullEditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = static_cast<int>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace persona::align
