#include "src/align/edit_distance.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <vector>

#include "src/align/simd_kernels.h"

namespace persona::align {

namespace {

// Appends "<run><op>" to a CIGAR.
void AppendRun(char op, int run, std::string* out) {
  if (run <= 0) {
    return;
  }
  char digits[16];
  auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), run);
  (void)ec;
  out->append(digits, end);
  out->push_back(op);
}

// One banded DP pass with bound k. Returns the distance if <= k, else -1.
//
// Banded semi-global DP (Ukkonen's band; computes the same answer as SNAP's
// Landau-Vishkin kernel): pattern must be fully consumed, the text end is free.
// D[i][j] defined for |j - i| <= k. Band width B = 2k+1, logical column b = j - i + k,
// stored at index b + 1 of a (band + 2)-wide row whose first and last slots are `inf`
// pads. The pads stand in for the b-range guards of the textbook formulation, so the
// inner loop has no per-cell branches beyond the three-way min itself.
//
// Cells whose true banded cost exceeds the bound may store values above `inf` here
// (the padded recurrence no longer clamps them): such "dead" cells can never win a
// three-way min against a live (<= k) cell, never change the row_min >= inf cutoff,
// and are never visited by the traceback (costs along an optimal path are <= k and
// non-increasing toward the origin), so distances and CIGARs are identical to the
// clamped formulation.
//
// Only row 0 and the per-row pads are initialized: every in-band cell with
// 0 <= j <= n is written by the fill before any later cell reads it, and cells with
// out-of-range j are never read, so the matrices need no clearing between calls (they
// are resized, not filled — the workspace makes repeated calls allocation-free).
int LvCore(std::string_view text, std::string_view pattern, int k, std::string* cigar,
           LvWorkspace* ws) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  const int band = 2 * k + 1;
  const int inf = k + 1;
  const int stride = band + 2;

  // Grow-only sizing: shrinking and regrowing between calls with different k would
  // value-initialize the regrown tail every call, and no cell is read before it is
  // written, so stale contents from any previous call are harmless.
  const size_t cells = static_cast<size_t>(m + 1) * stride;
  if (ws->dp.size() < cells) {
    ws->dp.resize(cells);
  }
  if (ws->bt.size() < cells) {
    ws->bt.resize(cells);  // 1=diag, 2=up(I), 3=left(D)
  }
  int* const dp = ws->dp.data();
  int8_t* const bt = ws->bt.data();
  const char* const pat = pattern.data();
  const char* const txt = text.data();

  // Row 0: aligning empty pattern prefix against text prefix of length j costs j (D ops),
  // but in semi-global alignment leading text is not free, so cost = j.
  dp[0] = inf;
  dp[stride - 1] = inf;
  for (int b = 0; b < band; ++b) {
    int j = b - k;  // i = 0
    if (j >= 0 && j <= n) {
      dp[b + 1] = j;
      bt[b + 1] = 3;
    } else {
      dp[b + 1] = inf;
      bt[b + 1] = 0;
    }
  }

  for (int i = 1; i <= m; ++i) {
    const int* const prev = dp + static_cast<size_t>(i - 1) * stride;
    int* const cur = dp + static_cast<size_t>(i) * stride;
    int8_t* const tr = bt + static_cast<size_t>(i) * stride;
    cur[0] = inf;
    cur[stride - 1] = inf;

    // Valid logical columns this row: j in [0, n] <=> b in [b_lo, b_hi].
    int b = k - i > 0 ? k - i : 0;
    int b_hi = n - i + k;
    if (b_hi > band - 1) {
      b_hi = band - 1;
    }
    int row_min = inf;
    if (k - i >= 0) {
      // Leading j == 0 cell: reachable by insertions only (no text consumed).
      const int up = prev[b + 2] + 1;
      const int best = up < inf ? up : inf;
      cur[b + 1] = best;
      tr[b + 1] = static_cast<int8_t>(up < inf ? 2 : 0);
      row_min = best;
      ++b;
    }
    const char pat_c = pat[static_cast<size_t>(i - 1)];
    for (int j = i + b - k; b <= b_hi; ++b, ++j) {
      // Diagonal consumes pattern[i-1] and text[j-1]; up is an insertion (band col
      // b+1 of the previous row); left is a deletion (band col b-1 of this row).
      const int diag =
          prev[b + 1] + (pat_c == txt[static_cast<size_t>(j - 1)] ? 0 : 1);
      const int up = prev[b + 2] + 1;
      const int left = cur[b] + 1;
      int best = diag;
      int8_t op = 1;
      if (up < best) {
        best = up;
        op = 2;
      }
      if (left < best) {
        best = left;
        op = 3;
      }
      cur[b + 1] = best;
      tr[b + 1] = op;
      if (best < row_min) {
        row_min = best;
      }
    }
    if (row_min >= inf) {
      return -1;  // no cell within the bound; later rows only grow
    }
  }

  // Answer: min over final row (pattern fully consumed, any text end within band).
  const int* const last = dp + static_cast<size_t>(m) * stride;
  int best = inf;
  int best_b = -1;
  for (int b = 0; b < band; ++b) {
    int j = m + b - k;
    if (j < 0 || j > n) {
      continue;
    }
    if (last[b + 1] < best) {
      best = last[b + 1];
      best_b = b;
    }
  }
  if (best > k) {
    return -1;
  }

  if (cigar != nullptr) {
    // Walk traceback, emitting runs in reverse order.
    ws->runs.clear();
    int i = m;
    int b = best_b;
    while (i > 0 || (b - k + i) > 0) {
      int8_t op = bt[static_cast<size_t>(i) * stride + b + 1];
      char c;
      if (op == 1) {
        c = 'M';
        --i;  // b unchanged: j and i both decrease
      } else if (op == 2) {
        c = 'I';
        --i;
        ++b;
      } else if (op == 3) {
        c = 'D';
        --b;
      } else {
        break;  // row 0 origin
      }
      if (!ws->runs.empty() && ws->runs.back().first == c) {
        ++ws->runs.back().second;
      } else {
        ws->runs.emplace_back(c, 1);
      }
    }
    cigar->clear();
    for (auto it = ws->runs.rbegin(); it != ws->runs.rend(); ++it) {
      AppendRun(it->first, it->second, cigar);
    }
  }
  return best;
}

// The band bound the adaptive schedule's first successful pass runs at for a
// known distance (mirrors the jump in LandauVishkinKnownDistance).
int ScheduledK(int distance, int max_k) {
  int k = std::min(1, max_k);
  while (k < distance && k < max_k) {
    k = std::min(2 * k, max_k);
  }
  return k;
}

// Rebuilds the CIGAR for lane `l` of a history-mode vector pass at bound k by
// replaying the scalar fill's op priority (diag, then up, then left, strict <)
// over the stored band matrix. On every cell a traceback can visit the
// comparisons resolve exactly as the scalar fill's did: live cells (<= k) are
// bit-identical between the two fills, and a dead candidate exceeds k in both
// (the vector fill clamps it to k + 1, the scalar fill stores something >= that),
// so it loses every strict-< contest either way. The emitted CIGAR bytes
// therefore match LvCore's.
void LvCigarFromHistory(const int32_t* hist, int k, int w, int l,
                        std::string_view text, std::string_view pattern, int best_b,
                        std::vector<std::pair<char, int>>* runs, std::string* cigar) {
  const int band = 2 * k + 1;
  const int stride = band + 2;
  const char* const pat = pattern.data();
  const char* const txt = text.data();
  const auto hs = [&](int row, int slot) {
    return hist[(static_cast<size_t>(row) * stride + static_cast<size_t>(slot)) * w + l];
  };
  runs->clear();
  int i = static_cast<int>(pattern.size());
  int b = best_b;
  while (i > 0 || (b - k + i) > 0) {
    const int j = i + b - k;
    char c;
    if (i == 0) {
      c = 'D';  // row 0 cells are reached by deletions only
      --b;
    } else if (j == 0) {
      c = 'I';  // j == 0 cells are reached by insertions only
      --i;
      ++b;
    } else {
      const int diag = hs(i - 1, b + 1) + (pat[i - 1] == txt[j - 1] ? 0 : 1);
      const int up = hs(i - 1, b + 2) + 1;
      const int left = hs(i, b) + 1;
      int best = diag;
      c = 'M';
      if (up < best) {
        best = up;
        c = 'I';
      }
      if (left < best) {
        c = 'D';
      }
      if (c == 'M') {
        --i;
      } else if (c == 'I') {
        --i;
        ++b;
      } else {
        --b;
      }
    }
    if (!runs->empty() && runs->back().first == c) {
      ++runs->back().second;
    } else {
      runs->emplace_back(c, 1);
    }
  }
  cigar->clear();
  for (auto it = runs->rbegin(); it != runs->rend(); ++it) {
    AppendRun(it->first, it->second, cigar);
  }
}

}  // namespace

int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar, LvWorkspace* workspace) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  if (max_k < 0) {
    return -1;
  }
  if (m == 0) {
    if (cigar != nullptr) {
      cigar->clear();
    }
    return 0;
  }

  // Fast path: the overwhelmingly common candidate is an exact placement, answered by
  // a prefix compare instead of the DP (distance 0 <=> pattern == text[0, m)).
  if (n >= m && std::memcmp(text.data(), pattern.data(), static_cast<size_t>(m)) == 0) {
    if (cigar != nullptr) {
      cigar->clear();
      AppendRun('M', m, cigar);
    }
    return 0;
  }

  LvWorkspace local;
  LvWorkspace* ws = workspace != nullptr ? workspace : &local;

  // Adaptive band doubling (Ukkonen): a read at distance d costs O(m * d) instead of
  // O(m * max_k). A distance found within bound k is the true distance, so early
  // successes are exact; only the final failed pass pays the full band.
  for (int k = std::min(1, max_k);;) {
    int dist = LvCore(text, pattern, k, cigar, ws);
    if (dist >= 0) {
      return dist;
    }
    if (k >= max_k) {
      return -1;
    }
    k = std::min(2 * k, max_k);
  }
}

int LandauVishkinKnownDistance(std::string_view text, std::string_view pattern, int max_k,
                               int distance, std::string* cigar, LvWorkspace* workspace) {
  const int m = static_cast<int>(pattern.size());
  if (max_k < 0) {
    return -1;
  }
  if (m == 0) {
    if (cigar != nullptr) {
      cigar->clear();
    }
    return 0;
  }
  if (distance == 0) {
    // Distance 0 in this semi-global formulation means pattern == text prefix,
    // which is exactly the scalar fast path and its all-M CIGAR.
    if (cigar != nullptr) {
      cigar->clear();
      AppendRun('M', m, cigar);
    }
    return 0;
  }

  LvWorkspace local;
  LvWorkspace* ws = workspace != nullptr ? workspace : &local;

  // A banded pass at bound k succeeds iff k >= true distance (the band only
  // removes paths, never shortens one), so the adaptive schedule emits its
  // answer from the first scheduled k >= distance. Jump straight there.
  int k = std::min(1, max_k);
  while (k < distance && k < max_k) {
    k = std::min(2 * k, max_k);
  }
  return LvCore(text, pattern, k, cigar, ws);
}

int LvBatchWidth(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return simd::kLvLanesAvx2;
    case SimdLevel::kSse4:
      return simd::kLvLanesSse4;
    case SimdLevel::kScalar:
      break;
  }
  return 1;
}

void LvBatch(const LvBatchJob* jobs, int* distances, size_t count, int max_k,
             SimdLevel level, LvBatchScratch* scratch) {
  const int width = LvBatchWidth(level);
  LvBatchScratch local_scratch;
  LvBatchScratch* sc = scratch != nullptr ? scratch : &local_scratch;
  if (width == 1) {
    for (size_t i = 0; i < count; ++i) {
      distances[i] = LandauVishkin(jobs[i].text, jobs[i].pattern, max_k, nullptr,
                                   &sc->scalar_ws);
    }
    return;
  }

  const size_t w = static_cast<size_t>(width);
  alignas(32) int32_t lane_n[simd::kLvLanesAvx2];
  alignas(32) int32_t lane_m[simd::kLvLanesAvx2];
  uint8_t want[simd::kLvLanesAvx2];
  alignas(32) int32_t dist[simd::kLvLanesAvx2];

  for (size_t base = 0; base < count; base += w) {
    const size_t chunk = std::min(w, count - base);

    // Resolve the scalar fast paths inline; only DP-needing jobs occupy lanes.
    uint32_t pending = 0;
    int max_m = 0;
    for (size_t l = 0; l < w; ++l) {
      lane_n[l] = 0;
      lane_m[l] = 0;
      want[l] = 0;
      if (l >= chunk) {
        continue;
      }
      const LvBatchJob& job = jobs[base + l];
      const int m = static_cast<int>(job.pattern.size());
      const int n = static_cast<int>(job.text.size());
      if (max_k < 0) {
        distances[base + l] = -1;
        continue;
      }
      if (m == 0) {
        distances[base + l] = 0;
        continue;
      }
      if (n >= m &&
          std::memcmp(job.text.data(), job.pattern.data(), static_cast<size_t>(m)) == 0) {
        distances[base + l] = 0;
        continue;
      }
      pending |= 1u << l;
      lane_n[l] = n;
      lane_m[l] = m;
      max_m = std::max(max_m, m);
    }
    if (pending == 0) {
      continue;
    }
    // A lone survivor is cheaper scalar than staged (7 of 8 lanes would idle).
    if ((pending & (pending - 1)) == 0) {
      const size_t l = static_cast<size_t>(__builtin_ctz(pending));
      distances[base + l] = LandauVishkin(jobs[base + l].text, jobs[base + l].pattern,
                                          max_k, nullptr, &sc->scalar_ws);
      continue;
    }

    // Interleave pattern/text bytes lane-major. Rows are 1-based (row r holds
    // byte r-1); the text buffer only needs rows the band can ever touch
    // (j <= m + k <= max_m + max_k), even if a lane's text runs longer.
    // Grow-only, no clearing: padding bytes (rows past a lane's own length)
    // only feed cells the kernel blends to inf (j > n) or that belong to an
    // already-retired lane, so stale bytes never reach a returned value.
    const int max_j = max_m + max_k;
    const size_t pat_cells = static_cast<size_t>(max_m + 1) * w;
    const size_t text_cells = static_cast<size_t>(max_j + 1) * w;
    if (sc->pat.size() < pat_cells) {
      sc->pat.resize(pat_cells);
    }
    if (sc->text.size() < text_cells) {
      sc->text.resize(text_cells);
    }
    for (size_t l = 0; l < w; ++l) {
      if ((pending & (1u << l)) == 0) {
        continue;
      }
      const LvBatchJob& job = jobs[base + l];
      for (int r = 1; r <= lane_m[l]; ++r) {
        sc->pat[static_cast<size_t>(r) * w + l] =
            static_cast<uint8_t>(job.pattern[static_cast<size_t>(r - 1)]);
      }
      const int text_rows = std::min(lane_n[l], max_j);
      for (int r = 1; r <= text_rows; ++r) {
        sc->text[static_cast<size_t>(r) * w + l] =
            static_cast<uint8_t>(job.text[static_cast<size_t>(r - 1)]);
      }
    }
    const size_t dp_cells = 2 * static_cast<size_t>(2 * max_k + 3) * w;
    if (sc->dp.size() < dp_cells) {
      sc->dp.resize(dp_cells);  // grow-only: the kernel never reads unwritten slots
    }

    // Shared adaptive schedule: every pending lane runs the same k sequence its
    // scalar call would, retiring at the first k that resolves it.
    for (int k = std::min(1, max_k);;) {
      for (size_t l = 0; l < w; ++l) {
        want[l] = (pending & (1u << l)) != 0 ? 1 : 0;
      }
      simd::LvPassArgs args;
      args.pat = sc->pat.data();
      args.text = sc->text.data();
      args.n = lane_n;
      args.m = lane_m;
      args.want = want;
      args.k = k;
      args.dp = sc->dp.data();
      args.dist = dist;
      args.hist = nullptr;
      if (level == SimdLevel::kAvx2) {
        simd::LvPassAvx2(args);
      } else {
        simd::LvPassSse4(args);
      }
      for (size_t l = 0; l < w; ++l) {
        if ((pending & (1u << l)) != 0 && dist[l] >= 0) {
          distances[base + l] = dist[l];
          pending &= ~(1u << l);
        }
      }
      if (pending == 0) {
        break;
      }
      if (k >= max_k) {
        for (size_t l = 0; l < w; ++l) {
          if ((pending & (1u << l)) != 0) {
            distances[base + l] = -1;
          }
        }
        break;
      }
      k = std::min(2 * k, max_k);
    }
  }
}

void LvBatchCigar(const LvCigarJob* jobs, int* distances, size_t count, int max_k,
                  SimdLevel level, LvBatchScratch* scratch) {
  const int width = LvBatchWidth(level);
  LvBatchScratch local_scratch;
  LvBatchScratch* sc = scratch != nullptr ? scratch : &local_scratch;
  const size_t w = static_cast<size_t>(width);

  // Jobs the vector path cannot cover (empty pattern, distance outside the
  // contract) run the scalar call directly, as does everything when scalar.
  sc->group.clear();
  for (size_t i = 0; i < count; ++i) {
    const LvCigarJob& job = jobs[i];
    if (width == 1 || job.pattern.empty() || job.distance <= 0 || job.distance > max_k) {
      distances[i] = LandauVishkinKnownDistance(job.text, job.pattern, max_k,
                                                job.distance, job.cigar, &sc->scalar_ws);
    } else {
      sc->group.push_back(static_cast<uint32_t>(i));
    }
  }
  if (sc->group.empty()) {
    return;
  }

  // Group jobs by the band bound their distance schedules to, so each vector
  // pass runs all its lanes at one k. Winner distances cluster tightly (most
  // reads are 1-2 edits), so occupancy stays high despite the grouping.
  std::stable_sort(sc->group.begin(), sc->group.end(), [&](uint32_t a, uint32_t b) {
    return ScheduledK(jobs[a].distance, max_k) < ScheduledK(jobs[b].distance, max_k);
  });

  alignas(32) int32_t lane_n[simd::kLvLanesAvx2];
  alignas(32) int32_t lane_m[simd::kLvLanesAvx2];
  uint8_t want[simd::kLvLanesAvx2];
  alignas(32) int32_t dist[simd::kLvLanesAvx2];

  size_t pos = 0;
  while (pos < sc->group.size()) {
    const int k = ScheduledK(jobs[sc->group[pos]].distance, max_k);
    size_t group_end = pos + 1;
    while (group_end < sc->group.size() &&
           ScheduledK(jobs[sc->group[group_end]].distance, max_k) == k) {
      ++group_end;
    }
    const int band = 2 * k + 1;
    const int stride = band + 2;
    for (size_t base = pos; base < group_end; base += w) {
      const size_t chunk = std::min(w, group_end - base);
      if (chunk == 1) {
        // A lone job is cheaper scalar than staged (the other lanes would idle).
        const LvCigarJob& job = jobs[sc->group[base]];
        distances[sc->group[base]] = LandauVishkinKnownDistance(
            job.text, job.pattern, max_k, job.distance, job.cigar, &sc->scalar_ws);
        continue;
      }

      int max_m = 0;
      for (size_t l = 0; l < w; ++l) {
        lane_n[l] = 0;
        lane_m[l] = 0;
        want[l] = 0;
        if (l >= chunk) {
          continue;
        }
        const LvCigarJob& job = jobs[sc->group[base + l]];
        lane_m[l] = static_cast<int>(job.pattern.size());
        lane_n[l] = static_cast<int>(job.text.size());
        want[l] = 1;
        max_m = std::max(max_m, lane_m[l]);
      }
      const int max_j = max_m + k;
      const size_t pat_cells = static_cast<size_t>(max_m + 1) * w;
      const size_t text_cells = static_cast<size_t>(max_j + 1) * w;
      if (sc->pat.size() < pat_cells) {
        sc->pat.resize(pat_cells);  // grow-only; see LvBatch on why padding may be stale
      }
      if (sc->text.size() < text_cells) {
        sc->text.resize(text_cells);
      }
      for (size_t l = 0; l < chunk; ++l) {
        const LvCigarJob& job = jobs[sc->group[base + l]];
        for (int r = 1; r <= lane_m[l]; ++r) {
          sc->pat[static_cast<size_t>(r) * w + l] =
              static_cast<uint8_t>(job.pattern[static_cast<size_t>(r - 1)]);
        }
        const int text_rows = std::min(lane_n[l], max_j);
        for (int r = 1; r <= text_rows; ++r) {
          sc->text[static_cast<size_t>(r) * w + l] =
              static_cast<uint8_t>(job.text[static_cast<size_t>(r - 1)]);
        }
      }
      const size_t hist_cells = static_cast<size_t>(max_m + 1) * stride * w;
      if (sc->hist.size() < hist_cells) {
        sc->hist.resize(hist_cells);  // grow-only: tracebacks only read written rows
      }

      simd::LvPassArgs args;
      args.pat = sc->pat.data();
      args.text = sc->text.data();
      args.n = lane_n;
      args.m = lane_m;
      args.want = want;
      args.k = k;
      args.dp = nullptr;
      args.dist = dist;
      args.hist = sc->hist.data();
      if (level == SimdLevel::kAvx2) {
        simd::LvPassAvx2(args);
      } else {
        simd::LvPassSse4(args);
      }

      for (size_t l = 0; l < chunk; ++l) {
        const uint32_t idx = sc->group[base + l];
        distances[idx] = dist[l];
        if (dist[l] < 0) {
          continue;  // caller's distance was wrong; its mismatch check handles it
        }
        // best_b: first strict minimum of the lane's final row, exactly the
        // scalar extraction (out-of-range slots hold inf and cannot win).
        const int32_t* last =
            sc->hist.data() + static_cast<size_t>(lane_m[l]) * stride * w;
        int best = k + 1;
        int best_b = -1;
        for (int b = 0; b < band; ++b) {
          const int v = last[static_cast<size_t>(b + 1) * w + l];
          if (v < best) {
            best = v;
            best_b = b;
          }
        }
        const LvCigarJob& job = jobs[idx];
        if (job.cigar != nullptr) {
          LvCigarFromHistory(sc->hist.data(), k, width, static_cast<int>(l), job.text,
                             job.pattern, best_b, &sc->scalar_ws.runs, job.cigar);
        }
      }
    }
    pos = group_end;
  }
}

int FullEditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = static_cast<int>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace persona::align
