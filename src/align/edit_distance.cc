#include "src/align/edit_distance.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <vector>

namespace persona::align {

namespace {

// Appends "<run><op>" to a CIGAR.
void AppendRun(char op, int run, std::string* out) {
  if (run <= 0) {
    return;
  }
  char digits[16];
  auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), run);
  (void)ec;
  out->append(digits, end);
  out->push_back(op);
}

// One banded DP pass with bound k. Returns the distance if <= k, else -1.
//
// Banded semi-global DP (Ukkonen's band; computes the same answer as SNAP's
// Landau-Vishkin kernel): pattern must be fully consumed, the text end is free.
// D[i][j] defined for |j - i| <= k. Band width B = 2k+1, column index b = j - i + k.
//
// Only row 0 is initialized: every in-band cell with 0 <= j <= n is written by the fill
// before any later cell reads it, and out-of-range cells are never read, so the
// (m+1) x band matrices need no clearing between calls (they are resized, not filled —
// the workspace makes repeated calls allocation- and memset-free).
int LvCore(std::string_view text, std::string_view pattern, int k, std::string* cigar,
           LvWorkspace* ws) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  const int band = 2 * k + 1;
  const int inf = k + 1;

  ws->dp.resize(static_cast<size_t>(m + 1) * band);
  ws->bt.resize(static_cast<size_t>(m + 1) * band);  // 1=diag, 2=up(I), 3=left(D)
  auto at = [&](int i, int b) -> int& { return ws->dp[static_cast<size_t>(i) * band + b]; };
  auto trace = [&](int i, int b) -> int8_t& {
    return ws->bt[static_cast<size_t>(i) * band + b];
  };

  // Row 0: aligning empty pattern prefix against text prefix of length j costs j (D ops),
  // but in semi-global alignment leading text is not free, so cost = j.
  for (int b = 0; b < band; ++b) {
    int j = b - k;  // i = 0
    if (j >= 0 && j <= n) {
      at(0, b) = j;
      trace(0, b) = 3;
    } else {
      at(0, b) = inf;
      trace(0, b) = 0;
    }
  }

  for (int i = 1; i <= m; ++i) {
    int row_min = inf;
    for (int b = 0; b < band; ++b) {
      int j = i + b - k;
      if (j < 0 || j > n) {
        continue;
      }
      int best = inf;
      int8_t op = 0;
      // Diagonal: match/mismatch consuming pattern[i-1], text[j-1].
      if (j >= 1) {
        int cost = at(i - 1, b) + (pattern[static_cast<size_t>(i - 1)] ==
                                           text[static_cast<size_t>(j - 1)]
                                       ? 0
                                       : 1);
        if (cost < best) {
          best = cost;
          op = 1;
        }
      }
      // Up: insertion (pattern base consumed, no text). j stays, i-1 -> band col b+1.
      if (b + 1 < band) {
        int cost = at(i - 1, b + 1) + 1;
        if (cost < best) {
          best = cost;
          op = 2;
        }
      }
      // Left: deletion (text base consumed, no pattern). i stays, j-1 -> band col b-1.
      if (b - 1 >= 0 && j >= 1) {
        int cost = at(i, b - 1) + 1;
        if (cost < best) {
          best = cost;
          op = 3;
        }
      }
      at(i, b) = best;
      trace(i, b) = op;
      row_min = std::min(row_min, best);
    }
    if (row_min >= inf) {
      return -1;  // no cell within the bound; later rows only grow
    }
  }

  // Answer: min over final row (pattern fully consumed, any text end within band).
  int best = inf;
  int best_b = -1;
  for (int b = 0; b < band; ++b) {
    int j = m + b - k;
    if (j < 0 || j > n) {
      continue;
    }
    if (at(m, b) < best) {
      best = at(m, b);
      best_b = b;
    }
  }
  if (best > k) {
    return -1;
  }

  if (cigar != nullptr) {
    // Walk traceback, emitting runs in reverse order.
    ws->runs.clear();
    int i = m;
    int b = best_b;
    while (i > 0 || (b - k + i) > 0) {
      int8_t op = trace(i, b);
      char c;
      if (op == 1) {
        c = 'M';
        --i;  // b unchanged: j and i both decrease
      } else if (op == 2) {
        c = 'I';
        --i;
        ++b;
      } else if (op == 3) {
        c = 'D';
        --b;
      } else {
        break;  // row 0 origin
      }
      if (!ws->runs.empty() && ws->runs.back().first == c) {
        ++ws->runs.back().second;
      } else {
        ws->runs.emplace_back(c, 1);
      }
    }
    cigar->clear();
    for (auto it = ws->runs.rbegin(); it != ws->runs.rend(); ++it) {
      AppendRun(it->first, it->second, cigar);
    }
  }
  return best;
}

}  // namespace

int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar, LvWorkspace* workspace) {
  const int m = static_cast<int>(pattern.size());
  const int n = static_cast<int>(text.size());
  if (max_k < 0) {
    return -1;
  }
  if (m == 0) {
    if (cigar != nullptr) {
      cigar->clear();
    }
    return 0;
  }

  // Fast path: the overwhelmingly common candidate is an exact placement, answered by
  // a prefix compare instead of the DP (distance 0 <=> pattern == text[0, m)).
  if (n >= m && std::memcmp(text.data(), pattern.data(), static_cast<size_t>(m)) == 0) {
    if (cigar != nullptr) {
      cigar->clear();
      AppendRun('M', m, cigar);
    }
    return 0;
  }

  LvWorkspace local;
  LvWorkspace* ws = workspace != nullptr ? workspace : &local;

  // Adaptive band doubling (Ukkonen): a read at distance d costs O(m * d) instead of
  // O(m * max_k). A distance found within bound k is the true distance, so early
  // successes are exact; only the final failed pass pays the full band.
  for (int k = std::min(1, max_k);;) {
    int dist = LvCore(text, pattern, k, cigar, ws);
    if (dist >= 0) {
      return dist;
    }
    if (k >= max_k) {
      return -1;
    }
    k = std::min(2 * k, max_k);
  }
}

int FullEditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = static_cast<int>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace persona::align
