// Alignment accuracy scoring against simulator ground truth.
//
// The read simulator encodes each read's true origin in its metadata; this evaluator
// checks whether an aligner placed the read within a tolerance window of that origin.
// Used by tests (correctness gates) and benches (reported alongside throughput).

#ifndef PERSONA_SRC_ALIGN_ACCURACY_H_
#define PERSONA_SRC_ALIGN_ACCURACY_H_

#include <span>

#include "src/align/alignment.h"
#include "src/genome/read.h"
#include "src/genome/read_simulator.h"
#include "src/genome/reference.h"

namespace persona::align {

struct AccuracyReport {
  int64_t total = 0;
  int64_t aligned = 0;
  int64_t correct = 0;      // aligned within tolerance of the simulated origin
  int64_t wrong = 0;        // aligned elsewhere
  int64_t unaligned = 0;

  double aligned_fraction() const {
    return total == 0 ? 0 : static_cast<double>(aligned) / static_cast<double>(total);
  }
  double correct_fraction() const {
    return total == 0 ? 0 : static_cast<double>(correct) / static_cast<double>(total);
  }
};

// Scores `results[i]` against the truth encoded in `reads[i]`. Reads whose metadata is
// not simulator-formatted are skipped (not counted).
AccuracyReport ScoreAlignments(const genome::ReferenceGenome& reference,
                               std::span<const genome::Read> reads,
                               std::span<const AlignmentResult> results,
                               int64_t tolerance = 20);

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_ACCURACY_H_
