// Open-addressed vote map used by the SNAP-style seeding phase: candidate start
// location -> vote count.
//
// Two properties matter on the hot path:
//   * Clearing is epoch-stamped: Reset() bumps a generation counter instead of
//     rewriting the 512-slot arrays, so a reused map costs O(1) per read instead of
//     a ~12 KB memset (the per-read overhead this replaces dominated seeding time).
//   * Occupancy is capped below the table size. A pathological read (hyper-repetitive
//     bases hitting many indexed positions) can yield more distinct candidate
//     locations than the table has slots; the old grow-less linear probe then spun
//     forever. Once kMaxOccupancy distinct locations are present, further *new*
//     locations are dropped (they are singleton votes, the weakest evidence), while
//     votes for already-present locations still accumulate.

#ifndef PERSONA_SRC_ALIGN_VOTE_MAP_H_
#define PERSONA_SRC_ALIGN_VOTE_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace persona::align {

struct VoteCandidate {
  int64_t location = 0;
  int votes = 0;
};

class VoteMap {
 public:
  VoteMap()
      : keys_(kSize, 0), votes_(kSize, 0), epochs_(kSize, 0) {
    used_.reserve(kSize);
  }

  // O(1) logical clear: slots stamped with an older epoch read as empty.
  void Reset() {
    used_.clear();
    if (++epoch_ == 0) {  // epoch wrapped: old stamps would alias as live
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  // Returns false when the vote was dropped because the table is saturated.
  bool Vote(int64_t location) {
    size_t bucket = Hash(location);
    while (true) {
      if (epochs_[bucket] != epoch_) {  // empty this generation
        if (used_.size() >= kMaxOccupancy) {
          return false;  // saturated: drop the new (lowest-vote) candidate
        }
        epochs_[bucket] = epoch_;
        keys_[bucket] = location;
        votes_[bucket] = 1;
        used_.push_back(static_cast<uint32_t>(bucket));
        return true;
      }
      if (keys_[bucket] == location) {
        ++votes_[bucket];
        return true;
      }
      bucket = (bucket + 1) & (kSize - 1);
    }
  }

  size_t occupancy() const { return used_.size(); }
  static constexpr size_t capacity() { return kMaxOccupancy; }

  // Canonical candidate order: votes descending, location ascending on ties.
  static bool CandidateBefore(const VoteCandidate& a, const VoteCandidate& b) {
    return a.votes != b.votes ? a.votes > b.votes : a.location < b.location;
  }

  // Appends the live candidates to `out` in unspecified order.
  void AppendCandidates(std::vector<VoteCandidate>* out) const {
    for (uint32_t bucket : used_) {
      out->push_back(VoteCandidate{keys_[bucket], votes_[bucket]});
    }
  }

  // Fills `out` with the candidates in canonical order. Reuses `out`'s capacity.
  void ExtractSorted(std::vector<VoteCandidate>* out) const {
    out->clear();
    out->reserve(used_.size());
    AppendCandidates(out);
    std::sort(out->begin(), out->end(), CandidateBefore);
  }

 private:
  static constexpr size_t kSize = 512;  // power of two
  // Leaving 1/4 of the table empty keeps probe chains short and guarantees every
  // probe terminates at an empty slot even when the cap is hit.
  static constexpr size_t kMaxOccupancy = kSize - kSize / 4;

  static size_t Hash(int64_t loc) {
    uint64_t x = static_cast<uint64_t>(loc) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 55) & (kSize - 1);
  }

  std::vector<int64_t> keys_;
  std::vector<int> votes_;
  std::vector<uint32_t> epochs_;
  std::vector<uint32_t> used_;
  uint32_t epoch_ = 1;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_VOTE_MAP_H_
