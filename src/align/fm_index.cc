#include "src/align/fm_index.h"

#include <algorithm>
#include <bit>

namespace persona::align {

namespace {

// $=0, A=1, C=2, G=3, T=4; other letters (IUPAC ambiguity) collapse to A.
inline uint8_t CharToCode(char c) {
  switch (c) {
    case 'C':
    case 'c':
      return 2;
    case 'G':
    case 'g':
      return 3;
    case 'T':
    case 't':
      return 4;
    default:
      return 1;
  }
}

}  // namespace

std::vector<int32_t> BuildSuffixArray(std::span<const uint8_t> text) {
  const int32_t n = static_cast<int32_t>(text.size());
  std::vector<int32_t> sa(static_cast<size_t>(n));
  std::vector<int32_t> rank(static_cast<size_t>(n));
  std::vector<int32_t> next_rank(static_cast<size_t>(n));
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::vector<int32_t> count;

  // Initial order: counting sort of all suffixes by first character. The doubling loop
  // relies on `sa` being sorted by the current rank at entry to each round.
  {
    count.assign(257, 0);
    for (int32_t i = 0; i < n; ++i) {
      rank[static_cast<size_t>(i)] = text[static_cast<size_t>(i)];
      ++count[static_cast<size_t>(text[static_cast<size_t>(i)]) + 1];
    }
    for (size_t i = 1; i < count.size(); ++i) {
      count[i] += count[i - 1];
    }
    for (int32_t i = 0; i < n; ++i) {
      sa[static_cast<size_t>(count[text[static_cast<size_t>(i)]]++)] = i;
    }
  }
  if (n == 1) {
    return sa;
  }

  for (int32_t k = 1;; k <<= 1) {
    // Order suffixes by second key (rank at i+k; suffixes running past the end first).
    int32_t idx = 0;
    for (int32_t i = std::max<int32_t>(n - k, 0); i < n; ++i) {
      order[static_cast<size_t>(idx++)] = i;
    }
    for (int32_t i = 0; i < n; ++i) {
      if (sa[static_cast<size_t>(i)] >= k) {
        order[static_cast<size_t>(idx++)] = sa[static_cast<size_t>(i)] - k;
      }
    }
    // Stable counting sort by first key (current rank).
    int32_t max_rank = rank[static_cast<size_t>(sa[static_cast<size_t>(n - 1)])];
    count.assign(static_cast<size_t>(max_rank) + 2, 0);
    for (int32_t i = 0; i < n; ++i) {
      ++count[static_cast<size_t>(rank[static_cast<size_t>(i)]) + 1];
    }
    for (size_t i = 1; i < count.size(); ++i) {
      count[i] += count[i - 1];
    }
    for (int32_t i = 0; i < n; ++i) {
      int32_t suffix = order[static_cast<size_t>(i)];
      sa[static_cast<size_t>(count[static_cast<size_t>(rank[static_cast<size_t>(suffix)])]++)] =
          suffix;
    }
    // Recompute ranks for doubled prefix length.
    next_rank[static_cast<size_t>(sa[0])] = 0;
    for (int32_t i = 1; i < n; ++i) {
      int32_t a = sa[static_cast<size_t>(i - 1)];
      int32_t b = sa[static_cast<size_t>(i)];
      bool same = rank[static_cast<size_t>(a)] == rank[static_cast<size_t>(b)];
      if (same) {
        int32_t ra = a + k < n ? rank[static_cast<size_t>(a + k)] : -1;
        int32_t rb = b + k < n ? rank[static_cast<size_t>(b + k)] : -1;
        same = ra == rb;
      }
      next_rank[static_cast<size_t>(b)] = next_rank[static_cast<size_t>(a)] + (same ? 0 : 1);
    }
    rank.swap(next_rank);
    if (rank[static_cast<size_t>(sa[static_cast<size_t>(n - 1)])] == n - 1) {
      break;
    }
  }
  return sa;
}

Result<FmIndex> FmIndex::Build(const genome::ReferenceGenome& reference,
                               const Options& options) {
  if (options.sa_sample_rate < 1 || options.occ_checkpoint < 1) {
    return InvalidArgumentError("FM-index sample rates must be >= 1");
  }
  if (reference.total_length() <= 0) {
    return InvalidArgumentError("empty reference");
  }
  if (reference.total_length() + 1 > INT32_MAX) {
    return InvalidArgumentError("reference too large for 32-bit suffix array");
  }

  // Code-map the concatenated reference and add the sentinel.
  std::vector<uint8_t> text;
  text.reserve(static_cast<size_t>(reference.total_length()) + 1);
  for (const genome::Contig& contig : reference.contigs()) {
    for (char base : contig.sequence) {
      text.push_back(CharToCode(base));
    }
  }
  text.push_back(0);  // sentinel

  std::vector<int32_t> sa = BuildSuffixArray(text);
  const size_t n = text.size();

  FmIndex index;
  index.occ_checkpoint_ = options.occ_checkpoint;
  index.sa_sample_rate_ = options.sa_sample_rate;

  // BWT and C array.
  index.bwt_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t p = sa[i];
    index.bwt_[i] = p == 0 ? text[n - 1] : text[static_cast<size_t>(p - 1)];
  }
  std::array<int64_t, 6> totals{};
  for (uint8_t code : text) {
    ++totals[code];
  }
  int64_t running = 0;
  for (int code = 0; code < 6; ++code) {
    index.c_[static_cast<size_t>(code)] = running;
    running += totals[static_cast<size_t>(code)];
  }

  // Occ checkpoints.
  size_t blocks = (n + static_cast<size_t>(index.occ_checkpoint_) - 1) /
                      static_cast<size_t>(index.occ_checkpoint_) +
                  1;
  index.occ_.assign(blocks, {});
  std::array<uint32_t, 5> acc{};
  for (size_t i = 0; i < n; ++i) {
    if (i % static_cast<size_t>(index.occ_checkpoint_) == 0) {
      index.occ_[i / static_cast<size_t>(index.occ_checkpoint_)] = acc;
    }
    if (index.bwt_[i] < 5) {
      ++acc[index.bwt_[i]];
    }
  }
  index.occ_[blocks - 1] = acc;

  // Sampled SA with mark bitvector + rank directory.
  size_t words = (n + 63) / 64;
  index.sampled_mark_.assign(words, 0);
  index.mark_rank_.assign(words + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    if (sa[i] % options.sa_sample_rate == 0) {
      index.sampled_mark_[i / 64] |= 1ull << (i % 64);
    }
  }
  uint32_t cum = 0;
  for (size_t w = 0; w < words; ++w) {
    index.mark_rank_[w] = cum;
    cum += static_cast<uint32_t>(std::popcount(index.sampled_mark_[w]));
  }
  index.mark_rank_[words] = cum;
  index.sa_samples_.reserve(cum);
  for (size_t i = 0; i < n; ++i) {
    if (index.sampled_mark_[i / 64] & (1ull << (i % 64))) {
      index.sa_samples_.push_back(sa[i]);
    }
  }
  return index;
}

int64_t FmIndex::Occ(uint8_t code, int64_t pos) const {
  size_t block = static_cast<size_t>(pos) / static_cast<size_t>(occ_checkpoint_);
  int64_t count = occ_[block][code];
  size_t start = block * static_cast<size_t>(occ_checkpoint_);
  for (size_t i = start; i < static_cast<size_t>(pos); ++i) {
    if (bwt_[i] == code) {
      ++count;
    }
  }
  return count;
}

FmIndex::Interval FmIndex::ExtendBackward(Interval iv, char base) const {
  uint8_t code;
  switch (base) {
    case 'A':
    case 'a':
      code = 1;
      break;
    case 'C':
    case 'c':
      code = 2;
      break;
    case 'G':
    case 'g':
      code = 3;
      break;
    case 'T':
    case 't':
      code = 4;
      break;
    default:
      return Interval{0, 0};  // N never matches the index
  }
  if (iv.empty()) {
    return Interval{0, 0};
  }
  // Both ends' blocks miss independently; start hi's load before lo's scan so
  // the pair overlaps instead of serializing.
  PrefetchOcc(iv.hi);
  int64_t lo = c_[code] + Occ(code, iv.lo);
  int64_t hi = c_[code] + Occ(code, iv.hi);
  return Interval{lo, hi};
}

FmIndex::Interval FmIndex::Count(std::string_view pattern) const {
  Interval iv = Whole();
  for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
    iv = ExtendBackward(iv, *it);
    if (iv.empty()) {
      break;
    }
  }
  return iv;
}

int64_t FmIndex::LastToFirst(int64_t idx) const {
  uint8_t code = bwt_[static_cast<size_t>(idx)];
  return c_[code] + Occ(code, idx);
}

void FmIndex::Locate(Interval iv, size_t max_hits, std::vector<int64_t>* out) const {
  if (iv.size() <= 1) {
    // A single chain has nothing to overlap with; skip the lockstep scaffolding.
    LocateSerial(iv, max_hits, out);
    return;
  }
  const int64_t n = static_cast<int64_t>(bwt_.size());
  // Lockstep windows of up to kLanes LF chains. Each chain is a string of
  // dependent cache misses (mark word, then BWT block + checkpoint); stepping
  // the window's chains together with all their next blocks prefetched first
  // keeps kLanes misses in flight where LocateSerial keeps one. Results are
  // buffered per window and appended in suffix order, so the output (including
  // the max_hits cutoff point) is byte-identical to LocateSerial's.
  constexpr int kLanes = 8;
  int64_t j[kLanes];
  int64_t steps[kLanes];
  int64_t pos[kLanes];
  int64_t idx = iv.lo;
  while (idx < iv.hi && out->size() < max_hits) {
    const int lanes = static_cast<int>(std::min<int64_t>(kLanes, iv.hi - idx));
    uint32_t live = 0;
    for (int l = 0; l < lanes; ++l) {
      j[l] = idx + l;
      steps[l] = 0;
      pos[l] = 0;
      live |= 1u << l;
    }
    while (live != 0) {
      for (int l = 0; l < lanes; ++l) {
        if ((live & (1u << l)) != 0) {
          __builtin_prefetch(sampled_mark_.data() + static_cast<size_t>(j[l]) / 64, 0, 1);
          PrefetchOcc(j[l]);
        }
      }
      for (int l = 0; l < lanes; ++l) {
        if ((live & (1u << l)) == 0) {
          continue;
        }
        const size_t word = static_cast<size_t>(j[l]) / 64;
        const uint64_t bit = 1ull << (static_cast<size_t>(j[l]) % 64);
        if ((sampled_mark_[word] & bit) != 0) {
          const uint32_t rank =
              mark_rank_[word] +
              static_cast<uint32_t>(std::popcount(sampled_mark_[word] & (bit - 1)));
          int64_t p = sa_samples_[rank] + steps[l];
          if (p >= n) {
            p -= n;
          }
          pos[l] = p;
          live &= ~(1u << l);
        } else {
          j[l] = LastToFirst(j[l]);
          ++steps[l];
        }
      }
    }
    for (int l = 0; l < lanes && out->size() < max_hits; ++l) {
      if (pos[l] < n - 1) {  // exclude the sentinel position
        out->push_back(pos[l]);
      }
    }
    idx += lanes;
  }
}

void FmIndex::LocateSerial(Interval iv, size_t max_hits, std::vector<int64_t>* out) const {
  const int64_t n = static_cast<int64_t>(bwt_.size());
  for (int64_t idx = iv.lo; idx < iv.hi && out->size() < max_hits; ++idx) {
    int64_t j = idx;
    int64_t steps = 0;
    while (true) {
      size_t word = static_cast<size_t>(j) / 64;
      uint64_t bit = 1ull << (static_cast<size_t>(j) % 64);
      if (sampled_mark_[word] & bit) {
        uint32_t rank = mark_rank_[word] +
                        static_cast<uint32_t>(std::popcount(sampled_mark_[word] & (bit - 1)));
        int64_t pos = sa_samples_[rank] + steps;
        if (pos >= n) {
          pos -= n;
        }
        if (pos < n - 1) {  // exclude the sentinel position
          out->push_back(pos);
        }
        break;
      }
      j = LastToFirst(j);
      ++steps;
    }
  }
}

size_t FmIndex::MemoryBytes() const {
  return bwt_.size() + occ_.size() * sizeof(occ_[0]) + sampled_mark_.size() * 8 +
         mark_rank_.size() * 4 + sa_samples_.size() * 4;
}

}  // namespace persona::align
