// SNAP-style read aligner: hash-index seeding + candidate voting + Landau-Vishkin
// verification (Zaharia et al., integrated by Persona as its highest-throughput aligner).
//
// Algorithm per read (both strands):
//   1. sample seeds across the read and look each up in the SeedIndex;
//   2. each hit votes for the implied read start location; votes accumulate in a small
//      open-addressed map;
//   3. candidates are verified best-votes-first with the banded edit-distance kernel,
//      keeping best and second-best distances for MAPQ;
//   4. early exit once a perfect (distance-0) hit is confirmed.
//
// The hot path is batched and allocation-free: AlignBatch runs the seeding phase for
// every read in the batch (rolling 2-bit seed packing, epoch-cleared vote maps), then
// the verification phase (reused Landau-Vishkin workspace), with the profiling clocks
// read once per batch phase instead of four times per read. All working memory lives
// in a SnapAlignerScratch that a worker thread reuses across batches. Align() is the
// same code run at batch size 1.

#ifndef PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_
#define PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/edit_distance.h"
#include "src/align/seed_index.h"
#include "src/align/vote_map.h"
#include "src/genome/reference.h"

namespace persona::align {

struct SnapOptions {
  int seed_stride = 8;        // distance between sampled seed offsets in the read
  int max_edit_distance = 12; // candidate verification bound (max_k)
  int max_candidates = 16;    // verified candidates per strand, best votes first
  int min_votes = 1;          // candidates below this vote count are ignored
};

// Reusable working memory for SnapAligner::AlignBatch (see Aligner::MakeScratch).
// Holds the per-strand vote maps, the per-read reverse-complement and candidate
// staging for the batch's seeding phase, and the verification DP workspace.
class SnapAlignerScratch final : public AlignerScratch {
 public:
  SnapAlignerScratch() = default;

 private:
  friend class SnapAligner;

  // Candidates for one (read, strand), sorted best-votes-first. Ranges index into
  // the flat candidates_ array: entry 2 * r + strand covers read r.
  struct CandidateRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  VoteMap votes_[2];
  std::vector<std::pair<uint64_t, int>> seed_stage_;  // (packed seed, read offset)
  std::vector<std::pair<std::span<const uint32_t>, int>> hit_stage_;  // (positions, offset)
  std::vector<VoteCandidate> candidates_;     // flat, all reads x strands of a batch
  std::vector<CandidateRange> ranges_;        // 2 entries per read
  std::vector<std::string> reverse_bases_;    // per-read, capacity reused across batches
  LvWorkspace lv_;
  LvBatchScratch lv_batch_;                   // interleaved lanes for vector verification
  std::vector<LvCigarJob> cigar_jobs_;        // winner CIGARs deferred to one batch pass
  std::vector<int> cigar_dists_;
};

class SnapAligner final : public Aligner {
 public:
  // `reference` and `index` must outlive the aligner. The index is the shared read-only
  // resource of paper Fig. 3 ("Shared Data (e.g. Ref Index)").
  SnapAligner(const genome::ReferenceGenome* reference, const SeedIndex* index,
              const SnapOptions& options = {});

  std::string_view name() const override { return "snap"; }
  AlignmentResult Align(const genome::Read& read, AlignProfile* profile) const override;

  std::unique_ptr<AlignerScratch> MakeScratch() const override {
    return std::make_unique<SnapAlignerScratch>();
  }

  // Batched hot path; bit-identical to per-read Align (parity-tested). Falls back to
  // an internal thread-local scratch when `scratch` is null or of the wrong type.
  void AlignBatch(std::span<const genome::Read> reads, std::span<AlignmentResult> results,
                  AlignerScratch* scratch, AlignProfile* profile) const override;

  // AlignBatch pinned to an explicit SIMD dispatch level (AlignBatch ==
  // AlignBatchAtLevel at ActiveSimdLevel()). At vector levels the verification
  // phase feeds candidates from up to 4/8 reads through LvBatch per pass; at
  // kScalar it runs the per-read loop unchanged. Results are bit-identical at
  // every level (the vector kernels are parity oracles of the scalar ones);
  // parity tests and the bench drive all levels on identical batches through
  // this. An unsupported level falls back to kScalar.
  void AlignBatchAtLevel(std::span<const genome::Read> reads,
                         std::span<AlignmentResult> results, AlignerScratch* scratch,
                         AlignProfile* profile, SimdLevel level) const;

  const SnapOptions& options() const { return options_; }

 private:
  // Seeding phase for read r of the batch: fills scratch->ranges_[2r .. 2r+1] and
  // appends the read's sorted candidates to scratch->candidates_.
  void SeedOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
               AlignProfile* profile) const;
  // Verification phase for read r: consumes the staged candidates into a result.
  void VerifyOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
                 AlignProfile* profile, AlignmentResult* result) const;
  // Vector-level verification: a lane-refill wave engine advances one resumable
  // cursor per lane (each scanning one read's staged candidates exactly as
  // VerifyOne would) and verifies the lanes' pending candidates together in one
  // LvBatch pass per wave. Bit-identical to the VerifyOne loop.
  void VerifyBatchVector(std::span<const genome::Read> reads,
                         std::span<AlignmentResult> results, SnapAlignerScratch* scratch,
                         AlignProfile* profile, SimdLevel level) const;

  const genome::ReferenceGenome* reference_;
  const SeedIndex* index_;
  SnapOptions options_;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_
