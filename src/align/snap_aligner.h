// SNAP-style read aligner: hash-index seeding + candidate voting + Landau-Vishkin
// verification (Zaharia et al., integrated by Persona as its highest-throughput aligner).
//
// Algorithm per read (both strands):
//   1. sample seeds across the read and look each up in the SeedIndex;
//   2. each hit votes for the implied read start location; votes accumulate in a small
//      open-addressed map;
//   3. candidates are verified best-votes-first with the banded edit-distance kernel,
//      keeping best and second-best distances for MAPQ;
//   4. early exit once a perfect (distance-0) hit is confirmed.

#ifndef PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_
#define PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_

#include <memory>

#include "src/align/aligner.h"
#include "src/align/seed_index.h"
#include "src/genome/reference.h"

namespace persona::align {

struct SnapOptions {
  int seed_stride = 8;        // distance between sampled seed offsets in the read
  int max_edit_distance = 12; // candidate verification bound (max_k)
  int max_candidates = 16;    // verified candidates per strand, best votes first
  int min_votes = 1;          // candidates below this vote count are ignored
};

class SnapAligner final : public Aligner {
 public:
  // `reference` and `index` must outlive the aligner. The index is the shared read-only
  // resource of paper Fig. 3 ("Shared Data (e.g. Ref Index)").
  SnapAligner(const genome::ReferenceGenome* reference, const SeedIndex* index,
              const SnapOptions& options = {});

  std::string_view name() const override { return "snap"; }
  AlignmentResult Align(const genome::Read& read, AlignProfile* profile) const override;

  const SnapOptions& options() const { return options_; }

 private:
  const genome::ReferenceGenome* reference_;
  const SeedIndex* index_;
  SnapOptions options_;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_SNAP_ALIGNER_H_
