// Alignment result records and their binary (AGD results-column) encoding.
//
// Field set follows SAM semantics (flags, MAPQ, CIGAR, mate info) with positions kept in
// Persona's global coordinate space; conversion to per-contig SAM coordinates happens at
// export time.

#ifndef PERSONA_SRC_ALIGN_ALIGNMENT_H_
#define PERSONA_SRC_ALIGN_ALIGNMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/genome/reference.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::align {

// SAM bitwise flags.
inline constexpr uint16_t kFlagPaired = 0x1;
inline constexpr uint16_t kFlagProperPair = 0x2;
inline constexpr uint16_t kFlagUnmapped = 0x4;
inline constexpr uint16_t kFlagMateUnmapped = 0x8;
inline constexpr uint16_t kFlagReverse = 0x10;
inline constexpr uint16_t kFlagMateReverse = 0x20;
inline constexpr uint16_t kFlagFirstInPair = 0x40;
inline constexpr uint16_t kFlagSecondInPair = 0x80;
inline constexpr uint16_t kFlagSecondary = 0x100;
inline constexpr uint16_t kFlagQcFail = 0x200;
inline constexpr uint16_t kFlagDuplicate = 0x400;
inline constexpr uint16_t kFlagSupplementary = 0x800;

struct AlignmentResult {
  genome::GenomeLocation location = genome::kInvalidLocation;  // global; -1 = unmapped
  genome::GenomeLocation mate_location = genome::kInvalidLocation;
  int32_t template_length = 0;
  uint16_t flags = kFlagUnmapped;
  uint8_t mapq = 0;
  int16_t edit_distance = -1;
  int32_t score = 0;
  std::string cigar;  // SAM CIGAR string, empty when unmapped

  bool mapped() const { return (flags & kFlagUnmapped) == 0; }
  bool reverse() const { return (flags & kFlagReverse) != 0; }
  bool duplicate() const { return (flags & kFlagDuplicate) != 0; }

  bool operator==(const AlignmentResult&) const = default;
};

// Binary record encoding for the AGD results column (varint-packed, self-delimiting).
void EncodeResult(const AlignmentResult& result, Buffer* out);
Status DecodeResult(std::span<const uint8_t> bytes, size_t* offset, AlignmentResult* out);

// One parsed CIGAR element, e.g. {"10M"} -> {op='M', length=10}.
struct CigarOp {
  char op = 'M';  // one of MIDNSHP=X
  int64_t length = 0;

  bool consumes_read() const {
    return op == 'M' || op == 'I' || op == 'S' || op == '=' || op == 'X';
  }
  bool consumes_reference() const {
    return op == 'M' || op == 'D' || op == 'N' || op == '=' || op == 'X';
  }

  bool operator==(const CigarOp&) const = default;
};

// Parses a SAM CIGAR string; errors on unknown op letters, zero lengths, or trailing
// digits. "*" and "" parse to an empty op list (unmapped convention).
Result<std::vector<CigarOp>> ParseCigar(std::string_view cigar);

// Length in reference bases consumed by a CIGAR (M/D/N/=/X advance the reference).
int64_t CigarReferenceSpan(const std::string& cigar);

// Length in read bases consumed by a CIGAR (M/I/S/=/X advance the read).
int64_t CigarQuerySpan(const std::string& cigar);

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_ALIGNMENT_H_
