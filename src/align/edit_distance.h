// Edit-distance kernels.
//
// LandauVishkin is SNAP's inner loop: a banded O(k*n) algorithm that answers "is the edit
// distance <= k, and if so what is it?" — exactly what candidate verification needs. Its
// short, branchy, data-dependent structure is what makes SNAP core-bound (paper Fig. 8).
// FullEditDistance is the O(n*m) reference implementation used by tests.

#ifndef PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
#define PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace persona::align {

// Reusable DP/traceback buffers for LandauVishkin. A single workspace serves any
// number of sequential calls; reusing one across a batch of candidate verifications
// removes the two matrix allocations (~10 KB at typical read length and max_k) that
// otherwise dominate each call's setup.
struct LvWorkspace {
  std::vector<int> dp;
  std::vector<int8_t> bt;
  std::vector<std::pair<char, int>> runs;
};

// Returns edit distance between `text` and `pattern` if <= max_k, else -1.
// If `cigar` is non-null and the result is >= 0, writes a SAM CIGAR for aligning
// `pattern` against `text` (M/I/D runs; I = base present in pattern but not text).
// `workspace` may be null (a call-local workspace is used).
int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar = nullptr, LvWorkspace* workspace = nullptr);

// Reference O(n*m) Levenshtein distance (tests only; no band, no cutoff).
int FullEditDistance(std::string_view a, std::string_view b);

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
