// Edit-distance kernels.
//
// LandauVishkin is SNAP's inner loop: a banded O(k*n) algorithm that answers "is the edit
// distance <= k, and if so what is it?" — exactly what candidate verification needs. Its
// short, branchy, data-dependent structure is what makes SNAP core-bound (paper Fig. 8).
// FullEditDistance is the O(n*m) reference implementation used by tests.

#ifndef PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
#define PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/aligned.h"
#include "src/util/simd.h"

namespace persona::align {

// Reusable DP/traceback buffers for LandauVishkin. A single workspace serves any
// number of sequential calls; reusing one across a batch of candidate verifications
// removes the two matrix allocations (~10 KB at typical read length and max_k) that
// otherwise dominate each call's setup.
struct LvWorkspace {
  AlignedVector<int> dp;
  std::vector<int8_t> bt;
  std::vector<std::pair<char, int>> runs;
};

// Returns edit distance between `text` and `pattern` if <= max_k, else -1.
// If `cigar` is non-null and the result is >= 0, writes a SAM CIGAR for aligning
// `pattern` against `text` (M/I/D runs; I = base present in pattern but not text).
// `workspace` may be null (a call-local workspace is used).
int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar = nullptr, LvWorkspace* workspace = nullptr);

// Same contract as LandauVishkin when the caller already knows the distance that
// call would return (`distance` >= 0 and <= max_k): produces the identical CIGAR
// while running only the one banded pass the adaptive schedule would have emitted
// it from, instead of re-walking the failed smaller-k passes. Used to recompute
// the winner CIGAR after batch verification has already established the distance.
int LandauVishkinKnownDistance(std::string_view text, std::string_view pattern, int max_k,
                               int distance, std::string* cigar, LvWorkspace* workspace);

// One distance-only verification job for LvBatch.
struct LvBatchJob {
  std::string_view text;
  std::string_view pattern;
};

// One winner-CIGAR reconstruction job for LvBatchCigar: `distance` is the known
// (> 0) LandauVishkin distance of the pair and `cigar` receives the CIGAR.
struct LvCigarJob {
  std::string_view text;
  std::string_view pattern;
  int distance = 0;
  std::string* cigar = nullptr;
};

// Interleaved lane buffers + scratch for LvBatch/LvBatchCigar. Vector kernels
// load these with aligned 32-byte instructions, hence AlignedVector.
struct LvBatchScratch {
  AlignedVector<uint8_t> pat;
  AlignedVector<uint8_t> text;
  AlignedVector<int32_t> dp;
  AlignedVector<int32_t> hist;   // full band history for CIGAR passes
  std::vector<uint32_t> group;   // job indices sharing one scheduled band bound
  LvWorkspace scalar_ws;
};

// Lanes one vector pass covers at `level` (1 when scalar: jobs run sequentially).
int LvBatchWidth(SimdLevel level);

// Batch entry point: distances[i] = LandauVishkin(jobs[i].text, jobs[i].pattern,
// max_k) for every job, bit-identical to the scalar calls at every level. At
// kSse4/kAvx2 the banded passes run 4/8 interleaved jobs per vector instruction,
// preserving the scalar adaptive band-doubling schedule per lane (a lane retires
// exactly when its scalar call would have returned). Distance-only; CIGARs for
// winners come from LandauVishkinKnownDistance.
void LvBatch(const LvBatchJob* jobs, int* distances, size_t count, int max_k,
             SimdLevel level, LvBatchScratch* scratch);

// Batch winner-CIGAR reconstruction: for every job, equivalent to
// distances[i] = LandauVishkinKnownDistance(text, pattern, max_k, distance,
// job.cigar, ...) — identical distances and CIGAR bytes at every level. At
// vector levels, jobs are grouped by the band bound the adaptive schedule
// assigns their distance, filled 4/8 per vector pass with full band history
// kept, and traced back per lane by replaying the scalar traceback's exact
// op-priority over that history.
void LvBatchCigar(const LvCigarJob* jobs, int* distances, size_t count, int max_k,
                  SimdLevel level, LvBatchScratch* scratch);

// Reference O(n*m) Levenshtein distance (tests only; no band, no cutoff).
int FullEditDistance(std::string_view a, std::string_view b);

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
