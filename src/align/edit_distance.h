// Edit-distance kernels.
//
// LandauVishkin is SNAP's inner loop: a banded O(k*n) algorithm that answers "is the edit
// distance <= k, and if so what is it?" — exactly what candidate verification needs. Its
// short, branchy, data-dependent structure is what makes SNAP core-bound (paper Fig. 8).
// FullEditDistance is the O(n*m) reference implementation used by tests.

#ifndef PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
#define PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_

#include <string>
#include <string_view>

namespace persona::align {

// Returns edit distance between `text` and `pattern` if <= max_k, else -1.
// If `cigar` is non-null and the result is >= 0, writes a SAM CIGAR for aligning
// `pattern` against `text` (M/I/D runs; I = base present in pattern but not text).
int LandauVishkin(std::string_view text, std::string_view pattern, int max_k,
                  std::string* cigar = nullptr);

// Reference O(n*m) Levenshtein distance (tests only; no band, no cutoff).
int FullEditDistance(std::string_view a, std::string_view b);

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_EDIT_DISTANCE_H_
