#include "src/align/accuracy.h"

#include <cstdlib>

namespace persona::align {

AccuracyReport ScoreAlignments(const genome::ReferenceGenome& reference,
                               std::span<const genome::Read> reads,
                               std::span<const AlignmentResult> results, int64_t tolerance) {
  AccuracyReport report;
  size_t n = std::min(reads.size(), results.size());
  for (size_t i = 0; i < n; ++i) {
    auto truth = genome::ParseReadTruth(reference, reads[i].metadata);
    if (!truth.ok()) {
      continue;
    }
    ++report.total;
    const AlignmentResult& r = results[i];
    if (!r.mapped()) {
      ++report.unaligned;
      continue;
    }
    ++report.aligned;
    auto expected = reference.LocalToGlobal(truth->contig_index, truth->position);
    if (expected.ok() && std::llabs(r.location - *expected) <= tolerance &&
        r.reverse() == truth->reverse) {
      ++report.correct;
    } else {
      ++report.wrong;
    }
  }
  return report;
}

}  // namespace persona::align
