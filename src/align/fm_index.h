// FM-index over the reference genome: suffix array, BWT, occurrence checkpoints, and a
// sampled suffix array for locating. This is the substrate of the BWA-MEM-style aligner.
//
// Construction uses prefix-doubling with counting sort (O(n log n)); search uses the
// classic backward-extension on the BWT. Occ queries scan up to one checkpoint block of
// the BWT per step — the cache-unfriendly walk that makes BWT aligners memory-bound
// (paper Fig. 8 / [48]).
//
// Alphabet: $ < A < C < G < T (codes 0..4). Non-ACGT reference bases are stored as A
// (synthetic references here contain no N; documented substitution).

#ifndef PERSONA_SRC_ALIGN_FM_INDEX_H_
#define PERSONA_SRC_ALIGN_FM_INDEX_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::align {

// Builds a suffix array via prefix doubling; exposed for testing against a naive oracle.
// `text` must end with a unique smallest character (the sentinel).
std::vector<int32_t> BuildSuffixArray(std::span<const uint8_t> text);

class FmIndex {
 public:
  struct Options {
    int sa_sample_rate = 32;   // keep SA values at text positions divisible by this
    int occ_checkpoint = 64;   // BWT positions between occurrence checkpoints
  };

  // Suffix-array interval [lo, hi) of suffixes prefixed by the current pattern.
  struct Interval {
    int64_t lo = 0;
    int64_t hi = 0;
    bool empty() const { return hi <= lo; }
    int64_t size() const { return hi - lo; }
  };

  static Result<FmIndex> Build(const genome::ReferenceGenome& reference,
                               const Options& options);
  static Result<FmIndex> Build(const genome::ReferenceGenome& reference);

  // Interval of the empty pattern (all rotations).
  Interval Whole() const { return Interval{0, static_cast<int64_t>(bwt_.size())}; }

  // Narrows `iv` by prepending `base` to the pattern. Non-ACGT bases yield empty.
  Interval ExtendBackward(Interval iv, char base) const;

  // Backward search of the whole pattern; empty interval when absent.
  Interval Count(std::string_view pattern) const;

  // Resolves up to `max_hits` text positions for the suffixes in `iv`.
  // Batched occurrence walk: the interval's LF chains advance in lockstep,
  // each chain's next mark word and BWT block pair prefetched before any chain
  // steps, so the walks' cache misses overlap instead of serializing (this is
  // the memory-bound loop of paper Fig. 8). Output is byte-identical to
  // LocateSerial.
  void Locate(Interval iv, size_t max_hits, std::vector<int64_t>* out) const;

  // Reference one-chain-at-a-time Locate (the pre-batching implementation).
  // Kept as the parity oracle and the bench's before/after baseline; not used
  // on hot paths.
  void LocateSerial(Interval iv, size_t max_hits, std::vector<int64_t>* out) const;

  // Prefetches the checkpoint entries and BWT block pair the next
  // ExtendBackward(iv, .) will scan. Purely a hint: callers that know the next
  // interval one step early (e.g. the backward-search loop) issue this so the
  // two dependent block misses overlap with other work.
  void PrefetchExtend(Interval iv) const {
    PrefetchOcc(iv.lo);
    PrefetchOcc(iv.hi);
  }

  // Length of the indexed text (reference bases, excluding the sentinel).
  int64_t text_length() const { return static_cast<int64_t>(bwt_.size()) - 1; }

  size_t MemoryBytes() const;

 private:
  FmIndex() = default;

  int64_t Occ(uint8_t code, int64_t pos) const;  // occurrences of code in bwt[0, pos)
  int64_t LastToFirst(int64_t idx) const;        // LF mapping

  // Prefetches the checkpoint entry and BWT block an Occ(., pos) scan reads.
  void PrefetchOcc(int64_t pos) const {
    const size_t block = static_cast<size_t>(pos) / static_cast<size_t>(occ_checkpoint_);
    __builtin_prefetch(occ_.data() + block, 0, 1);
    __builtin_prefetch(bwt_.data() + block * static_cast<size_t>(occ_checkpoint_), 0, 1);
  }

  std::vector<uint8_t> bwt_;                     // codes 0..4
  std::array<int64_t, 6> c_{};                   // c_[code] = #chars < code in text
  int occ_checkpoint_ = 64;
  std::vector<std::array<uint32_t, 5>> occ_;     // cumulative counts at block starts

  // Sampled SA: sampled_mark_ bit set at SA indices whose value % rate == 0;
  // samples stored in mark-rank order.
  int sa_sample_rate_ = 32;
  std::vector<uint64_t> sampled_mark_;
  std::vector<uint32_t> mark_rank_;              // set-bit count before each 64-bit word
  std::vector<int32_t> sa_samples_;
};

inline Result<FmIndex> FmIndex::Build(const genome::ReferenceGenome& reference) {
  return Build(reference, Options{});
}

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_FM_INDEX_H_
