// Striped Smith-Waterman SSE4.1 kernel (4 x int32 lanes). This TU is compiled
// with -msse4.1; SwFillSse4 must only be called after SimdLevelSupported(kSse4).

#include "src/align/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstring>

namespace {

struct SseOps {
  using V = __m128i;
  static constexpr int kWidth = 4;

  static V Set1(int32_t x) { return _mm_set1_epi32(x); }
  static V LoadA(const int32_t* p) { return _mm_load_si128(reinterpret_cast<const V*>(p)); }
  static void StoreA(int32_t* p, V v) { _mm_store_si128(reinterpret_cast<V*>(p), v); }
  static V Max(V x, V y) { return _mm_max_epi32(x, y); }
  static V Add(V x, V y) { return _mm_add_epi32(x, y); }
  static V CmpEq(V x, V y) { return _mm_cmpeq_epi32(x, y); }
  static V CmpGt(V x, V y) { return _mm_cmpgt_epi32(x, y); }
  static V Or(V x, V y) { return _mm_or_si128(x, y); }
  static V Blend(V x, V y, V mask) { return _mm_blendv_epi8(x, y, mask); }
  static int AnyGt(V x, V y) { return _mm_movemask_epi8(_mm_cmpgt_epi32(x, y)); }
  // [first, v0, v1, v2]: lanes shift up by one, `first` enters lane 0.
  static V ShiftIn(V v, int32_t first) {
    return _mm_insert_epi32(_mm_slli_si128(v, 4), first, 0);
  }
  // 4 bytes -> 4 zero-extended int32 lanes.
  static V LoadBytes(const uint8_t* p) {
    int32_t bits;
    std::memcpy(&bits, p, sizeof(bits));
    return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(bits));
  }
};

}  // namespace

#include "src/align/sw_simd.inc.h"

namespace persona::align::simd {

void SwFillSse4(const SwPassArgs& args) { SwFillImpl<SseOps>(args); }

}  // namespace persona::align::simd

#else  // !x86

#include <cstdlib>

namespace persona::align::simd {

// Never reachable off x86 (dispatch resolves to kScalar); defined so the
// symbol always links.
void SwFillSse4(const SwPassArgs&) { std::abort(); }

}  // namespace persona::align::simd

#endif
