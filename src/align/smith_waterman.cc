#include "src/align/smith_waterman.h"

#include <algorithm>
#include <vector>

namespace persona::align {

SwResult SmithWaterman(std::string_view ref, std::string_view query, const SwParams& params) {
  const int n = static_cast<int>(ref.size());
  const int m = static_cast<int>(query.size());
  SwResult result;
  if (n == 0 || m == 0) {
    return result;
  }

  constexpr int kNegInf = -(1 << 28);
  const int cols = n + 1;

  // Gotoh three-matrix DP. H: best score ending at (i,j); E: best ending in a gap that
  // consumes reference ('D'); F: best ending in a gap that consumes query ('I').
  std::vector<int> h(static_cast<size_t>(m + 1) * cols, 0);
  std::vector<int> e(static_cast<size_t>(m + 1) * cols, kNegInf);
  std::vector<int> f(static_cast<size_t>(m + 1) * cols, kNegInf);

  auto idx = [cols](int i, int j) { return static_cast<size_t>(i) * cols + j; };
  auto substitution = [&](int i, int j) {
    return query[static_cast<size_t>(i - 1)] == ref[static_cast<size_t>(j - 1)]
               ? params.match
               : params.mismatch;
  };

  int best = 0;
  int best_i = 0;
  int best_j = 0;

  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      e[idx(i, j)] = std::max(h[idx(i, j - 1)] + params.gap_open + params.gap_extend,
                              e[idx(i, j - 1)] + params.gap_extend);
      f[idx(i, j)] = std::max(h[idx(i - 1, j)] + params.gap_open + params.gap_extend,
                              f[idx(i - 1, j)] + params.gap_extend);
      int diag = h[idx(i - 1, j - 1)] + substitution(i, j);
      int score = std::max({0, diag, e[idx(i, j)], f[idx(i, j)]});
      h[idx(i, j)] = score;
      if (score > best) {
        best = score;
        best_i = i;
        best_j = j;
      }
    }
  }

  result.score = best;
  if (best == 0) {
    return result;
  }

  // Three-state traceback. A cell's H value says nothing about how a gap *through* the
  // cell continues, so the state machine must stay in E/F until the gap's opening point
  // — collapsing it to one op per cell fragments every multi-base gap (and emits CIGARs
  // whose score is below H's optimum).
  std::vector<std::pair<char, int>> runs;
  auto push = [&runs](char op) {
    if (!runs.empty() && runs.back().first == op) {
      ++runs.back().second;
    } else {
      runs.emplace_back(op, 1);
    }
  };

  enum class State { kMain, kRefGap, kQueryGap };
  State state = State::kMain;
  int i = best_i;
  int j = best_j;
  while (i > 0 && j > 0) {
    if (state == State::kMain) {
      const int score = h[idx(i, j)];
      if (score == 0) {
        break;
      }
      if (score == h[idx(i - 1, j - 1)] + substitution(i, j)) {
        push('M');
        --i;
        --j;
      } else if (score == e[idx(i, j)]) {
        state = State::kRefGap;
      } else {
        state = State::kQueryGap;
      }
    } else if (state == State::kRefGap) {
      push('D');
      // Prefer continuing the gap on ties: repeats then yield one long run rather than
      // several short ones, which is also the canonical (leftmost) placement.
      if (e[idx(i, j)] == e[idx(i, j - 1)] + params.gap_extend) {
        --j;
      } else {
        --j;
        state = State::kMain;
      }
    } else {
      push('I');
      if (f[idx(i, j)] == f[idx(i - 1, j)] + params.gap_extend) {
        --i;
      } else {
        --i;
        state = State::kMain;
      }
    }
  }

  result.query_begin = i;
  result.query_end = best_i;
  result.ref_begin = j;
  result.ref_end = best_j;
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    result.cigar += std::to_string(it->second);
    result.cigar.push_back(it->first);
  }
  return result;
}

}  // namespace persona::align
