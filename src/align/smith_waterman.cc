#include "src/align/smith_waterman.h"

#include <algorithm>
#include <array>
#include <tuple>

#include "src/align/simd_kernels.h"

namespace persona::align {

namespace {

constexpr int kNegInf = -(1 << 28);

void EmitCigar(const std::vector<std::pair<char, int>>& runs, std::string* out) {
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    *out += std::to_string(it->second);
    out->push_back(it->first);
  }
}

// Traceback over a filled banded H matrix, templated over the H accessor so the
// scalar (banded row-major) and striped (column-major Farrar) layouts share one
// implementation. `h_at(r, c)` must return 0 on the r == 0 / c == 0 boundary,
// kNegInf out of band, and the exact H value in band — both fills guarantee
// their stored values are bit-identical, so the emitted positions and CIGAR are
// too. Gap-state decisions re-derive E and F from the same recurrences and
// boundary conventions as the fill, caching one recomputed E row and one F
// column: a Main-state diagonal step needs neither, so perfect or
// substitution-only alignments never pay for them.
template <typename HAt>
void BandedTraceback(std::string_view ref, std::string_view query, const SwParams& params,
                     int lo, int hi, int best_i, int best_j, const HAt& h_at, SwScratch& ws,
                     SwResult* result) {
  const int n = static_cast<int>(ref.size());
  const int m = static_cast<int>(query.size());
  const int width = hi - lo + 1;
  const int go_ge = params.gap_open + params.gap_extend;
  const int gap_extend = params.gap_extend;
  const int match = params.match;
  const int mismatch = params.mismatch;
  const size_t w = static_cast<size_t>(width);

  ws.e_row.resize(w);
  ws.f_col.resize(static_cast<size_t>(m) + 1);
  int e_row_r = -1;  // row currently held in ws.e_row
  auto e_at = [&](int r, int c) -> int {
    if (c == 0) {
      return kNegInf;
    }
    const int p = c - r - lo;
    if (p < 0 || p >= width) {
      return kNegInf;
    }
    if (e_row_r != r) {
      e_row_r = r;
      const int rjlo = std::max(1, r + lo);
      const int rjhi = std::min(n, r + hi);
      int e = kNegInf;
      int left_h = rjlo == 1 ? 0 : kNegInf;
      for (int c2 = rjlo; c2 <= rjhi; ++c2) {
        const int p2 = c2 - r - lo;
        e = std::max(left_h + go_ge, e + gap_extend);
        ws.e_row[static_cast<size_t>(p2)] = e;
        left_h = h_at(r, c2);
      }
    }
    return ws.e_row[static_cast<size_t>(p)];
  };
  int f_col_c = -1;  // column currently held in ws.f_col
  int f_col_rlo = 0;
  int f_col_rhi = -1;
  auto f_at = [&](int r, int c) -> int {
    if (f_col_c != c) {
      f_col_c = c;
      f_col_rlo = std::max(1, c - hi);
      f_col_rhi = std::min(m, c - lo);
      int f = kNegInf;
      int up_h = f_col_rlo == 1 ? 0 : kNegInf;
      for (int r2 = f_col_rlo; r2 <= f_col_rhi; ++r2) {
        f = std::max(up_h + go_ge, f + gap_extend);
        ws.f_col[static_cast<size_t>(r2)] = f;
        up_h = h_at(r2, c);
      }
    }
    if (r < f_col_rlo || r > f_col_rhi) {
      return kNegInf;
    }
    return ws.f_col[static_cast<size_t>(r)];
  };

  ws.runs.clear();
  auto push = [&ws](char op) {
    if (!ws.runs.empty() && ws.runs.back().first == op) {
      ++ws.runs.back().second;
    } else {
      ws.runs.emplace_back(op, 1);
    }
  };

  // Same three-state machine (and tie preferences) as the full-matrix kernel: stop,
  // then diagonal, then E, then F; gaps prefer extending on ties.
  enum class State { kMain, kRefGap, kQueryGap };
  State state = State::kMain;
  int i = best_i;
  int j = best_j;
  while (i > 0 && j > 0) {
    if (state == State::kMain) {
      const int score = h_at(i, j);
      if (score == 0) {
        break;  // local start
      }
      const int sub = query[static_cast<size_t>(i - 1)] == ref[static_cast<size_t>(j - 1)]
                          ? match
                          : mismatch;
      if (score == h_at(i - 1, j - 1) + sub) {
        push('M');
        --i;
        --j;
      } else if (score == e_at(i, j)) {
        state = State::kRefGap;
      } else {
        state = State::kQueryGap;
      }
    } else if (state == State::kRefGap) {
      push('D');
      if (e_at(i, j) == e_at(i, j - 1) + gap_extend) {
        --j;
      } else {
        --j;
        state = State::kMain;
      }
    } else {
      push('I');
      if (f_at(i, j) == f_at(i - 1, j) + gap_extend) {
        --i;
      } else {
        --i;
        state = State::kMain;
      }
    }
  }

  result->query_begin = i;
  result->query_end = best_i;
  result->ref_begin = j;
  result->ref_end = best_j;
  EmitCigar(ws.runs, &result->cigar);
}

// The scalar production kernel: band-limited two-row fill (see header comment).
SwResult SmithWatermanScalar(std::string_view ref, std::string_view query,
                             const SwParams& params, SwScratch& ws) {
  const int n = static_cast<int>(ref.size());
  const int m = static_cast<int>(query.size());
  SwResult result;

  // Band over diagonals d = j - i: the corner-to-corner sweep [min(n-m,0), max(n-m,0)]
  // widened by the radius on both sides. Cell (i, j) is stored at offset j - i - lo of
  // its row; moving up a row shifts the offset by +1 (up), 0 (diagonal), -1 (left).
  const int radius = params.band_radius > 0 ? params.band_radius : kDefaultBandRadius;
  const int lo = std::min(n - m, 0) - radius;
  const int hi = std::max(n - m, 0) + radius;
  const int width = hi - lo + 1;

  const size_t w = static_cast<size_t>(width);
  ws.h.resize(static_cast<size_t>(m) * w);
  ws.f_prev.resize(w);
  ws.f_cur.resize(w);

  const int go_ge = params.gap_open + params.gap_extend;
  const int gap_extend = params.gap_extend;
  const int match = params.match;
  const int mismatch = params.mismatch;
  int best = 0;
  int best_i = 0;
  int best_j = 0;

  // Computes one cell from its three incoming states; stores only H (the traceback
  // re-derives gap decisions from the recurrences, so the fill carries no per-cell
  // choice flags — recording them costs more across every cell than the occasional
  // O(band)/O(|query|) recompute at traceback time). Returns {h, e} so callers chain
  // a cell's outputs into its right neighbor's inputs through registers.
  auto cell = [&](int i, int j, int p, int left_h, int left_e, int up_h, int up_f,
                  int diag_h, int32_t* __restrict hrow, int* __restrict fc) {
    const int e = std::max(left_h + go_ge, left_e + gap_extend);
    const int f = std::max(up_h + go_ge, up_f + gap_extend);
    const int sub =
        query[static_cast<size_t>(i - 1)] == ref[static_cast<size_t>(j - 1)] ? match
                                                                             : mismatch;
    const int h = std::max({0, diag_h + sub, e, f});
    hrow[p] = h;
    fc[p] = f;
    if (h > best) {
      best = h;
      best_i = i;
      best_j = j;
    }
    return std::pair<int, int>{h, e};
  };

  // No row is cleared between iterations: a cell only ever reads neighbors that were
  // computed (the previous row's computed range covers every in-band read, boundary
  // cells are peeled out of the loops), and the traceback only revisits computed
  // cells, so stale slots are never observed.
  //
  // Row 1: the diagonal and upper predecessors are the all-zero row-0 boundary.
  int ph_prev;  // highest offset computed in the previous row
  {
    const int jhi = std::min(n, 1 + hi);
    int32_t* __restrict hrow = ws.h.data();
    int* __restrict fc = ws.f_cur.data();
    auto [left_h, left_e] =
        cell(1, 1, -lo, /*left_h=*/0, /*left_e=*/kNegInf, /*up_h=*/0, /*up_f=*/kNegInf,
             /*diag_h=*/0, hrow, fc);
    for (int j = 2; j <= jhi; ++j) {
      const int p = j - 1 - lo;
      std::tie(left_h, left_e) = cell(1, j, p, left_h, left_e, 0, kNegInf, 0, hrow, fc);
    }
    ws.f_prev.swap(ws.f_cur);
    ph_prev = jhi - 1 - lo;
  }

  for (int i = 2; i <= m; ++i) {
    const int jlo = std::max(1, i + lo);
    const int jhi = std::min(n, i + hi);
    if (jlo > jhi) {
      break;  // the band has run off the reference; later rows are empty too
    }
    int32_t* __restrict hrow = ws.h.data() + static_cast<size_t>(i - 1) * w;
    const int32_t* __restrict hp = ws.h.data() + static_cast<size_t>(i - 2) * w;
    int* __restrict fc = ws.f_cur.data();
    const int* __restrict fp = ws.f_prev.data();
    const int p_lo = jlo - i - lo;
    const int p_hi = jhi - i - lo;

    // Left-edge cell: no in-band left neighbor; column 0 scores 0, out-of-band -inf.
    const int edge_up_h = p_lo + 1 <= ph_prev ? hp[p_lo + 1] : kNegInf;
    auto [left_h, left_e] =
        cell(i, jlo, p_lo, /*left_h=*/jlo == 1 ? 0 : kNegInf, /*left_e=*/kNegInf,
             edge_up_h, p_lo + 1 <= ph_prev ? fp[p_lo + 1] : kNegInf,
             /*diag_h=*/jlo == 1 ? 0 : hp[p_lo], hrow, fc);
    // Main body: every predecessor is a computed cell — no boundary tests, and the
    // left/diagonal inputs chain through registers (diag(p) == up(p-1)).
    const int p_mid = std::min(p_hi, ph_prev - 1);
    int diag_h = edge_up_h;
    for (int p = p_lo + 1; p <= p_mid; ++p) {
      const int up_h = hp[p + 1];
      std::tie(left_h, left_e) =
          cell(i, i + lo + p, p, left_h, left_e, up_h, fp[p + 1], diag_h, hrow, fc);
      diag_h = up_h;
    }
    // Top-edge tail (at most one cell): the upper neighbor is beyond the band.
    for (int p = std::max(p_mid, p_lo) + 1; p <= p_hi; ++p) {
      std::tie(left_h, left_e) =
          cell(i, i + lo + p, p, left_h, left_e, kNegInf, kNegInf, hp[p], hrow, fc);
    }
    ws.f_prev.swap(ws.f_cur);
    ph_prev = p_hi;
  }

  result.score = best;
  if (best == 0) {
    return result;
  }

  const int32_t* hmat = ws.h.data();
  auto h_at = [&](int r, int c) -> int {
    if (r == 0 || c == 0) {
      return 0;  // local-alignment boundary
    }
    const int p = c - r - lo;
    if (p < 0 || p >= width) {
      return kNegInf;  // out of band
    }
    return hmat[static_cast<size_t>(r - 1) * w + static_cast<size_t>(p)];
  };
  BandedTraceback(ref, query, params, lo, hi, best_i, best_j, h_at, ws, &result);
  return result;
}

// Maps a reference byte to its row in the precomputed query profile; bytes
// outside the canonical alphabet take the kernel's direct-compare path (255),
// preserving the scalar kernel's exact byte-equality semantics for any input.
const uint8_t* ProfileIndexTable() {
  static const std::array<uint8_t, 256> table = [] {
    std::array<uint8_t, 256> t;
    t.fill(255);
    const std::string_view alphabet = "ACGTN";
    for (size_t c = 0; c < alphabet.size(); ++c) {
      t[static_cast<uint8_t>(alphabet[c])] = static_cast<uint8_t>(c);
    }
    return t;
  }();
  return table.data();
}

// Farrar-striped fill at a vector dispatch level + shared traceback. Bit-identical
// to SmithWatermanScalar (see sw_simd.inc.h for the parity argument).
SwResult SmithWatermanStriped(std::string_view ref, std::string_view query,
                              const SwParams& params, SwScratch& ws, SimdLevel level) {
  const int n = static_cast<int>(ref.size());
  const int m = static_cast<int>(query.size());
  SwResult result;

  const int radius = params.band_radius > 0 ? params.band_radius : kDefaultBandRadius;
  const int lo = std::min(n - m, 0) - radius;
  const int hi = std::max(n - m, 0) + radius;
  const int lanes = level == SimdLevel::kAvx2 ? 8 : 4;
  const int stripes = (m + lanes - 1) / lanes;
  const size_t sv = static_cast<size_t>(stripes) * lanes;
  const int n_cols = std::min(n, m + hi);

  // Striped query bytes, 1-based row indices, and the 5-row ACGTN profile.
  // Padding positions (>= m) carry row m+1.. and are masked out by the kernel.
  ws.sq.assign(sv, 0);
  ws.srow.resize(sv);
  for (size_t pos = 0; pos < sv; ++pos) {
    const int s = static_cast<int>(pos) / lanes;
    const int l = static_cast<int>(pos) % lanes;
    const int i = l * stripes + s;  // 0-based query index at (stripe s, lane l)
    ws.srow[pos] = i + 1;
    if (i < m) {
      ws.sq[pos] = static_cast<uint8_t>(query[static_cast<size_t>(i)]);
    }
  }
  const std::string_view alphabet = "ACGTN";
  ws.sprofile.resize(5 * sv);
  for (size_t c = 0; c < alphabet.size(); ++c) {
    for (size_t pos = 0; pos < sv; ++pos) {
      ws.sprofile[c * sv + pos] =
          ws.sq[pos] == static_cast<uint8_t>(alphabet[c]) ? params.match : params.mismatch;
    }
  }
  ws.sh.resize(static_cast<size_t>(n_cols) * sv);
  ws.se.resize(sv);
  ws.sf.resize(sv);
  ws.soob.resize(sv);
  ws.szero.resize(sv);
  ws.sbest.resize(sv);
  ws.sbest_j.resize(sv);

  simd::SwPassArgs args;
  args.qchars = ws.sq.data();
  args.profile = ws.sprofile.data();
  args.prof_idx = ProfileIndexTable();
  args.ref = reinterpret_cast<const uint8_t*>(ref.data());
  args.row = ws.srow.data();
  args.n_cols = n_cols;
  args.m = m;
  args.stripes = stripes;
  args.lo = lo;
  args.hi = hi;
  args.match = params.match;
  args.mismatch = params.mismatch;
  args.gap_open_extend = params.gap_open + params.gap_extend;
  args.gap_extend = params.gap_extend;
  args.neg_inf = kNegInf;
  args.h = ws.sh.data();
  args.e = ws.se.data();
  args.f = ws.sf.data();
  args.oob = ws.soob.data();
  args.zero_col = ws.szero.data();
  args.best = ws.sbest.data();
  args.best_j = ws.sbest_j.data();
  if (level == SimdLevel::kAvx2) {
    simd::SwFillAvx2(args);
  } else {
    simd::SwFillSse4(args);
  }

  // Row-order reduce with strict greater: the first (lowest-row) position among
  // the maxima wins, and per position the kernel kept the earliest column —
  // together the scalar fill's row-major strict-greater argmax.
  int best = 0;
  int best_i = 0;
  int best_j = 0;
  for (int i = 0; i < m; ++i) {
    const size_t pos = static_cast<size_t>(i % stripes) * lanes + i / stripes;
    const int v = ws.sbest[pos];
    if (v > best) {
      best = v;
      best_i = i + 1;
      best_j = ws.sbest_j[pos];
    }
  }

  result.score = best;
  if (best == 0) {
    return result;
  }

  const int32_t* smat = ws.sh.data();
  const int width = hi - lo + 1;
  auto h_at = [&](int r, int c) -> int {
    if (r == 0 || c == 0) {
      return 0;  // local-alignment boundary
    }
    const int p = c - r - lo;
    if (p < 0 || p >= width) {
      return kNegInf;  // out of band
    }
    const int i = r - 1;
    const size_t pos = static_cast<size_t>(i % stripes) * lanes + i / stripes;
    return smat[static_cast<size_t>(c - 1) * sv + pos];
  };
  BandedTraceback(ref, query, params, lo, hi, best_i, best_j, h_at, ws, &result);
  return result;
}

}  // namespace

SwResult SmithWaterman(std::string_view ref, std::string_view query, const SwParams& params,
                       SwScratch* scratch) {
  return SmithWatermanAtLevel(ref, query, params, scratch, ActiveSimdLevel());
}

SwResult SmithWatermanAtLevel(std::string_view ref, std::string_view query,
                              const SwParams& params, SwScratch* scratch, SimdLevel level) {
  if (ref.empty() || query.empty()) {
    return SwResult{};
  }
  SwScratch local;
  SwScratch& ws = scratch != nullptr ? *scratch : local;
  if (level != SimdLevel::kScalar && SimdLevelSupported(level)) {
    return SmithWatermanStriped(ref, query, params, ws, level);
  }
  return SmithWatermanScalar(ref, query, params, ws);
}

SwResult SmithWatermanFull(std::string_view ref, std::string_view query,
                           const SwParams& params) {
  const int n = static_cast<int>(ref.size());
  const int m = static_cast<int>(query.size());
  SwResult result;
  if (n == 0 || m == 0) {
    return result;
  }

  const int cols = n + 1;

  // Gotoh three-matrix DP. H: best score ending at (i,j); E: best ending in a gap that
  // consumes reference ('D'); F: best ending in a gap that consumes query ('I').
  std::vector<int> h(static_cast<size_t>(m + 1) * cols, 0);
  std::vector<int> e(static_cast<size_t>(m + 1) * cols, kNegInf);
  std::vector<int> f(static_cast<size_t>(m + 1) * cols, kNegInf);

  auto idx = [cols](int i, int j) { return static_cast<size_t>(i) * cols + j; };
  auto substitution = [&](int i, int j) {
    return query[static_cast<size_t>(i - 1)] == ref[static_cast<size_t>(j - 1)]
               ? params.match
               : params.mismatch;
  };

  int best = 0;
  int best_i = 0;
  int best_j = 0;

  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      e[idx(i, j)] = std::max(h[idx(i, j - 1)] + params.gap_open + params.gap_extend,
                              e[idx(i, j - 1)] + params.gap_extend);
      f[idx(i, j)] = std::max(h[idx(i - 1, j)] + params.gap_open + params.gap_extend,
                              f[idx(i - 1, j)] + params.gap_extend);
      int diag = h[idx(i - 1, j - 1)] + substitution(i, j);
      int score = std::max({0, diag, e[idx(i, j)], f[idx(i, j)]});
      h[idx(i, j)] = score;
      if (score > best) {
        best = score;
        best_i = i;
        best_j = j;
      }
    }
  }

  result.score = best;
  if (best == 0) {
    return result;
  }

  // Three-state traceback. A cell's H value says nothing about how a gap *through* the
  // cell continues, so the state machine must stay in E/F until the gap's opening point
  // — collapsing it to one op per cell fragments every multi-base gap (and emits CIGARs
  // whose score is below H's optimum).
  std::vector<std::pair<char, int>> runs;
  auto push = [&runs](char op) {
    if (!runs.empty() && runs.back().first == op) {
      ++runs.back().second;
    } else {
      runs.emplace_back(op, 1);
    }
  };

  enum class State { kMain, kRefGap, kQueryGap };
  State state = State::kMain;
  int i = best_i;
  int j = best_j;
  while (i > 0 && j > 0) {
    if (state == State::kMain) {
      const int score = h[idx(i, j)];
      if (score == 0) {
        break;
      }
      if (score == h[idx(i - 1, j - 1)] + substitution(i, j)) {
        push('M');
        --i;
        --j;
      } else if (score == e[idx(i, j)]) {
        state = State::kRefGap;
      } else {
        state = State::kQueryGap;
      }
    } else if (state == State::kRefGap) {
      push('D');
      // Prefer continuing the gap on ties: repeats then yield one long run rather than
      // several short ones, which is also the canonical (leftmost) placement.
      if (e[idx(i, j)] == e[idx(i, j - 1)] + params.gap_extend) {
        --j;
      } else {
        --j;
        state = State::kMain;
      }
    } else {
      push('I');
      if (f[idx(i, j)] == f[idx(i - 1, j)] + params.gap_extend) {
        --i;
      } else {
        --i;
        state = State::kMain;
      }
    }
  }

  result.query_begin = i;
  result.query_end = best_i;
  result.ref_begin = j;
  result.ref_end = best_j;
  EmitCigar(runs, &result.cigar);
  return result;
}

}  // namespace persona::align
