// Internal ABI between the dispatch-neutral alignment code and the per-ISA
// kernel translation units (lv_simd_{sse4,avx2}.cc, sw_simd_{sse4,avx2}.cc).
//
// Those TUs are compiled with -msse4.1 / -mavx2; everything else in the tree is
// not. To keep vector instructions from leaking into commonly-included inline
// code (and then executing on a CPU that lacks them), this header is deliberately
// plain: POD argument structs and free-function declarations only, no templates,
// no std containers. Callers must consult persona::SimdLevelSupported before
// invoking a kernel; the functions themselves do not re-check the CPU.

#ifndef PERSONA_SRC_ALIGN_SIMD_KERNELS_H_
#define PERSONA_SRC_ALIGN_SIMD_KERNELS_H_

#include <cstdint>

namespace persona::align::simd {

// ---------------------------------------------------------------------------
// Landau-Vishkin: one banded pass at bound k over W interleaved lanes.
//
// Lane-interleaved layout: sequence row r (1-based; row 0 is an unused pad so
// loads for j-1/i-1 indexing never underflow) stores one byte per lane at
// pat[r * W + lane] / text[r * W + lane]. The pattern buffer must have rows
// 0..max(m[lane]) and the text buffer rows 0..max(m[lane]) + k for every lane
// the kernel may touch; rows beyond a lane's own length are padding and never
// influence that lane's result.
//
// dp is 2 * (2k + 3) * W int32 of 32-byte-aligned scratch (two rolling band
// rows, each with one pad slot on either side).
//
// For every lane with want[lane] != 0 the kernel writes dist[lane]: the exact
// banded distance if <= k, else -1 — bit-identical to the scalar LvCore pass at
// the same k. Lanes with want[lane] == 0 are computed but never read back.
//
// When hist is non-null the kernel keeps the whole band matrix instead of two
// rolling rows: row i is written at hist + i * (2k + 3) * W (dp is then unused
// and may be null). Callers traceback winner CIGARs from this history; cell
// values match the scalar fill on every cell a traceback can visit (in-band
// cells are bit-identical; cells whose cost exceeds the bound hold >= k + 1 in
// both fills and are provably never on a traceback path).
// ---------------------------------------------------------------------------
struct LvPassArgs {
  const uint8_t* pat;   // (max_m + 1) rows x W bytes, lane-interleaved
  const uint8_t* text;  // (max_m + k + 1) rows x W bytes, lane-interleaved
  const int32_t* n;     // W per-lane text lengths
  const int32_t* m;     // W per-lane pattern lengths
  const uint8_t* want;  // W flags: produce dist[lane]?
  int32_t k;            // band bound for this pass
  int32_t* dp;          // 2 * (2k + 3) * W int32, 32-byte aligned
  int32_t* dist;        // W out
  int32_t* hist;        // optional (max_m + 1) * (2k + 3) * W history, 32-byte aligned
};

inline constexpr int kLvLanesSse4 = 4;
inline constexpr int kLvLanesAvx2 = 8;

void LvPassSse4(const LvPassArgs& args);  // 4 lanes
void LvPassAvx2(const LvPassArgs& args);  // 8 lanes

// ---------------------------------------------------------------------------
// Smith-Waterman: Farrar-striped banded Gotoh fill over one (ref, query) pair.
//
// Striped layout: query position i (0-based, 0 <= i < m) lives in stripe
// s = i % S, lane l = i / S, where S = ceil(m / V) and V is the vector width.
// A "column" j stores S vectors of V int32 at h[(j - 1) * S * V + s * V].
// Out-of-band and padding cells hold exactly kNegInf, in-band cells the same
// H values the scalar banded fill produces, so a traceback reading this buffer
// through a (row, col) accessor is bit-identical to the scalar traceback.
//
// best/best_j are S * V running per-position maxima (value, earliest column);
// the caller reduces them in row order to recover the scalar argmax tie-break.
// ---------------------------------------------------------------------------
struct SwPassArgs {
  const uint8_t* qchars;   // S * V striped query bytes (padding bytes are 0)
  const int32_t* profile;  // 5 x S * V: match/mismatch per canonical ref byte
  const uint8_t* prof_idx; // 256: ref byte -> profile row, 255 = direct compare
  const uint8_t* ref;      // raw reference bytes
  const int32_t* row;      // S * V: 1-based query row per striped position
  int32_t n_cols;          // columns to fill = min(n, m + hi)
  int32_t m;               // query length
  int32_t stripes;         // S
  int32_t lo;              // band: j - i in [lo, hi]
  int32_t hi;
  int32_t match;
  int32_t mismatch;
  int32_t gap_open_extend; // params.gap_open + params.gap_extend
  int32_t gap_extend;
  int32_t neg_inf;         // the scalar kernel's kNegInf sentinel
  int32_t* h;              // n_cols x S * V out, 32-byte aligned
  int32_t* e;              // S * V scratch (E entering the current column)
  int32_t* f;              // S * V scratch (lazy-F within the current column)
  int32_t* oob;            // S * V scratch (current column's out-of-band masks)
  int32_t* zero_col;       // S * V scratch holding the virtual column 0 (all 0)
  int32_t* best;           // S * V out, init by kernel
  int32_t* best_j;         // S * V out
};

void SwFillSse4(const SwPassArgs& args);  // V = 4
void SwFillAvx2(const SwPassArgs& args);  // V = 8

}  // namespace persona::align::simd

#endif  // PERSONA_SRC_ALIGN_SIMD_KERNELS_H_
