// BWA-MEM-style read aligner: FM-index seeding (backward-search maximal exact matches),
// diagonal chaining, and banded affine-gap Smith-Waterman extension (Li & Durbin,
// integrated by Persona alongside SNAP).
//
// Paired-end alignment mirrors the structure the paper describes (§4.3): a
// single-threaded inference step over a set of reads estimates the insert-size
// distribution, then the compute-intense per-pair step uses it for pair scoring. The
// pipeline's executor resource divides threads between these phases.

#ifndef PERSONA_SRC_ALIGN_BWA_ALIGNER_H_
#define PERSONA_SRC_ALIGN_BWA_ALIGNER_H_

#include <span>
#include <utility>
#include <vector>

#include "src/align/aligner.h"
#include "src/align/fm_index.h"
#include "src/align/smith_waterman.h"
#include "src/genome/reference.h"

namespace persona::align {

struct BwaOptions {
  int min_seed_length = 19;   // BWA-MEM's default -k
  int max_seed_hits = 64;     // skip seeds with more FM-index hits than this
  int max_chains = 8;         // chains extended with Smith-Waterman
  int chain_diag_tolerance = 12;
  int extension_pad = 24;     // reference window slack on each side
  int min_score = 30;         // below this the read is unmapped (BWA's -T)
  SwParams sw;
};

// Insert-size distribution inferred by the single-threaded paired-end phase.
struct InsertSizeStats {
  double mean = 350;
  double stddev = 50;
  int64_t samples = 0;
};

class BwaMemAligner final : public Aligner {
 public:
  BwaMemAligner(const genome::ReferenceGenome* reference, const FmIndex* index,
                const BwaOptions& options = {});

  std::string_view name() const override { return "bwa-mem"; }
  AlignmentResult Align(const genome::Read& read, AlignProfile* profile) const override;

  // Single-threaded phase: estimates the insert-size distribution from a sample of
  // confidently aligned proper pairs (BWA-MEM's mem_pestat analogue).
  InsertSizeStats InferInsertStats(
      std::span<const std::pair<genome::Read, genome::Read>> pairs, size_t max_samples,
      AlignProfile* profile) const;

  // Pair-aware alignment using an inferred insert distribution: picks the combination of
  // per-end candidates that best matches `stats`.
  std::pair<AlignmentResult, AlignmentResult> AlignPairWithStats(
      const genome::Read& read1, const genome::Read& read2, const InsertSizeStats& stats,
      AlignProfile* profile) const;

  const BwaOptions& options() const { return options_; }

 private:
  struct Seed {
    int query_begin;
    int length;
    int64_t ref_pos;   // global position of the match start
    bool reverse;
  };

  struct Chain {
    int64_t diag;      // ref_pos - query_begin
    int score;         // total seeded bases
    bool reverse;
  };

  // Collects backward-search maximal matches on one strand.
  void CollectSeeds(std::string_view bases, bool reverse, AlignProfile* profile,
                    std::vector<Seed>* seeds) const;

  // Groups seeds into diagonals and returns the best-scoring chains.
  std::vector<Chain> BuildChains(const std::vector<Seed>& seeds) const;

  // Extends one chain with Smith-Waterman; returns an unmapped result on failure.
  AlignmentResult ExtendChain(const Chain& chain, std::string_view fwd_bases,
                              std::string_view rev_bases, AlignProfile* profile) const;

  const genome::ReferenceGenome* reference_;
  const FmIndex* index_;
  BwaOptions options_;
};

}  // namespace persona::align

#endif  // PERSONA_SRC_ALIGN_BWA_ALIGNER_H_
