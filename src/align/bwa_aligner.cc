#include "src/align/bwa_aligner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/compress/base_compaction.h"

namespace persona::align {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

BwaMemAligner::BwaMemAligner(const genome::ReferenceGenome* reference, const FmIndex* index,
                             const BwaOptions& options)
    : reference_(reference), index_(index), options_(options) {}

void BwaMemAligner::CollectSeeds(std::string_view bases, bool reverse, AlignProfile* profile,
                                 std::vector<Seed>* seeds) const {
  // Backward-search maximal matches: anchor at `end`, extend leftward until the interval
  // empties, record if long enough, then restart left of the match.
  int end = static_cast<int>(bases.size());
  std::vector<int64_t> hits;
  while (end >= options_.min_seed_length) {
    FmIndex::Interval iv = index_->Whole();
    int start = end;
    FmIndex::Interval last = iv;
    while (start > 0) {
      FmIndex::Interval next = index_->ExtendBackward(last, bases[static_cast<size_t>(start - 1)]);
      if (profile != nullptr) {
        ++profile->index_probes;
      }
      if (next.empty()) {
        break;
      }
      // Start the next extension's checkpoint/BWT block pair loading now, so
      // its misses overlap the loop bookkeeping instead of stalling the scan.
      index_->PrefetchExtend(next);
      last = next;
      --start;
    }
    int length = end - start;
    if (length >= options_.min_seed_length &&
        last.size() <= static_cast<int64_t>(options_.max_seed_hits)) {
      hits.clear();
      index_->Locate(last, static_cast<size_t>(options_.max_seed_hits), &hits);
      for (int64_t pos : hits) {
        seeds->push_back(Seed{start, length, pos, reverse});
      }
    }
    // Next anchor: left of this match (or one base left if no progress was made).
    end = (start < end) ? start : end - 1;
  }
}

std::vector<BwaMemAligner::Chain> BwaMemAligner::BuildChains(
    const std::vector<Seed>& seeds) const {
  // Group seeds by (strand, diagonal) within a tolerance; chain score = seeded bases.
  std::vector<Chain> chains;
  std::vector<Seed> sorted = seeds;
  std::sort(sorted.begin(), sorted.end(), [](const Seed& a, const Seed& b) {
    if (a.reverse != b.reverse) {
      return a.reverse < b.reverse;
    }
    return (a.ref_pos - a.query_begin) < (b.ref_pos - b.query_begin);
  });
  for (size_t i = 0; i < sorted.size();) {
    int64_t diag = sorted[i].ref_pos - sorted[i].query_begin;
    bool reverse = sorted[i].reverse;
    int score = 0;
    size_t j = i;
    while (j < sorted.size() && sorted[j].reverse == reverse &&
           (sorted[j].ref_pos - sorted[j].query_begin) - diag <=
               options_.chain_diag_tolerance) {
      score += sorted[j].length;
      ++j;
    }
    chains.push_back(Chain{diag, score, reverse});
    i = j;
  }
  std::sort(chains.begin(), chains.end(),
            [](const Chain& a, const Chain& b) { return a.score > b.score; });
  if (chains.size() > static_cast<size_t>(options_.max_chains)) {
    chains.resize(static_cast<size_t>(options_.max_chains));
  }
  return chains;
}

AlignmentResult BwaMemAligner::ExtendChain(const Chain& chain, std::string_view fwd_bases,
                                           std::string_view rev_bases,
                                           AlignProfile* profile) const {
  AlignmentResult result;
  std::string_view bases = chain.reverse ? rev_bases : fwd_bases;
  const int read_len = static_cast<int>(bases.size());

  int64_t window_start = chain.diag - options_.extension_pad;
  int64_t window_len = read_len + 2 * options_.extension_pad;
  // Clip the window to the containing contig.
  auto pos = reference_->GlobalToLocal(std::max<int64_t>(window_start, 0));
  if (!pos.ok()) {
    return result;
  }
  const genome::Contig& contig = reference_->contig(static_cast<size_t>(pos->contig_index));
  int64_t contig_start = reference_->contig_start(static_cast<size_t>(pos->contig_index));
  int64_t local_start = std::max<int64_t>(window_start - contig_start, 0);
  int64_t local_end = std::min<int64_t>(local_start + window_len,
                                        static_cast<int64_t>(contig.sequence.size()));
  if (local_end <= local_start) {
    return result;
  }
  std::string_view window = std::string_view(contig.sequence)
                                .substr(static_cast<size_t>(local_start),
                                        static_cast<size_t>(local_end - local_start));

  if (profile != nullptr) {
    ++profile->candidates;
  }
  thread_local SwScratch sw_scratch;  // reused across extensions on this thread
  SwResult sw = SmithWaterman(window, bases, options_.sw, &sw_scratch);
  if (sw.score < options_.min_score) {
    return result;
  }

  result.location = contig_start + local_start + sw.ref_begin;
  result.flags = chain.reverse ? kFlagReverse : 0;
  result.score = sw.score;

  // Soft-clip the unaligned read ends.
  std::string cigar;
  if (sw.query_begin > 0) {
    cigar += std::to_string(sw.query_begin) + "S";
  }
  cigar += sw.cigar;
  if (sw.query_end < read_len) {
    cigar += std::to_string(read_len - sw.query_end) + "S";
  }
  result.cigar = std::move(cigar);

  // NM (edit distance): walk the alignment counting mismatches and gap bases.
  int nm = 0;
  {
    size_t qi = static_cast<size_t>(sw.query_begin);
    size_t ri = static_cast<size_t>(sw.ref_begin);
    int64_t run = 0;
    for (char c : sw.cigar) {
      if (c >= '0' && c <= '9') {
        run = run * 10 + (c - '0');
        continue;
      }
      if (c == 'M') {
        for (int64_t k = 0; k < run; ++k) {
          if (bases[qi + static_cast<size_t>(k)] != window[ri + static_cast<size_t>(k)]) {
            ++nm;
          }
        }
        qi += static_cast<size_t>(run);
        ri += static_cast<size_t>(run);
      } else if (c == 'I') {
        nm += static_cast<int>(run);
        qi += static_cast<size_t>(run);
      } else if (c == 'D') {
        nm += static_cast<int>(run);
        ri += static_cast<size_t>(run);
      }
      run = 0;
    }
  }
  result.edit_distance = static_cast<int16_t>(nm);
  return result;
}

AlignmentResult BwaMemAligner::Align(const genome::Read& read, AlignProfile* profile) const {
  AlignmentResult unmapped;
  const int read_len = static_cast<int>(read.bases.size());
  if (read_len < options_.min_seed_length) {
    return unmapped;
  }
  if (profile != nullptr) {
    ++profile->reads;
    profile->bases += static_cast<uint64_t>(read_len);
  }

  const std::string rev = compress::ReverseComplement(read.bases);

  uint64_t seed_start_ns = profile != nullptr ? NowNs() : 0;
  std::vector<Seed> seeds;
  CollectSeeds(read.bases, /*reverse=*/false, profile, &seeds);
  CollectSeeds(rev, /*reverse=*/true, profile, &seeds);
  std::vector<Chain> chains = BuildChains(seeds);
  if (profile != nullptr) {
    profile->seed_ns += NowNs() - seed_start_ns;
  }
  if (chains.empty()) {
    return unmapped;
  }

  uint64_t verify_start_ns = profile != nullptr ? NowNs() : 0;
  AlignmentResult best;
  int best_score = -1;
  int second_score = -1;
  for (const Chain& chain : chains) {
    AlignmentResult candidate = ExtendChain(chain, read.bases, rev, profile);
    if (!candidate.mapped()) {
      continue;
    }
    if (candidate.score > best_score) {
      second_score = best_score;
      best_score = candidate.score;
      best = std::move(candidate);
    } else if (candidate.score > second_score && candidate.location != best.location) {
      second_score = candidate.score;
    }
  }
  if (profile != nullptr) {
    profile->verify_ns += NowNs() - verify_start_ns;
  }
  if (best_score < 0) {
    return unmapped;
  }

  // BWA-style MAPQ: proportional to the margin over the runner-up.
  int mapq;
  if (second_score < 0) {
    mapq = 60;
  } else if (second_score == best_score) {
    mapq = 0;
  } else {
    mapq = static_cast<int>(60.0 * (best_score - second_score) / best_score);
  }
  best.mapq = static_cast<uint8_t>(std::clamp(mapq, 0, 60));
  return best;
}

InsertSizeStats BwaMemAligner::InferInsertStats(
    std::span<const std::pair<genome::Read, genome::Read>> pairs, size_t max_samples,
    AlignProfile* profile) const {
  // Deliberately sequential (the paper's single-threaded BWA phase): sample pairs,
  // align both ends, and keep confident opposite-strand placements.
  InsertSizeStats stats;
  double sum = 0;
  double sum_sq = 0;
  int64_t n = 0;
  size_t limit = std::min(pairs.size(), max_samples);
  for (size_t i = 0; i < limit; ++i) {
    AlignmentResult r1 = Align(pairs[i].first, profile);
    AlignmentResult r2 = Align(pairs[i].second, profile);
    if (!r1.mapped() || !r2.mapped() || r1.mapq < 20 || r2.mapq < 20 ||
        r1.reverse() == r2.reverse()) {
      continue;
    }
    int64_t insert = std::llabs(r2.location - r1.location) +
                     static_cast<int64_t>(pairs[i].second.bases.size());
    if (insert > 10'000) {
      continue;
    }
    sum += static_cast<double>(insert);
    sum_sq += static_cast<double>(insert) * static_cast<double>(insert);
    ++n;
  }
  if (n >= 8) {
    stats.mean = sum / static_cast<double>(n);
    double var = sum_sq / static_cast<double>(n) - stats.mean * stats.mean;
    stats.stddev = std::sqrt(std::max(var, 1.0));
    stats.samples = n;
  }
  return stats;
}

std::pair<AlignmentResult, AlignmentResult> BwaMemAligner::AlignPairWithStats(
    const genome::Read& read1, const genome::Read& read2, const InsertSizeStats& stats,
    AlignProfile* profile) const {
  AlignmentResult r1 = Align(read1, profile);
  AlignmentResult r2 = Align(read2, profile);
  if (r1.mapped() && r2.mapped()) {
    // Penalize placements far outside the inferred insert window by demoting MAPQ;
    // a full implementation would re-rank candidate pairs, which our chain cap makes
    // rarely profitable on synthetic data.
    int64_t insert = std::llabs(r2.location - r1.location);
    double z = std::abs(static_cast<double>(insert) - stats.mean) / std::max(stats.stddev, 1.0);
    if (z > 6.0) {
      r1.mapq = static_cast<uint8_t>(std::min<int>(r1.mapq, 20));
      r2.mapq = static_cast<uint8_t>(std::min<int>(r2.mapq, 20));
    }
  }
  FinalizePair(&r1, &r2);
  return {std::move(r1), std::move(r2)};
}

}  // namespace persona::align
