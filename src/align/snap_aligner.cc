#include "src/align/snap_aligner.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/align/edit_distance.h"
#include "src/compress/base_compaction.h"

namespace persona::align {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Small open-addressed vote map: candidate start location -> vote count.
// Sized for tens of candidates; rebuilt per (read, strand).
class VoteMap {
 public:
  void Clear() {
    keys_.assign(kSize, -1);
    votes_.assign(kSize, 0);
    used_.clear();
  }

  void Vote(int64_t location) {
    size_t bucket = Hash(location);
    while (true) {
      if (keys_[bucket] == location) {
        ++votes_[bucket];
        return;
      }
      if (keys_[bucket] < 0) {
        keys_[bucket] = location;
        votes_[bucket] = 1;
        used_.push_back(bucket);
        return;
      }
      bucket = (bucket + 1) & (kSize - 1);
    }
  }

  // Candidates sorted by votes descending.
  std::vector<std::pair<int64_t, int>> Sorted() const {
    std::vector<std::pair<int64_t, int>> out;
    out.reserve(used_.size());
    for (size_t bucket : used_) {
      out.emplace_back(keys_[bucket], votes_[bucket]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return out;
  }

 private:
  static constexpr size_t kSize = 512;  // power of two; reads produce << 512 candidates

  static size_t Hash(int64_t loc) {
    uint64_t x = static_cast<uint64_t>(loc) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 55) & (kSize - 1);
  }

  std::vector<int64_t> keys_;
  std::vector<int> votes_;
  std::vector<size_t> used_;
};

struct Verified {
  int64_t location;
  int distance;
  bool reverse;
  std::string cigar;
};

}  // namespace

SnapAligner::SnapAligner(const genome::ReferenceGenome* reference, const SeedIndex* index,
                         const SnapOptions& options)
    : reference_(reference), index_(index), options_(options) {}

AlignmentResult SnapAligner::Align(const genome::Read& read, AlignProfile* profile) const {
  AlignmentResult result;
  const int read_len = static_cast<int>(read.bases.size());
  const int seed_len = index_->seed_length();
  if (read_len < seed_len) {
    return result;  // unmapped: too short to seed
  }

  if (profile != nullptr) {
    ++profile->reads;
    profile->bases += static_cast<uint64_t>(read_len);
  }

  const std::string reverse_bases = compress::ReverseComplement(read.bases);

  // --- Seeding phase: vote for candidate start locations on both strands. ---
  uint64_t seed_start_ns = profile != nullptr ? NowNs() : 0;

  VoteMap votes[2];
  votes[0].Clear();
  votes[1].Clear();
  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases = strand == 0 ? std::string_view(read.bases) : reverse_bases;
    for (int off = 0; off + seed_len <= read_len; off += options_.seed_stride) {
      uint64_t seed;
      if (!SeedIndex::PackSeed(bases, static_cast<size_t>(off), seed_len, &seed)) {
        continue;  // seed window contains N
      }
      if (profile != nullptr) {
        ++profile->index_probes;
      }
      for (uint32_t pos : index_->Lookup(seed)) {
        int64_t start = static_cast<int64_t>(pos) - off;
        if (start >= 0) {
          votes[strand].Vote(start);
        }
      }
    }
  }

  if (profile != nullptr) {
    profile->seed_ns += NowNs() - seed_start_ns;
  }

  // --- Verification phase: banded edit distance, best votes first. ---
  uint64_t verify_start_ns = profile != nullptr ? NowNs() : 0;

  Verified best{genome::kInvalidLocation, options_.max_edit_distance + 1, false, {}};
  int second_best_distance = options_.max_edit_distance + 1;

  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases = strand == 0 ? std::string_view(read.bases) : reverse_bases;
    int evaluated = 0;
    for (const auto& [location, vote_count] : votes[strand].Sorted()) {
      if (vote_count < options_.min_votes || evaluated >= options_.max_candidates) {
        break;
      }
      ++evaluated;
      if (profile != nullptr) {
        ++profile->candidates;
      }
      // Reference window: read length plus slack for deletions.
      size_t window = static_cast<size_t>(read_len + options_.max_edit_distance);
      auto slice = reference_->Slice(location, window);
      if (!slice.ok()) {
        // Window may overrun the contig near its end; retry with the exact read length.
        slice = reference_->Slice(location, static_cast<size_t>(read_len));
        if (!slice.ok()) {
          continue;
        }
      }
      std::string cigar;
      int dist = LandauVishkin(*slice, bases, options_.max_edit_distance, &cigar);
      if (dist < 0) {
        continue;
      }
      if (dist < best.distance) {
        second_best_distance = best.distance;
        best = Verified{location, dist, strand == 1, std::move(cigar)};
      } else if (dist < second_best_distance && location != best.location) {
        second_best_distance = dist;
      }
      if (best.distance == 0 && second_best_distance <= options_.max_edit_distance) {
        break;  // perfect hit and MAPQ evidence both settled
      }
    }
  }

  if (profile != nullptr) {
    profile->verify_ns += NowNs() - verify_start_ns;
  }

  if (best.location == genome::kInvalidLocation) {
    return result;  // unmapped
  }

  result.location = best.location;
  result.flags = best.reverse ? kFlagReverse : 0;
  result.edit_distance = static_cast<int16_t>(best.distance);
  result.cigar = std::move(best.cigar);
  result.score = -best.distance;

  // MAPQ: confidence grows with the gap to the second-best verified placement and
  // shrinks with the absolute distance of the best one (SNAP-style heuristic).
  int gap = second_best_distance - best.distance;
  int mapq;
  if (second_best_distance > options_.max_edit_distance) {
    mapq = 60 - 2 * best.distance;  // no competitor within the bound
  } else if (gap == 0) {
    mapq = 1;  // ambiguous placement
  } else {
    mapq = std::min(60, 10 * gap - best.distance);
  }
  result.mapq = static_cast<uint8_t>(std::clamp(mapq, 0, 60));
  return result;
}

}  // namespace persona::align
