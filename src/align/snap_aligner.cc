#include "src/align/snap_aligner.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/compress/base_compaction.h"
#include "src/util/simd.h"

namespace persona::align {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Verified {
  int64_t location;
  int distance;
  bool reverse;
};

}  // namespace

SnapAligner::SnapAligner(const genome::ReferenceGenome* reference, const SeedIndex* index,
                         const SnapOptions& options)
    : reference_(reference), index_(index), options_(options) {}

void SnapAligner::SeedOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
                          AlignProfile* profile) const {
  const int read_len = static_cast<int>(read.bases.size());
  const int seed_len = index_->seed_length();
  if (read_len < seed_len) {
    return;  // unmapped: too short to seed; ranges stay empty
  }

  if (profile != nullptr) {
    ++profile->reads;
    profile->bases += static_cast<uint64_t>(read_len);
  }

  std::string& reverse_bases = scratch->reverse_bases_[r];
  compress::ReverseComplementInto(read.bases, &reverse_bases);

  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases =
        strand == 0 ? std::string_view(read.bases) : std::string_view(reverse_bases);
    VoteMap& votes = scratch->votes_[strand];
    votes.Reset();
    // Prefetch-batched lookup in three passes. Resolving seeds one at a time
    // serializes a cache miss per hash probe; packing the whole strand first and
    // prefetching every bucket lets the misses overlap, and a second prefetch
    // round covers each bucket's position list before any list is consumed.
    auto& staged_seeds = scratch->seed_stage_;
    staged_seeds.clear();
    RollingSeedPacker packer(bases, seed_len);
    for (int off = 0; off + seed_len <= read_len; off += options_.seed_stride) {
      uint64_t seed;
      if (!packer.Seed(static_cast<size_t>(off), &seed)) {
        continue;  // seed window contains N
      }
      index_->PrefetchLookup(seed);
      staged_seeds.emplace_back(seed, off);
    }
    auto& staged_hits = scratch->hit_stage_;
    staged_hits.clear();
    for (const auto& [seed, off] : staged_seeds) {
      if (profile != nullptr) {
        ++profile->index_probes;
      }
      const auto positions = index_->Lookup(seed);
      if (positions.empty()) {
        continue;
      }
      __builtin_prefetch(positions.data(), 0, 1);
      staged_hits.emplace_back(positions, off);
    }
    for (const auto& [positions, off] : staged_hits) {
      for (uint32_t pos : positions) {
        int64_t start = static_cast<int64_t>(pos) - off;
        if (start >= 0) {
          votes.Vote(start);
        }
      }
    }
    // Stage this (read, strand)'s candidates, best votes first, in the flat array.
    const uint32_t begin = static_cast<uint32_t>(scratch->candidates_.size());
    votes.AppendCandidates(&scratch->candidates_);
    const uint32_t end = static_cast<uint32_t>(scratch->candidates_.size());
    std::sort(scratch->candidates_.begin() + begin, scratch->candidates_.begin() + end,
              VoteMap::CandidateBefore);
    scratch->ranges_[2 * r + static_cast<size_t>(strand)] = {begin, end};
  }
}

void SnapAligner::VerifyOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
                            AlignProfile* profile, AlignmentResult* result) const {
  *result = AlignmentResult{};
  const int read_len = static_cast<int>(read.bases.size());

  Verified best{genome::kInvalidLocation, options_.max_edit_distance + 1, false};
  int second_best_distance = options_.max_edit_distance + 1;

  // Reference window: read length plus slack for deletions; near a contig end fall
  // back to the exact read length.
  auto window_slice = [&](int64_t location) {
    auto slice =
        reference_->Slice(location, static_cast<size_t>(read_len + options_.max_edit_distance));
    if (!slice.ok()) {
      slice = reference_->Slice(location, static_cast<size_t>(read_len));
    }
    return slice;
  };

  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases = strand == 0 ? std::string_view(read.bases)
                                         : std::string_view(scratch->reverse_bases_[r]);
    const auto range = scratch->ranges_[2 * r + static_cast<size_t>(strand)];
    int evaluated = 0;
    for (uint32_t c = range.begin; c < range.end; ++c) {
      const auto& [location, vote_count] = scratch->candidates_[c];
      if (vote_count < options_.min_votes || evaluated >= options_.max_candidates) {
        break;
      }
      ++evaluated;
      if (profile != nullptr) {
        ++profile->candidates;
      }
      auto slice = window_slice(location);
      if (!slice.ok()) {
        continue;
      }
      // Distance only; the winner's CIGAR is recomputed once after the scan instead of
      // building a CIGAR string for every candidate.
      int dist =
          LandauVishkin(*slice, bases, options_.max_edit_distance, nullptr, &scratch->lv_);
      if (dist < 0) {
        continue;
      }
      if (dist < best.distance) {
        second_best_distance = best.distance;
        best = Verified{location, dist, strand == 1};
      } else if (dist < second_best_distance && location != best.location) {
        second_best_distance = dist;
      }
      if (best.distance == 0 && second_best_distance <= options_.max_edit_distance) {
        break;  // perfect hit and MAPQ evidence both settled
      }
    }
  }

  if (best.location == genome::kInvalidLocation) {
    return;  // unmapped
  }

  result->location = best.location;
  result->flags = best.reverse ? kFlagReverse : 0;
  result->edit_distance = static_cast<int16_t>(best.distance);
  result->score = -best.distance;

  std::string_view bases = best.reverse ? std::string_view(scratch->reverse_bases_[r])
                                        : std::string_view(read.bases);
  auto slice = window_slice(best.location);
  int cigar_distance =
      LandauVishkinKnownDistance(*slice, bases, options_.max_edit_distance, best.distance,
                                 &result->cigar, &scratch->lv_);
  if (cigar_distance != best.distance) {
    // The traceback pass re-runs the exact band the scan already verified, so a
    // disagreement means the CIGAR does not describe the reported alignment. Emit
    // the placement without a CIGAR rather than a mismatched one.
    result->cigar.clear();
  }

  // MAPQ: confidence grows with the gap to the second-best verified placement and
  // shrinks with the absolute distance of the best one (SNAP-style heuristic).
  int gap = second_best_distance - best.distance;
  int mapq;
  if (second_best_distance > options_.max_edit_distance) {
    mapq = 60 - 2 * best.distance;  // no competitor within the bound
  } else if (gap == 0) {
    mapq = 1;  // ambiguous placement
  } else {
    mapq = std::min(60, 10 * gap - best.distance);
  }
  result->mapq = static_cast<uint8_t>(std::clamp(mapq, 0, 60));
}

// Batched verification at a vector level. One resumable cursor per SIMD lane scans
// one read's staged candidates in exactly VerifyOne's order; candidates that need
// the DP (the memcmp fast path misses) are staged, and all lanes' pending DPs run
// as a single LvBatch pass per wave. When a read finishes, its lane is refilled
// from the next unverified read, so lanes stay occupied until the batch drains.
//
// Parity with the VerifyOne loop: each cursor applies the identical per-candidate
// sequence (vote/max-candidates break, window slice with contig-end fallback,
// best/second-best update, per-strand early break on a settled perfect hit), and
// LvBatch is distance-parity with scalar LandauVishkin. Reads only ever interleave
// at LvBatch boundaries, never share state, and finalize independently, so results
// and profile totals match the scalar loop bit for bit.
void SnapAligner::VerifyBatchVector(std::span<const genome::Read> reads,
                                    std::span<AlignmentResult> results,
                                    SnapAlignerScratch* s, AlignProfile* profile,
                                    SimdLevel level) const {
  const int width = LvBatchWidth(level);
  const int max_k = options_.max_edit_distance;
  s->cigar_jobs_.clear();

  // A lane's scan state between waves. `staged_*` hold the candidate whose DP is
  // pending; `in_strand` marks c/evaluated as valid resume points for `strand`.
  struct Cursor {
    size_t r = 0;
    int strand = 0;
    bool in_strand = false;
    uint32_t c = 0;
    int evaluated = 0;
    Verified best{genome::kInvalidLocation, 0, false};
    int second_best = 0;
    int64_t staged_location = 0;
    std::string_view staged_text;
  };

  auto window_slice = [&](int64_t location, int read_len) {
    auto slice = reference_->Slice(location, static_cast<size_t>(read_len + max_k));
    if (!slice.ok()) {
      slice = reference_->Slice(location, static_cast<size_t>(read_len));
    }
    return slice;
  };

  auto bases_for = [&](const Cursor& cur) {
    return cur.strand == 0 ? std::string_view(reads[cur.r].bases)
                           : std::string_view(s->reverse_bases_[cur.r]);
  };

  // Applies one verified distance; returns true when the current strand's scan is
  // settled early (perfect hit confirmed and MAPQ evidence in hand).
  auto deliver = [&](Cursor& cur, int64_t location, int dist) {
    if (dist < 0) {
      return false;
    }
    if (dist < cur.best.distance) {
      cur.second_best = cur.best.distance;
      cur.best = Verified{location, dist, cur.strand == 1};
    } else if (dist < cur.second_best && location != cur.best.location) {
      cur.second_best = dist;
    }
    return cur.best.distance == 0 && cur.second_best <= max_k;
  };

  // Advances the cursor to its next DP-needing candidate, resolving exact-match
  // candidates inline so only real DP jobs occupy vector lanes. Returns true with
  // staged_* filled, false when the read's scan is complete.
  auto advance = [&](Cursor& cur) {
    const int read_len = static_cast<int>(reads[cur.r].bases.size());
    for (; cur.strand < 2; ++cur.strand, cur.in_strand = false) {
      const auto range = s->ranges_[2 * cur.r + static_cast<size_t>(cur.strand)];
      if (!cur.in_strand) {
        cur.c = range.begin;
        cur.evaluated = 0;
        cur.in_strand = true;
      }
      const std::string_view bases = bases_for(cur);
      for (; cur.c < range.end; ++cur.c) {
        const auto& [location, vote_count] = s->candidates_[cur.c];
        if (vote_count < options_.min_votes || cur.evaluated >= options_.max_candidates) {
          break;
        }
        ++cur.evaluated;
        if (profile != nullptr) {
          ++profile->candidates;
        }
        auto slice = window_slice(location, read_len);
        if (!slice.ok()) {
          continue;
        }
        if (slice->size() >= bases.size() &&
            std::memcmp(slice->data(), bases.data(), bases.size()) == 0) {
          if (deliver(cur, location, 0)) {
            break;  // settled: fall through to the next strand
          }
          continue;
        }
        cur.staged_location = location;
        cur.staged_text = *slice;
        return true;
      }
    }
    return false;
  };

  // Emits the cursor's result: VerifyOne's finalize step verbatim, except the
  // winner's CIGAR is rebuilt at its already-known distance (skipping the failed
  // low-k passes of the adaptive schedule), and CIGARs that need a DP traceback
  // are deferred so they run as one vectorized LvBatchCigar pass after the wave
  // loop drains instead of a scalar band fill per winner.
  auto finalize = [&](const Cursor& cur) {
    if (cur.best.location == genome::kInvalidLocation) {
      return;  // unmapped
    }
    AlignmentResult* result = &results[cur.r];
    result->location = cur.best.location;
    result->flags = cur.best.reverse ? kFlagReverse : 0;
    result->edit_distance = static_cast<int16_t>(cur.best.distance);
    result->score = -cur.best.distance;

    const std::string_view bases = cur.best.reverse
                                       ? std::string_view(s->reverse_bases_[cur.r])
                                       : std::string_view(reads[cur.r].bases);
    const int read_len = static_cast<int>(reads[cur.r].bases.size());
    auto slice = window_slice(cur.best.location, read_len);
    if (cur.best.distance == 0) {
      // Distance 0 emits the all-M CIGAR directly, no DP.
      int cigar_distance =
          LandauVishkinKnownDistance(*slice, bases, max_k, 0, &result->cigar, &s->lv_);
      if (cigar_distance != 0) {
        result->cigar.clear();  // see VerifyOne: never emit a mismatched CIGAR
      }
    } else {
      // The slice (reference memory) and bases (read / scratch strings untouched
      // for the rest of the batch) stay valid until the deferred pass runs.
      s->cigar_jobs_.push_back(
          LvCigarJob{*slice, bases, cur.best.distance, &result->cigar});
    }

    int gap = cur.second_best - cur.best.distance;
    int mapq;
    if (cur.second_best > max_k) {
      mapq = 60 - 2 * cur.best.distance;
    } else if (gap == 0) {
      mapq = 1;
    } else {
      mapq = std::min(60, 10 * gap - cur.best.distance);
    }
    result->mapq = static_cast<uint8_t>(std::clamp(mapq, 0, 60));
  };

  constexpr int kMaxLanes = 8;  // widest LvBatchWidth (AVX2)
  Cursor lanes[kMaxLanes];
  LvBatchJob jobs[kMaxLanes];
  int lane_map[kMaxLanes];
  int dists[kMaxLanes];
  uint32_t active = 0;
  size_t next = 0;

  // Pulls reads into lane l until one stages a DP job; reads that resolve entirely
  // on fast paths finalize immediately without occupying the lane.
  auto refill = [&](int l) {
    while (next < reads.size()) {
      Cursor cur;
      cur.r = next++;
      results[cur.r] = AlignmentResult{};
      cur.best = Verified{genome::kInvalidLocation, max_k + 1, false};
      cur.second_best = max_k + 1;
      if (advance(cur)) {
        lanes[l] = cur;
        active |= 1u << l;
        return;
      }
      finalize(cur);
    }
  };

  for (int l = 0; l < width; ++l) {
    refill(l);
  }
  while (active != 0) {
    size_t count = 0;
    for (int l = 0; l < width; ++l) {
      if ((active & (1u << l)) != 0) {
        jobs[count] = LvBatchJob{lanes[l].staged_text, bases_for(lanes[l])};
        lane_map[count] = l;
        ++count;
      }
    }
    LvBatch(jobs, dists, count, max_k, level, &s->lv_batch_);
    if (profile != nullptr) {
      ++profile->lv_batch_runs;
      profile->lv_batch_jobs += count;
    }
    for (size_t i = 0; i < count; ++i) {
      Cursor& cur = lanes[lane_map[i]];
      if (deliver(cur, cur.staged_location, dists[i])) {
        ++cur.strand;  // settled: resume at the next strand
        cur.in_strand = false;
      } else {
        ++cur.c;  // resume at the next candidate
      }
      if (!advance(cur)) {
        finalize(cur);
        active &= ~(1u << lane_map[i]);
        refill(lane_map[i]);
      }
    }
  }

  // Deferred winner CIGARs: one history-keeping vector pass per band group plus
  // a scalar traceback per winner, byte-identical to the per-read calls.
  if (!s->cigar_jobs_.empty()) {
    s->cigar_dists_.resize(s->cigar_jobs_.size());
    LvBatchCigar(s->cigar_jobs_.data(), s->cigar_dists_.data(), s->cigar_jobs_.size(),
                 max_k, level, &s->lv_batch_);
    for (size_t i = 0; i < s->cigar_jobs_.size(); ++i) {
      if (s->cigar_dists_[i] != s->cigar_jobs_[i].distance) {
        s->cigar_jobs_[i].cigar->clear();  // see VerifyOne: never emit a mismatch
      }
    }
  }
}

void SnapAligner::AlignBatchAtLevel(std::span<const genome::Read> reads,
                                    std::span<AlignmentResult> results,
                                    AlignerScratch* scratch, AlignProfile* profile,
                                    SimdLevel level) const {
  SnapAlignerScratch* s = dynamic_cast<SnapAlignerScratch*>(scratch);
  if (s == nullptr) {
    // Null or foreign scratch (e.g. a pool shared across aligner types): fall back to
    // per-thread working memory so the call stays allocation-free after warm-up.
    thread_local SnapAlignerScratch fallback;
    s = &fallback;
  }
  if (!SimdLevelSupported(level)) {
    level = SimdLevel::kScalar;
  }

  const size_t n = reads.size();
  s->candidates_.clear();
  s->ranges_.assign(2 * n, SnapAlignerScratch::CandidateRange{});
  if (s->reverse_bases_.size() < n) {
    s->reverse_bases_.resize(n);  // never shrunk: the per-read strings keep capacity
  }

  // --- Seeding phase: vote for candidate start locations on both strands. ---
  const uint64_t seed_start_ns = profile != nullptr ? NowNs() : 0;
  for (size_t r = 0; r < n; ++r) {
    SeedOne(reads[r], r, s, profile);
  }
  if (profile != nullptr) {
    profile->seed_ns += NowNs() - seed_start_ns;
  }

  // --- Verification phase: banded edit distance, best votes first. ---
  const uint64_t verify_start_ns = profile != nullptr ? NowNs() : 0;
  if (LvBatchWidth(level) == 1) {
    for (size_t r = 0; r < n; ++r) {
      VerifyOne(reads[r], r, s, profile, &results[r]);
    }
  } else {
    VerifyBatchVector(reads, results, s, profile, level);
  }
  if (profile != nullptr) {
    profile->verify_ns += NowNs() - verify_start_ns;
  }
}

void SnapAligner::AlignBatch(std::span<const genome::Read> reads,
                             std::span<AlignmentResult> results, AlignerScratch* scratch,
                             AlignProfile* profile) const {
  AlignBatchAtLevel(reads, results, scratch, profile, ActiveSimdLevel());
}

AlignmentResult SnapAligner::Align(const genome::Read& read, AlignProfile* profile) const {
  AlignmentResult result;
  AlignBatch({&read, 1}, {&result, 1}, nullptr, profile);
  return result;
}

}  // namespace persona::align
