#include "src/align/snap_aligner.h"

#include <algorithm>
#include <chrono>

#include "src/compress/base_compaction.h"

namespace persona::align {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Verified {
  int64_t location;
  int distance;
  bool reverse;
};

}  // namespace

SnapAligner::SnapAligner(const genome::ReferenceGenome* reference, const SeedIndex* index,
                         const SnapOptions& options)
    : reference_(reference), index_(index), options_(options) {}

void SnapAligner::SeedOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
                          AlignProfile* profile) const {
  const int read_len = static_cast<int>(read.bases.size());
  const int seed_len = index_->seed_length();
  if (read_len < seed_len) {
    return;  // unmapped: too short to seed; ranges stay empty
  }

  if (profile != nullptr) {
    ++profile->reads;
    profile->bases += static_cast<uint64_t>(read_len);
  }

  std::string& reverse_bases = scratch->reverse_bases_[r];
  compress::ReverseComplementInto(read.bases, &reverse_bases);

  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases =
        strand == 0 ? std::string_view(read.bases) : std::string_view(reverse_bases);
    VoteMap& votes = scratch->votes_[strand];
    votes.Reset();
    RollingSeedPacker packer(bases, seed_len);
    for (int off = 0; off + seed_len <= read_len; off += options_.seed_stride) {
      uint64_t seed;
      if (!packer.Seed(static_cast<size_t>(off), &seed)) {
        continue;  // seed window contains N
      }
      if (profile != nullptr) {
        ++profile->index_probes;
      }
      for (uint32_t pos : index_->Lookup(seed)) {
        int64_t start = static_cast<int64_t>(pos) - off;
        if (start >= 0) {
          votes.Vote(start);
        }
      }
    }
    // Stage this (read, strand)'s candidates, best votes first, in the flat array.
    const uint32_t begin = static_cast<uint32_t>(scratch->candidates_.size());
    votes.AppendCandidates(&scratch->candidates_);
    const uint32_t end = static_cast<uint32_t>(scratch->candidates_.size());
    std::sort(scratch->candidates_.begin() + begin, scratch->candidates_.begin() + end,
              VoteMap::CandidateBefore);
    scratch->ranges_[2 * r + static_cast<size_t>(strand)] = {begin, end};
  }
}

void SnapAligner::VerifyOne(const genome::Read& read, size_t r, SnapAlignerScratch* scratch,
                            AlignProfile* profile, AlignmentResult* result) const {
  *result = AlignmentResult{};
  const int read_len = static_cast<int>(read.bases.size());

  Verified best{genome::kInvalidLocation, options_.max_edit_distance + 1, false};
  int second_best_distance = options_.max_edit_distance + 1;

  // Reference window: read length plus slack for deletions; near a contig end fall
  // back to the exact read length.
  auto window_slice = [&](int64_t location) {
    auto slice =
        reference_->Slice(location, static_cast<size_t>(read_len + options_.max_edit_distance));
    if (!slice.ok()) {
      slice = reference_->Slice(location, static_cast<size_t>(read_len));
    }
    return slice;
  };

  for (int strand = 0; strand < 2; ++strand) {
    std::string_view bases = strand == 0 ? std::string_view(read.bases)
                                         : std::string_view(scratch->reverse_bases_[r]);
    const auto range = scratch->ranges_[2 * r + static_cast<size_t>(strand)];
    int evaluated = 0;
    for (uint32_t c = range.begin; c < range.end; ++c) {
      const auto& [location, vote_count] = scratch->candidates_[c];
      if (vote_count < options_.min_votes || evaluated >= options_.max_candidates) {
        break;
      }
      ++evaluated;
      if (profile != nullptr) {
        ++profile->candidates;
      }
      auto slice = window_slice(location);
      if (!slice.ok()) {
        continue;
      }
      // Distance only; the winner's CIGAR is recomputed once after the scan instead of
      // building a CIGAR string for every candidate.
      int dist =
          LandauVishkin(*slice, bases, options_.max_edit_distance, nullptr, &scratch->lv_);
      if (dist < 0) {
        continue;
      }
      if (dist < best.distance) {
        second_best_distance = best.distance;
        best = Verified{location, dist, strand == 1};
      } else if (dist < second_best_distance && location != best.location) {
        second_best_distance = dist;
      }
      if (best.distance == 0 && second_best_distance <= options_.max_edit_distance) {
        break;  // perfect hit and MAPQ evidence both settled
      }
    }
  }

  if (best.location == genome::kInvalidLocation) {
    return;  // unmapped
  }

  result->location = best.location;
  result->flags = best.reverse ? kFlagReverse : 0;
  result->edit_distance = static_cast<int16_t>(best.distance);
  result->score = -best.distance;

  std::string_view bases = best.reverse ? std::string_view(scratch->reverse_bases_[r])
                                        : std::string_view(read.bases);
  auto slice = window_slice(best.location);
  int cigar_distance = LandauVishkin(*slice, bases, options_.max_edit_distance,
                                     &result->cigar, &scratch->lv_);
  if (cigar_distance != best.distance) {
    // The traceback pass re-runs the exact band the scan already verified, so a
    // disagreement means the CIGAR does not describe the reported alignment. Emit
    // the placement without a CIGAR rather than a mismatched one.
    result->cigar.clear();
  }

  // MAPQ: confidence grows with the gap to the second-best verified placement and
  // shrinks with the absolute distance of the best one (SNAP-style heuristic).
  int gap = second_best_distance - best.distance;
  int mapq;
  if (second_best_distance > options_.max_edit_distance) {
    mapq = 60 - 2 * best.distance;  // no competitor within the bound
  } else if (gap == 0) {
    mapq = 1;  // ambiguous placement
  } else {
    mapq = std::min(60, 10 * gap - best.distance);
  }
  result->mapq = static_cast<uint8_t>(std::clamp(mapq, 0, 60));
}

void SnapAligner::AlignBatch(std::span<const genome::Read> reads,
                             std::span<AlignmentResult> results, AlignerScratch* scratch,
                             AlignProfile* profile) const {
  SnapAlignerScratch* s = dynamic_cast<SnapAlignerScratch*>(scratch);
  if (s == nullptr) {
    // Null or foreign scratch (e.g. a pool shared across aligner types): fall back to
    // per-thread working memory so the call stays allocation-free after warm-up.
    thread_local SnapAlignerScratch fallback;
    s = &fallback;
  }

  const size_t n = reads.size();
  s->candidates_.clear();
  s->ranges_.assign(2 * n, SnapAlignerScratch::CandidateRange{});
  if (s->reverse_bases_.size() < n) {
    s->reverse_bases_.resize(n);  // never shrunk: the per-read strings keep capacity
  }

  // --- Seeding phase: vote for candidate start locations on both strands. ---
  const uint64_t seed_start_ns = profile != nullptr ? NowNs() : 0;
  for (size_t r = 0; r < n; ++r) {
    SeedOne(reads[r], r, s, profile);
  }
  if (profile != nullptr) {
    profile->seed_ns += NowNs() - seed_start_ns;
  }

  // --- Verification phase: banded edit distance, best votes first. ---
  const uint64_t verify_start_ns = profile != nullptr ? NowNs() : 0;
  for (size_t r = 0; r < n; ++r) {
    VerifyOne(reads[r], r, s, profile, &results[r]);
  }
  if (profile != nullptr) {
    profile->verify_ns += NowNs() - verify_start_ns;
  }
}

AlignmentResult SnapAligner::Align(const genome::Read& read, AlignProfile* profile) const {
  AlignmentResult result;
  AlignBatch({&read, 1}, {&result, 1}, nullptr, profile);
  return result;
}

}  // namespace persona::align
