// Farrar-striped banded Gotoh Smith-Waterman fill.
//
// Included by sw_simd_sse4.cc / sw_simd_avx2.cc (each compiled with the matching
// -m flags) with an Ops policy supplying the vector type and intrinsics wrappers.
// Do not include anywhere else.
//
// Striped layout (Farrar, "Striped Smith-Waterman speeds database searches..."):
// query position i (0-based) lives in stripe i % S, lane i / S, so element i-1
// is the previous stripe of the same lane — except at stripe 0, where it is the
// last stripe of the previous lane, handled by a lane shift (ShiftIn).
//
// Band parity with the scalar two-row kernel (smith_waterman.cc) is exact:
//
//  - Every cell of the column rectangle is computed, but out-of-band cells are
//    masked to exactly kNegInf *before* anything reads them (the same value the
//    scalar h_at/e_at/f_at boundary conventions substitute for such reads), so
//    in-band H/E values are bit-identical to the scalar fill's.
//  - The F chain is seeded from the row-0 boundary (H = 0) in every column.
//    The scalar kernel only lets row 0 feed columns whose band touches row 1;
//    in later columns the chain here passes through masked (kNegInf) H values,
//    yielding a finite but strictly negative F that can never beat the in-band
//    0-floor — H is unchanged. This holds for negative gap penalties (the only
//    regime the scalar kernel is used in).
//  - The cross-lane F dependency is resolved by iterating the lazy-F pass until
//    a whole pass changes nothing. Values grow monotonically from below and the
//    recurrence has a unique solution, so the fixpoint is exact.
//  - Best tracking keeps, per position, the maximum H and the earliest column
//    achieving it (strict-greater update); the caller reduces positions in row
//    order, reproducing the scalar row-major strict-greater argmax tie-break.

template <typename Ops>
static void SwFillImpl(const persona::align::simd::SwPassArgs& a) {
  using V = typename Ops::V;
  constexpr int W = Ops::kWidth;
  const int S = a.stripes;
  const size_t sv = static_cast<size_t>(S) * W;

  const V vneg = Ops::Set1(a.neg_inf);
  const V vzero = Ops::Set1(0);
  const V vgoe = Ops::Set1(a.gap_open_extend);
  const V vge = Ops::Set1(a.gap_extend);
  const V vmatch = Ops::Set1(a.match);
  const V vmis = Ops::Set1(a.mismatch);

  for (int s = 0; s < S; ++s) {
    // E entering column 1: max(H[i][0] + goe, -inf) = goe (column 0 is the
    // all-zero boundary), exactly the scalar j == 1 edge convention.
    Ops::StoreA(a.e + static_cast<size_t>(s) * W, vgoe);
    Ops::StoreA(a.best + static_cast<size_t>(s) * W, vzero);
    Ops::StoreA(a.best_j + static_cast<size_t>(s) * W, vzero);
    Ops::StoreA(a.zero_col + static_cast<size_t>(s) * W, vzero);
  }

  for (int j = 1; j <= a.n_cols; ++j) {
    const int32_t* hprev = j >= 2 ? a.h + static_cast<size_t>(j - 2) * sv : a.zero_col;
    int32_t* hcur = a.h + static_cast<size_t>(j - 1) * sv;
    const uint8_t rb = a.ref[static_cast<size_t>(j - 1)];
    const int pidx = a.prof_idx[rb];
    const V vrb = Ops::Set1(rb);
    // In-band rows for column j: j - hi <= row <= min(j - lo, m).
    const int row_hi = j - a.lo < a.m ? j - a.lo : a.m;
    const V vrow_lo = Ops::Set1(j - a.hi);
    const V vrow_hi = Ops::Set1(row_hi);

    // Phase A: H from diagonal and E (no F yet), masked, stored.
    V diag = Ops::ShiftIn(Ops::LoadA(hprev + (static_cast<size_t>(S) - 1) * W), 0);
    for (int s = 0; s < S; ++s) {
      const size_t off = static_cast<size_t>(s) * W;
      const V vrow = Ops::LoadA(a.row + off);
      V prof;
      if (pidx < 5) {
        prof = Ops::LoadA(a.profile + static_cast<size_t>(pidx) * sv + off);
      } else {
        // Ref byte outside the canonical alphabet: exact byte compare, the same
        // semantics the scalar kernel's direct char comparison has.
        prof = Ops::Blend(vmis, vmatch, Ops::CmpEq(Ops::LoadBytes(a.qchars + off), vrb));
      }
      V h = Ops::Max(Ops::Add(diag, prof), Ops::LoadA(a.e + off));
      h = Ops::Max(h, vzero);
      const V oob = Ops::Or(Ops::CmpGt(vrow_lo, vrow), Ops::CmpGt(vrow, vrow_hi));
      h = Ops::Blend(h, vneg, oob);
      Ops::StoreA(a.oob + off, oob);
      Ops::StoreA(hcur + off, h);
      Ops::StoreA(a.f + off, vneg);
      diag = Ops::LoadA(hprev + off);  // stripe s+1's diagonal is prev column stripe s
    }

    // Phase B: fold F in until a whole pass changes nothing (exact fixpoint).
    for (;;) {
      int any_change = 0;
      V carry_h = Ops::ShiftIn(Ops::LoadA(hcur + (static_cast<size_t>(S) - 1) * W), 0);
      V carry_f =
          Ops::ShiftIn(Ops::LoadA(a.f + (static_cast<size_t>(S) - 1) * W), a.neg_inf);
      for (int s = 0; s < S; ++s) {
        const size_t off = static_cast<size_t>(s) * W;
        const V old_f = Ops::LoadA(a.f + off);
        const V old_h = Ops::LoadA(hcur + off);
        const V new_f = Ops::Max(Ops::Max(Ops::Add(carry_h, vgoe), Ops::Add(carry_f, vge)),
                                 old_f);
        V new_h = Ops::Max(old_h, new_f);
        new_h = Ops::Blend(new_h, vneg, Ops::LoadA(a.oob + off));
        any_change |= Ops::AnyGt(new_h, old_h) | Ops::AnyGt(new_f, old_f);
        Ops::StoreA(a.f + off, new_f);
        Ops::StoreA(hcur + off, new_h);
        carry_h = new_h;
        carry_f = new_f;
      }
      if (any_change == 0) {
        break;
      }
    }

    // Phase C: best tracking (strict greater, earliest column) and next E.
    const V vj = Ops::Set1(j);
    for (int s = 0; s < S; ++s) {
      const size_t off = static_cast<size_t>(s) * W;
      const V h = Ops::LoadA(hcur + off);
      const V b = Ops::LoadA(a.best + off);
      const V gt = Ops::CmpGt(h, b);
      Ops::StoreA(a.best + off, Ops::Blend(b, h, gt));
      Ops::StoreA(a.best_j + off, Ops::Blend(Ops::LoadA(a.best_j + off), vj, gt));
      V e_next = Ops::Max(Ops::Add(h, vgoe), Ops::Add(Ops::LoadA(a.e + off), vge));
      // Mask with *this* column's band: the scalar left-edge convention reads
      // E of an out-of-band left neighbor as kNegInf.
      e_next = Ops::Blend(e_next, vneg, Ops::LoadA(a.oob + off));
      Ops::StoreA(a.e + off, e_next);
    }
  }
}
