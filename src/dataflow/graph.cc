#include "src/dataflow/graph.h"

namespace persona::dataflow {

void Graph::RecordError(const Status& status) {
  {
    MutexLock lock(error_mu_);
    if (first_error_.ok()) {
      first_error_ = status;
    }
  }
  Cancel();
}

Status Graph::Run() {
  {
    MutexLock lock(error_mu_);
    if (ran_) {
      return FailedPreconditionError("Graph::Run called twice");
    }
    ran_ = true;
  }

  // One completion counter per stage: the last worker out runs on_complete, which closes
  // the stage's output queue and lets downstream stages drain and exit.
  struct StageRuntime {
    std::atomic<int> remaining;
    const Stage* stage;
  };
  std::vector<std::unique_ptr<StageRuntime>> runtimes;
  runtimes.reserve(stages_.size());
  for (const Stage& stage : stages_) {
    auto rt = std::make_unique<StageRuntime>();
    rt->remaining.store(stage.parallelism);
    rt->stage = &stage;
    runtimes.push_back(std::move(rt));
  }

  std::vector<std::thread> workers;
  for (auto& rt : runtimes) {
    for (int w = 0; w < rt->stage->parallelism; ++w) {
      workers.emplace_back([rt = rt.get()] {
        rt->stage->worker_body();
        if (rt->remaining.fetch_sub(1) == 1) {
          // Last worker out: end-of-stream epilogue first (it may still emit), then
          // close the output queue so downstream drains and exits.
          if (rt->stage->on_drain) {
            rt->stage->on_drain();
          }
          if (rt->stage->on_complete) {
            rt->stage->on_complete();
          }
        }
      });
    }
  }
  for (std::thread& t : workers) {
    t.join();
  }

  MutexLock lock(error_mu_);
  return first_error_;
}

}  // namespace persona::dataflow
