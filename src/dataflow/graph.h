// The coarse-grain dataflow graph runtime (paper §4, Figure 3).
//
// A Graph is a set of stages connected by bounded MPMC queues. Each stage runs
// `parallelism` worker threads; a worker pops one item, runs the stage function, and
// pushes results downstream. When a stage's input queue closes and drains, its workers
// exit, and the last one out runs the stage's optional on_drain epilogue (end-of-stream
// flush for stages carrying cross-item state) and then closes the stage's output queue —
// end-of-stream propagates through the pipeline. The first stage error cancels the graph.
//
// Stage functions emit through a StageOutput handle rather than the raw queue: Push
// returns a Status so a closed downstream queue (cancellation) surfaces as a clean
// kCancelled stop instead of a silently dropped item, and the handle separates
// time-blocked-on-a-full-queue from stage compute time.
//
// Stages record per-worker busy and queue-wait time; a UtilizationSampler (see stats.h)
// turns busy time into the CPU-utilization timelines of Fig. 5 and samples the fill
// level of every queue registered with ObserveQueue.

#ifndef PERSONA_SRC_DATAFLOW_GRAPH_H_
#define PERSONA_SRC_DATAFLOW_GRAPH_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/mpmc_queue.h"
#include "src/util/mutex.h"
#include "src/util/result.h"
#include "src/util/stopwatch.h"

namespace persona::dataflow {

// Runtime counters for one stage. busy_ns only counts stage-function compute time
// (time blocked pushing downstream is split out into output_wait_ns), so
// utilization = d(busy_ns)/dt / parallelism. input_wait_ns is time blocked popping the
// input queue — a starved stage shows high input wait, a backpressured one high output
// wait.
struct StageStats {
  std::string name;
  int parallelism = 0;
  std::atomic<uint64_t> items{0};
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> input_wait_ns{0};
  std::atomic<uint64_t> output_wait_ns{0};

  StageStats(std::string n, int p) : name(std::move(n)), parallelism(p) {}
};

// Emission handle passed to stage functions. Push returns kCancelled when the
// downstream queue has closed (the graph is unwinding) so stages stop cleanly; the
// accumulated wait time is drained by the worker loop after each item.
template <typename T>
class StageOutput {
 public:
  explicit StageOutput(MpmcQueue<T>* queue) : queue_(queue) {}

  [[nodiscard]] Status Push(T item) {
    Stopwatch timer;
    const bool accepted = queue_->Push(std::move(item));
    wait_ns_ += static_cast<uint64_t>(timer.ElapsedNanos());
    if (!accepted) {
      return CancelledError("downstream queue closed");
    }
    return OkStatus();
  }

  // Accumulated Push time since the last call (blocked-on-full plus transfer).
  uint64_t TakeWaitNanos() { return std::exchange(wait_ns_, 0); }

  // Folds externally measured queue-wait time (e.g. a side-channel push to another
  // queue) into this stage's accounting.
  void AddWaitNanos(uint64_t ns) { wait_ns_ += ns; }

 private:
  MpmcQueue<T>* queue_;
  uint64_t wait_ns_ = 0;
};

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  template <typename T>
  using QueuePtr = std::shared_ptr<MpmcQueue<T>>;

  template <typename T>
  static QueuePtr<T> MakeQueue(size_t capacity) {
    return std::make_shared<MpmcQueue<T>>(capacity);
  }

  // Registers a queue for occupancy sampling (UtilizationSampler::queue_fill).
  template <typename T>
  void ObserveQueue(std::string name, const QueuePtr<T>& queue) {
    queue_probes_.push_back(
        {std::move(name), queue->capacity(), [queue] { return queue->size(); }});
  }

  // Lets a source function classify time it spent blocked (e.g. on an external
  // pacing gate) so that wait lands in output_wait_ns instead of inflating busy_ns.
  struct SourceWait {
    uint64_t wait_ns = 0;
  };

  // Source stage: one worker repeatedly calls `next` and pushes until nullopt. The
  // SourceWait overload passes a recorder the function fills with any time it spent
  // blocked rather than producing.
  template <typename Out>
  void AddSource(const std::string& name, QueuePtr<Out> out,
                 std::function<std::optional<Out>()> next) {
    AddSource<Out>(name, std::move(out),
                   [next = std::move(next)](SourceWait&) { return next(); });
  }

  template <typename Out>
  void AddSource(const std::string& name, QueuePtr<Out> out,
                 std::function<std::optional<Out>(SourceWait&)> next) {
    auto* stats = NewStats(name, 1);
    cancel_hooks_.push_back([out] { out->Close(); });
    stages_.push_back(Stage{name, 1, [this, out, next = std::move(next), stats] {
      while (!cancelled_.load(std::memory_order_relaxed)) {
        SourceWait wait;
        Stopwatch timer;
        std::optional<Out> item = next(wait);
        const auto elapsed = static_cast<uint64_t>(timer.ElapsedNanos());
        stats->busy_ns.fetch_add(elapsed > wait.wait_ns ? elapsed - wait.wait_ns : 0,
                                 std::memory_order_relaxed);
        stats->output_wait_ns.fetch_add(wait.wait_ns, std::memory_order_relaxed);
        if (!item.has_value()) {
          break;
        }
        stats->items.fetch_add(1, std::memory_order_relaxed);
        Stopwatch push_timer;
        const bool accepted = out->Push(std::move(*item));
        stats->output_wait_ns.fetch_add(static_cast<uint64_t>(push_timer.ElapsedNanos()),
                                        std::memory_order_relaxed);
        if (!accepted) {
          break;  // downstream closed (cancellation)
        }
      }
    }, [out] { out->Close(); }, nullptr});
  }

  // Transform stage: `parallelism` workers map In -> zero or more Out (the function
  // pushes through the StageOutput so it can fan out or filter). The optional
  // `on_drain` epilogue runs once, in the last worker, after the input queue has
  // drained and before the output queue closes — for stages that carry cross-item
  // state and must flush at end-of-stream. It is skipped when the graph is cancelled.
  template <typename In, typename Out>
  void AddStage(const std::string& name, int parallelism, QueuePtr<In> in, QueuePtr<Out> out,
                std::function<Status(In&&, StageOutput<Out>&)> fn,
                std::function<Status(StageOutput<Out>&)> on_drain = nullptr) {
    auto* stats = NewStats(name, parallelism);
    cancel_hooks_.push_back([in, out] {
      in->Close();
      out->Close();
    });
    std::function<void()> drain_hook;
    if (on_drain) {
      drain_hook = [this, out, on_drain = std::move(on_drain), stats] {
        if (cancelled_.load(std::memory_order_relaxed)) {
          return;
        }
        StageOutput<Out> output(out.get());
        Stopwatch timer;
        Status status = on_drain(output);
        RecordWork(stats, static_cast<uint64_t>(timer.ElapsedNanos()),
                   output.TakeWaitNanos());
        HandleStatus(status);
      };
    }
    stages_.push_back(Stage{name, parallelism, [this, in, out, fn = std::move(fn), stats] {
      StageOutput<Out> output(out.get());
      while (true) {
        Stopwatch pop_timer;
        std::optional<In> item = in->Pop();
        stats->input_wait_ns.fetch_add(static_cast<uint64_t>(pop_timer.ElapsedNanos()),
                                       std::memory_order_relaxed);
        if (!item.has_value()) {
          break;
        }
        Stopwatch timer;
        Status status = fn(std::move(*item), output);
        RecordItem(stats, static_cast<uint64_t>(timer.ElapsedNanos()),
                   output.TakeWaitNanos());
        if (!status.ok()) {
          HandleStatus(status);
          break;
        }
        if (cancelled_.load(std::memory_order_relaxed)) {
          break;
        }
      }
    }, [out] { out->Close(); }, std::move(drain_hook)});
  }

  // Sink stage: consumes items. The optional `on_drain` epilogue runs once, in the
  // last worker, after the input queue has drained (skipped on cancellation).
  template <typename In>
  void AddSink(const std::string& name, int parallelism, QueuePtr<In> in,
               std::function<Status(In&&)> fn,
               std::function<Status()> on_drain = nullptr) {
    auto* stats = NewStats(name, parallelism);
    cancel_hooks_.push_back([in] { in->Close(); });
    std::function<void()> drain_hook;
    if (on_drain) {
      drain_hook = [this, on_drain = std::move(on_drain), stats] {
        if (cancelled_.load(std::memory_order_relaxed)) {
          return;
        }
        Stopwatch timer;
        Status status = on_drain();
        RecordWork(stats, static_cast<uint64_t>(timer.ElapsedNanos()), 0);
        HandleStatus(status);
      };
    }
    stages_.push_back(Stage{name, parallelism, [this, in, fn = std::move(fn), stats] {
      while (true) {
        Stopwatch pop_timer;
        std::optional<In> item = in->Pop();
        stats->input_wait_ns.fetch_add(static_cast<uint64_t>(pop_timer.ElapsedNanos()),
                                       std::memory_order_relaxed);
        if (!item.has_value()) {
          break;
        }
        Stopwatch timer;
        Status status = fn(std::move(*item));
        RecordItem(stats, static_cast<uint64_t>(timer.ElapsedNanos()), 0);
        if (!status.ok()) {
          HandleStatus(status);
          break;
        }
        if (cancelled_.load(std::memory_order_relaxed)) {
          break;
        }
      }
    }, nullptr, std::move(drain_hook)});
  }

  // Runs the graph to completion; returns the first stage error (if any).
  // May be called once per Graph.
  [[nodiscard]] Status Run();

  // Stage statistics (valid during and after Run). Pointers stable for the Graph's life.
  const std::vector<std::unique_ptr<StageStats>>& stats() const { return stats_; }

  // Queue occupancy probe for one registered queue.
  struct QueueProbe {
    std::string name;
    size_t capacity = 0;
    std::function<size_t()> size;
  };
  const std::vector<QueueProbe>& queue_probes() const { return queue_probes_; }

  // Registers an extra hook to run on Cancel() — for waits outside the graph's own
  // queues (e.g. an ordering gate) that must wake when the graph unwinds.
  void AddCancelHook(std::function<void()> hook) {
    cancel_hooks_.push_back(std::move(hook));
  }

  // Requests cancellation: stages stop after their current item and all queues close so
  // no worker stays blocked on a full or empty queue.
  void Cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    for (const auto& hook : cancel_hooks_) {
      hook();
    }
  }

 private:
  struct Stage {
    std::string name;
    int parallelism;
    std::function<void()> worker_body;
    std::function<void()> on_complete;  // closes the output queue; may be null
    std::function<void()> on_drain;     // end-of-stream epilogue; may be null
  };

  StageStats* NewStats(const std::string& name, int parallelism) {
    stats_.push_back(std::make_unique<StageStats>(name, parallelism));
    return stats_.back().get();
  }

  // Folds one unit of stage work into the counters; drain epilogues record time but
  // are not items.
  static void RecordWork(StageStats* stats, uint64_t elapsed_ns, uint64_t push_wait_ns) {
    const uint64_t busy = elapsed_ns > push_wait_ns ? elapsed_ns - push_wait_ns : 0;
    stats->busy_ns.fetch_add(busy, std::memory_order_relaxed);
    stats->output_wait_ns.fetch_add(push_wait_ns, std::memory_order_relaxed);
  }

  static void RecordItem(StageStats* stats, uint64_t elapsed_ns, uint64_t push_wait_ns) {
    RecordWork(stats, elapsed_ns, push_wait_ns);
    stats->items.fetch_add(1, std::memory_order_relaxed);
  }

  // kCancelled means the downstream closed under us — the graph is already unwinding
  // (or the stage asked for a clean stop); make sure everything else unwinds too but
  // do not record it as the run's error.
  void HandleStatus(const Status& status) {
    if (status.ok()) {
      return;
    }
    if (status.code() == StatusCode::kCancelled) {
      Cancel();
      return;
    }
    RecordError(status);
  }

  void RecordError(const Status& status) EXCLUDES(error_mu_);

  std::vector<Stage> stages_;
  std::vector<std::function<void()>> cancel_hooks_;
  std::vector<std::unique_ptr<StageStats>> stats_;
  std::vector<QueueProbe> queue_probes_;
  std::atomic<bool> cancelled_{false};
  Mutex error_mu_;
  Status first_error_ GUARDED_BY(error_mu_);
  bool ran_ GUARDED_BY(error_mu_) = false;
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_GRAPH_H_
