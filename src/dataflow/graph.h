// The coarse-grain dataflow graph runtime (paper §4, Figure 3).
//
// A Graph is a set of stages connected by bounded MPMC queues. Each stage runs
// `parallelism` worker threads; a worker pops one item, runs the stage function, and
// pushes results downstream. When a stage's input queue closes and drains, its workers
// exit, and the last one out closes the stage's output queue — end-of-stream propagates
// through the pipeline. The first stage error cancels the graph.
//
// Stages record per-worker busy time; a UtilizationSampler (see stats.h) turns that into
// the CPU-utilization timelines of Fig. 5.

#ifndef PERSONA_SRC_DATAFLOW_GRAPH_H_
#define PERSONA_SRC_DATAFLOW_GRAPH_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/util/mpmc_queue.h"
#include "src/util/result.h"
#include "src/util/stopwatch.h"

namespace persona::dataflow {

// Runtime counters for one stage. busy_ns only counts stage-function time, so
// utilization = d(busy_ns)/dt / parallelism.
struct StageStats {
  std::string name;
  int parallelism = 0;
  std::atomic<uint64_t> items{0};
  std::atomic<uint64_t> busy_ns{0};

  StageStats(std::string n, int p) : name(std::move(n)), parallelism(p) {}
};

class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  template <typename T>
  using QueuePtr = std::shared_ptr<MpmcQueue<T>>;

  template <typename T>
  static QueuePtr<T> MakeQueue(size_t capacity) {
    return std::make_shared<MpmcQueue<T>>(capacity);
  }

  // Source stage: one worker repeatedly calls `next` and pushes until nullopt.
  template <typename Out>
  void AddSource(const std::string& name, QueuePtr<Out> out,
                 std::function<std::optional<Out>()> next) {
    auto* stats = NewStats(name, 1);
    cancel_hooks_.push_back([out] { out->Close(); });
    stages_.push_back(Stage{name, 1, [this, out, next = std::move(next), stats] {
      while (!cancelled_.load(std::memory_order_relaxed)) {
        Stopwatch timer;
        std::optional<Out> item = next();
        stats->busy_ns.fetch_add(static_cast<uint64_t>(timer.ElapsedNanos()),
                                 std::memory_order_relaxed);
        if (!item.has_value()) {
          break;
        }
        stats->items.fetch_add(1, std::memory_order_relaxed);
        if (!out->Push(std::move(*item))) {
          break;  // downstream closed (cancellation)
        }
      }
    }, [out] { out->Close(); }});
  }

  // Transform stage: `parallelism` workers map In -> zero or more Out (the function
  // pushes directly so it can fan out or filter).
  template <typename In, typename Out>
  void AddStage(const std::string& name, int parallelism, QueuePtr<In> in, QueuePtr<Out> out,
                std::function<Status(In&&, MpmcQueue<Out>&)> fn) {
    auto* stats = NewStats(name, parallelism);
    cancel_hooks_.push_back([in, out] {
      in->Close();
      out->Close();
    });
    stages_.push_back(Stage{name, parallelism, [this, in, out, fn = std::move(fn), stats] {
      while (auto item = in->Pop()) {
        Stopwatch timer;
        Status status = fn(std::move(*item), *out);
        stats->busy_ns.fetch_add(static_cast<uint64_t>(timer.ElapsedNanos()),
                                 std::memory_order_relaxed);
        stats->items.fetch_add(1, std::memory_order_relaxed);
        if (!status.ok()) {
          RecordError(status);
          break;
        }
        if (cancelled_.load(std::memory_order_relaxed)) {
          break;
        }
      }
    }, [out] { out->Close(); }});
  }

  // Sink stage: consumes items.
  template <typename In>
  void AddSink(const std::string& name, int parallelism, QueuePtr<In> in,
               std::function<Status(In&&)> fn) {
    auto* stats = NewStats(name, parallelism);
    cancel_hooks_.push_back([in] { in->Close(); });
    stages_.push_back(Stage{name, parallelism, [this, in, fn = std::move(fn), stats] {
      while (auto item = in->Pop()) {
        Stopwatch timer;
        Status status = fn(std::move(*item));
        stats->busy_ns.fetch_add(static_cast<uint64_t>(timer.ElapsedNanos()),
                                 std::memory_order_relaxed);
        stats->items.fetch_add(1, std::memory_order_relaxed);
        if (!status.ok()) {
          RecordError(status);
          break;
        }
        if (cancelled_.load(std::memory_order_relaxed)) {
          break;
        }
      }
    }, nullptr});
  }

  // Runs the graph to completion; returns the first stage error (if any).
  // May be called once per Graph.
  Status Run();

  // Stage statistics (valid during and after Run). Pointers stable for the Graph's life.
  const std::vector<std::unique_ptr<StageStats>>& stats() const { return stats_; }

  // Requests cancellation: stages stop after their current item and all queues close so
  // no worker stays blocked on a full or empty queue.
  void Cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    for (const auto& hook : cancel_hooks_) {
      hook();
    }
  }

 private:
  struct Stage {
    std::string name;
    int parallelism;
    std::function<void()> worker_body;
    std::function<void()> on_complete;  // closes the output queue; may be null
  };

  StageStats* NewStats(const std::string& name, int parallelism) {
    stats_.push_back(std::make_unique<StageStats>(name, parallelism));
    return stats_.back().get();
  }

  void RecordError(const Status& status);

  std::vector<Stage> stages_;
  std::vector<std::function<void()>> cancel_hooks_;
  std::vector<std::unique_ptr<StageStats>> stats_;
  std::atomic<bool> cancelled_{false};
  std::mutex error_mu_;
  Status first_error_;
  bool ran_ = false;
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_GRAPH_H_
