// UtilizationSampler: periodic CPU-utilization timelines from stage busy counters.
//
// Reproduces the instrumentation behind the paper's Fig. 5: sample every stage's
// cumulative busy time at a fixed interval; the per-interval delta divided by
// (interval * provisioned workers) is that stage's utilization, and the sum across
// stages (capped at the worker budget) approximates whole-machine CPU utilization.

#ifndef PERSONA_SRC_DATAFLOW_STATS_H_
#define PERSONA_SRC_DATAFLOW_STATS_H_

#include <atomic>
#include <thread>
#include <vector>

#include "src/dataflow/graph.h"

namespace persona::dataflow {

struct UtilizationSample {
  double time_sec = 0;             // since sampler start
  double total_utilization = 0;    // 0..1 across all sampled stages
  std::vector<double> per_stage;   // 0..1 each, same order as Graph::stats()
  std::vector<double> queue_fill;  // 0..1 fill level, same order as Graph::queue_probes()
};

class UtilizationSampler {
 public:
  // Samples `graph.stats()` every `interval_sec`. `total_workers` is the machine's
  // provisioned thread budget (for the whole-machine number); if 0, the sum of stage
  // parallelisms is used.
  UtilizationSampler(const Graph* graph, double interval_sec, int total_workers = 0);
  ~UtilizationSampler();

  void Start();
  void Stop();

  const std::vector<UtilizationSample>& samples() const { return samples_; }

 private:
  void Loop();

  const Graph* graph_;
  double interval_sec_;
  int total_workers_;
  std::vector<UtilizationSample> samples_;
  std::vector<uint64_t> last_busy_ns_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_STATS_H_
