#include "src/dataflow/work_stealing.h"

namespace persona::dataflow {

WorkStealingPool::WorkStealingPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  Drain();
  {
    // The store must happen under idle_mu_, exactly like Submit's enqueue: a worker
    // that read shutdown_ == false under the lock but has not reached Wait() yet
    // would otherwise miss the notify below and sleep forever, hanging the joins.
    MutexLock lock(idle_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  work_ready_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

bool WorkStealingPool::Submit(std::function<void()> task, int home) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return false;
  }
  const size_t target =
      home >= 0 ? static_cast<size_t>(home) % workers_.size()
                : next_home_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_add(1, std::memory_order_acq_rel);
  {
    Worker& worker = *workers_[target];
    MutexLock lock(worker.mu);
    worker.deque.push_back({std::move(task), static_cast<int>(target)});
  }
  {
    // Synchronize with a worker that is between its predicate check and sleeping;
    // without this the notify below could be lost (classic missed-wakeup race).
    MutexLock lock(idle_mu_);
  }
  work_ready_.NotifyOne();
  return true;
}

void WorkStealingPool::Drain() {
  MutexLock lock(idle_mu_);
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    drained_.Wait(idle_mu_);
  }
}

std::vector<uint64_t> WorkStealingPool::ExecutedPerWorker() const {
  std::vector<uint64_t> counts;
  counts.reserve(workers_.size());
  for (const auto& worker : workers_) {
    counts.push_back(worker->executed.load(std::memory_order_relaxed));
  }
  return counts;
}

bool WorkStealingPool::NextTask(int self, Task* out) {
  // Own deque first: LIFO keeps the owner's working set warm.
  {
    Worker& me = *workers_[static_cast<size_t>(self)];
    MutexLock lock(me.mu);
    if (!me.deque.empty()) {
      *out = std::move(me.deque.back());
      me.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal scan: FIFO from a victim's front (the oldest task, most likely to be large in
  // recursive decompositions; here it simply minimizes contention with the owner).
  const size_t n = workers_.size();
  for (size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(static_cast<size_t>(self) + k) % n];
    MutexLock lock(victim.mu);
    if (!victim.deque.empty()) {
      *out = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void WorkStealingPool::WorkerLoop(int self) {
  Worker& me = *workers_[static_cast<size_t>(self)];
  while (true) {
    Task task;
    if (NextTask(self, &task)) {
      task.fn();
      me.executed.fetch_add(1, std::memory_order_relaxed);
      if (task.home == self) {
        local_.fetch_add(1, std::memory_order_relaxed);
      } else {
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out: wake Drain() callers.
        MutexLock lock(idle_mu_);
        drained_.NotifyAll();
      }
      continue;
    }
    MutexLock lock(idle_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    if (queued_.load(std::memory_order_acquire) > 0) {
      // A task was enqueued between our failed scan and taking the lock; rescan.
      continue;
    }
    while (!shutdown_.load(std::memory_order_acquire) &&
           queued_.load(std::memory_order_acquire) <= 0) {
      work_ready_.Wait(idle_mu_);
    }
  }
}

}  // namespace persona::dataflow
