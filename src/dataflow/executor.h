// Executor resource: the fine-grain task layer inside compute-intense kernels
// (paper §4.3, Figure 4).
//
// AGD chunks are storage-granular — too coarse for threads, producing stragglers. The
// executor owns all compute threads and exposes a fine-grain task queue: multiple
// parallel aligner nodes logically split their chunk into (subchunk, buffer) tasks,
// submit them, and block on a TaskBatch until their chunk completes. All cores stay busy
// across chunk boundaries because tasks from different chunks interleave freely.

#ifndef PERSONA_SRC_DATAFLOW_EXECUTOR_H_
#define PERSONA_SRC_DATAFLOW_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "src/util/thread_pool.h"

namespace persona::dataflow {

class Executor;

// Tracks completion of one kernel's submitted subtasks.
class TaskBatch {
 public:
  explicit TaskBatch(Executor* executor) : executor_(executor) {}

  TaskBatch(const TaskBatch&) = delete;
  TaskBatch& operator=(const TaskBatch&) = delete;

  // Submits `fn` to the executor as part of this batch.
  void Add(std::function<void()> fn);

  // Blocks until every task added so far has finished.
  void Wait();

 private:
  Executor* executor_;
  std::mutex mu_;
  std::condition_variable done_;
  int64_t outstanding_ = 0;
};

class Executor {
 public:
  explicit Executor(size_t num_threads) : pool_(num_threads) {}

  size_t num_threads() const { return pool_.num_threads(); }

  // Raw submission (prefer TaskBatch for chunk-scoped waiting).
  bool Submit(std::function<void()> fn) { return pool_.Submit(std::move(fn)); }

  // Total subtasks executed (for balance diagnostics).
  uint64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }

 private:
  friend class TaskBatch;

  ThreadPool pool_;
  std::atomic<uint64_t> tasks_executed_{0};
};

inline void TaskBatch::Add(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  bool submitted = executor_->Submit([this, fn = std::move(fn)] {
    fn();
    executor_->tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    // Notify while holding the lock: the moment Wait() can observe outstanding_ == 0
    // the caller may destroy this TaskBatch, so the condition variable must not be
    // touched after the unlock (TSan-caught use-after-return otherwise).
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    done_.notify_all();
  });
  if (!submitted) {
    // Executor shutting down: undo the reservation so Wait() cannot hang.
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
}

inline void TaskBatch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [&] { return outstanding_ == 0; });
}

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_EXECUTOR_H_
