// Executor resource: the fine-grain task layer inside compute-intense kernels
// (paper §4.3, Figure 4).
//
// AGD chunks are storage-granular — too coarse for threads, producing stragglers. The
// executor owns all compute threads and exposes a fine-grain task queue: multiple
// parallel aligner nodes logically split their chunk into (subchunk, buffer) tasks,
// submit them, and block on a TaskBatch until their chunk completes. All cores stay busy
// across chunk boundaries because tasks from different chunks interleave freely.

#ifndef PERSONA_SRC_DATAFLOW_EXECUTOR_H_
#define PERSONA_SRC_DATAFLOW_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>

#include "src/util/mutex.h"
#include "src/util/thread_pool.h"

namespace persona::dataflow {

class Executor;

// Tracks completion of one kernel's submitted subtasks.
class TaskBatch {
 public:
  explicit TaskBatch(Executor* executor) : executor_(executor) {}

  TaskBatch(const TaskBatch&) = delete;
  TaskBatch& operator=(const TaskBatch&) = delete;

  // Submits `fn` to the executor as part of this batch.
  void Add(std::function<void()> fn) EXCLUDES(mu_);

  // Blocks until every task added so far has finished.
  void Wait() EXCLUDES(mu_);

 private:
  Executor* executor_;
  Mutex mu_;
  CondVar done_;
  int64_t outstanding_ GUARDED_BY(mu_) = 0;
};

class Executor {
 public:
  explicit Executor(size_t num_threads) : pool_(num_threads) {}

  size_t num_threads() const { return pool_.num_threads(); }

  // Raw submission (prefer TaskBatch for chunk-scoped waiting).
  [[nodiscard]] bool Submit(std::function<void()> fn) { return pool_.Submit(std::move(fn)); }

  // Total subtasks executed (for balance diagnostics).
  uint64_t tasks_executed() const { return tasks_executed_.load(std::memory_order_relaxed); }

 private:
  friend class TaskBatch;

  ThreadPool pool_;
  std::atomic<uint64_t> tasks_executed_{0};
};

inline void TaskBatch::Add(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  bool submitted = executor_->Submit([this, fn = std::move(fn)] {
    fn();
    executor_->tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    // Notify while holding the lock: the moment Wait() can observe outstanding_ == 0
    // the caller may destroy this TaskBatch, so the condition variable must not be
    // touched after the unlock (TSan-caught use-after-return otherwise).
    MutexLock lock(mu_);
    --outstanding_;
    done_.NotifyAll();
  });
  if (!submitted) {
    // Executor shutting down: undo the reservation so Wait() cannot hang.
    MutexLock lock(mu_);
    --outstanding_;
  }
}

inline void TaskBatch::Wait() {
  MutexLock lock(mu_);
  while (outstanding_ != 0) {
    done_.Wait(mu_);
  }
}

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_EXECUTOR_H_
