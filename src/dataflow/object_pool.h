// ObjectPool: bounded pools of recyclable objects (paper §4.5).
//
// Persona avoids freeing/reallocating/copying payload memory by passing handles to
// pooled objects between dataflow nodes. A pool hands out RAII Refs; destroying a Ref
// returns the object to the pool (after calling the recycler, e.g. Buffer::Clear).
// Acquire() blocks when the pool is exhausted — together with bounded queues this is
// what caps Persona's memory footprint ("memory use is stable after the input queues
// are filled").

#ifndef PERSONA_SRC_DATAFLOW_OBJECT_POOL_H_
#define PERSONA_SRC_DATAFLOW_OBJECT_POOL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/util/mutex.h"

namespace persona::dataflow {

using persona::CondVar;
using persona::Mutex;
using persona::MutexLock;

template <typename T>
class ObjectPool : public std::enable_shared_from_this<ObjectPool<T>> {
 public:
  // RAII handle. Movable; returns the object on destruction.
  class Ref {
   public:
    Ref() = default;
    Ref(T* object, std::shared_ptr<ObjectPool> pool)
        : object_(object), pool_(std::move(pool)) {}
    Ref(Ref&& other) noexcept { *this = std::move(other); }
    Ref& operator=(Ref&& other) noexcept {
      Release();
      object_ = other.object_;
      pool_ = std::move(other.pool_);
      other.object_ = nullptr;
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { Release(); }

    T* get() const { return object_; }
    T* operator->() const { return object_; }
    T& operator*() const { return *object_; }
    explicit operator bool() const { return object_ != nullptr; }

   private:
    void Release() {
      if (object_ != nullptr && pool_ != nullptr) {
        pool_->Return(object_);
      }
      object_ = nullptr;
      pool_.reset();
    }

    T* object_ = nullptr;
    std::shared_ptr<ObjectPool> pool_;
  };

  // All `capacity` objects are constructed eagerly by `factory`; `recycler` runs when an
  // object returns to the pool (defaults to no-op).
  static std::shared_ptr<ObjectPool> Create(
      size_t capacity, std::function<std::unique_ptr<T>()> factory,
      std::function<void(T*)> recycler = nullptr) {
    auto pool = std::shared_ptr<ObjectPool>(new ObjectPool(std::move(recycler)));
    pool->objects_.reserve(capacity);
    // No other thread can see the pool yet; the lock just states the invariant.
    MutexLock lock(pool->mu_);
    for (size_t i = 0; i < capacity; ++i) {
      pool->objects_.push_back(factory());
      pool->free_.push_back(pool->objects_.back().get());
    }
    return pool;
  }

  // Blocks until an object is free.
  Ref Acquire() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (free_.empty()) {
      available_.Wait(mu_);
    }
    T* object = free_.back();
    free_.pop_back();
    return Ref(object, this->shared_from_this());
  }

  // Non-blocking; empty Ref when exhausted.
  Ref TryAcquire() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (free_.empty()) {
      return Ref();
    }
    T* object = free_.back();
    free_.pop_back();
    return Ref(object, this->shared_from_this());
  }

  size_t capacity() const { return objects_.size(); }

  size_t available() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return free_.size();
  }

 private:
  explicit ObjectPool(std::function<void(T*)> recycler) : recycler_(std::move(recycler)) {}

  void Return(T* object) EXCLUDES(mu_) {
    if (recycler_) {
      recycler_(object);
    }
    {
      MutexLock lock(mu_);
      free_.push_back(object);
    }
    // Safe to notify unlocked: the calling Ref keeps a shared_ptr to the pool alive for
    // the duration of this call, so the CondVar cannot be destroyed underneath us.
    available_.NotifyOne();
  }

  std::function<void(T*)> recycler_;
  mutable Mutex mu_;
  CondVar available_;
  std::vector<std::unique_ptr<T>> objects_;
  std::vector<T*> free_ GUARDED_BY(mu_);
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_OBJECT_POOL_H_
