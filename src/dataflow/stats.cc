#include "src/dataflow/stats.h"

#include <algorithm>

#include "src/util/stopwatch.h"

namespace persona::dataflow {

UtilizationSampler::UtilizationSampler(const Graph* graph, double interval_sec,
                                       int total_workers)
    : graph_(graph), interval_sec_(interval_sec), total_workers_(total_workers) {}

UtilizationSampler::~UtilizationSampler() { Stop(); }

void UtilizationSampler::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void UtilizationSampler::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void UtilizationSampler::Loop() {
  Stopwatch clock;
  const auto& stages = graph_->stats();
  last_busy_ns_.assign(stages.size(), 0);

  int budget = total_workers_;
  if (budget <= 0) {
    for (const auto& stage : stages) {
      budget += stage->parallelism;
    }
    budget = std::max(budget, 1);
  }

  double last_time = 0;
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_sec_));
    double now = clock.ElapsedSeconds();
    double dt = now - last_time;
    last_time = now;
    if (dt <= 0) {
      continue;
    }

    UtilizationSample sample;
    sample.time_sec = now;
    sample.per_stage.reserve(stages.size());
    double total_busy = 0;
    for (size_t i = 0; i < stages.size(); ++i) {
      uint64_t busy = stages[i]->busy_ns.load(std::memory_order_relaxed);
      double delta_sec = static_cast<double>(busy - last_busy_ns_[i]) * 1e-9;
      last_busy_ns_[i] = busy;
      total_busy += delta_sec;
      double stage_util =
          delta_sec / (dt * std::max(1, stages[i]->parallelism));
      sample.per_stage.push_back(std::min(stage_util, 1.0));
    }
    sample.total_utilization = std::min(total_busy / (dt * budget), 1.0);
    const auto& probes = graph_->queue_probes();
    sample.queue_fill.reserve(probes.size());
    for (const auto& probe : probes) {
      sample.queue_fill.push_back(
          probe.capacity > 0
              ? static_cast<double>(probe.size()) / static_cast<double>(probe.capacity)
              : 0);
    }
    samples_.push_back(std::move(sample));
  }
}

}  // namespace persona::dataflow
