// Work-stealing task pool: the straggler-avoidance alternative Persona rejected.
//
// Paper §4.5: "Work stealing [5] is an alternative to avoid stragglers, but the approach
// of bounding the queues is simpler and incurs less communication in a distributed
// system." This module implements that alternative so the trade-off can be measured
// instead of asserted: per-worker deques, owner pops LIFO from the back, idle workers
// steal FIFO from a victim's front. Steal events are counted — they are the
// "communication" cost the paper refers to.
//
// bench_ablation_scheduler compares three strategies on skewed task costs:
//   1. static partitioning      (no balancing: the straggler baseline)
//   2. shared central queue     (Persona's executor resource, §4.3)
//   3. work stealing            (this pool)

#ifndef PERSONA_SRC_DATAFLOW_WORK_STEALING_H_
#define PERSONA_SRC_DATAFLOW_WORK_STEALING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/mutex.h"

namespace persona::dataflow {

class WorkStealingPool {
 public:
  explicit WorkStealingPool(size_t num_threads);

  // Joins all workers. Pending tasks still run to completion first (drain-on-destroy),
  // so submitted work is never silently dropped.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues `task` on worker `home`'s deque (round-robin when home is negative).
  // Tasks submitted after shutdown began are rejected (returns false).
  [[nodiscard]] bool Submit(std::function<void()> task, int home = -1);

  // Blocks until every task submitted so far has finished executing.
  void Drain();

  // Tasks executed by a worker other than the one they were submitted to.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  // Tasks executed by their home worker.
  uint64_t local_executions() const { return local_.load(std::memory_order_relaxed); }

  // Per-worker executed-task counts (completion-balance diagnostics).
  std::vector<uint64_t> ExecutedPerWorker() const;

 private:
  struct Task {
    std::function<void()> fn;
    int home;
  };

  struct Worker {
    Mutex mu;
    std::deque<Task> deque GUARDED_BY(mu);
    std::atomic<uint64_t> executed{0};
  };

  void WorkerLoop(int self);

  // Pops from `self`'s own deque (back / LIFO); falls back to stealing the front of
  // another worker's deque. Returns false when every deque is empty.
  bool NextTask(int self, Task* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex idle_mu_;
  CondVar work_ready_;
  CondVar drained_;

  std::atomic<uint64_t> next_home_{0};
  std::atomic<int64_t> outstanding_{0};  // submitted but not yet finished
  std::atomic<int64_t> queued_{0};       // sitting in a deque (not yet started)
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> local_{0};
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_WORK_STEALING_H_
