// ResourceManager: named shared resources for a dataflow session (paper §4.5).
//
// Persona stores pools, chunk objects, and shared read-only data (e.g. the reference
// index) as session resources and passes *handles* through the graph instead of
// payloads. Here resources are registered under a name and fetched type-safely.

#ifndef PERSONA_SRC_DATAFLOW_RESOURCE_MANAGER_H_
#define PERSONA_SRC_DATAFLOW_RESOURCE_MANAGER_H_

#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>

#include "src/util/mutex.h"
#include "src/util/result.h"

namespace persona::dataflow {

class ResourceManager {
 public:
  template <typename T>
  [[nodiscard]] Status Register(const std::string& name, std::shared_ptr<T> resource) {
    MutexLock lock(mu_);
    auto [it, inserted] = resources_.try_emplace(
        name, Entry{std::type_index(typeid(T)), std::move(resource)});
    if (!inserted) {
      return AlreadyExistsError("resource already registered: " + name);
    }
    return OkStatus();
  }

  template <typename T>
  Result<std::shared_ptr<T>> Get(const std::string& name) const {
    MutexLock lock(mu_);
    auto it = resources_.find(name);
    if (it == resources_.end()) {
      return NotFoundError("no such resource: " + name);
    }
    if (it->second.type != std::type_index(typeid(T))) {
      return FailedPreconditionError("resource type mismatch for: " + name);
    }
    return std::static_pointer_cast<T>(it->second.value);
  }

  bool Has(const std::string& name) const {
    MutexLock lock(mu_);
    return resources_.contains(name);
  }

  size_t size() const {
    MutexLock lock(mu_);
    return resources_.size();
  }

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> value;
  };

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> resources_ GUARDED_BY(mu_);
};

}  // namespace persona::dataflow

#endif  // PERSONA_SRC_DATAFLOW_RESOURCE_MANAGER_H_
