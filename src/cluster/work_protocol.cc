#include "src/cluster/work_protocol.h"

#include <utility>

namespace persona::cluster {

const char* WorkFrameName(uint8_t type) {
  switch (static_cast<WorkFrame>(type)) {
    case WorkFrame::kRegisterWorker:
      return "RegisterWorker";
    case WorkFrame::kLeaseRequest:
      return "LeaseRequest";
    case WorkFrame::kLeaseComplete:
      return "LeaseComplete";
    case WorkFrame::kLeaseFail:
      return "LeaseFail";
    case WorkFrame::kHeartbeat:
      return "Heartbeat";
    case WorkFrame::kStatsRequest:
      return "StatsRequest";
    case WorkFrame::kRegistered:
      return "Registered";
    case WorkFrame::kLeaseGrant:
      return "LeaseGrant";
    case WorkFrame::kNoWork:
      return "NoWork";
    case WorkFrame::kDrained:
      return "Drained";
    case WorkFrame::kAck:
      return "Ack";
    case WorkFrame::kHeartbeatAck:
      return "HeartbeatAck";
    case WorkFrame::kStatsReply:
      return "StatsReply";
    case WorkFrame::kError:
      return "Error";
  }
  return "Unknown";
}

json::Value StoreStatsToJson(const storage::StoreStats& stats) {
  json::Object object;
  object["bytes_read"] = json::Value(stats.bytes_read);
  object["bytes_written"] = json::Value(stats.bytes_written);
  object["read_ops"] = json::Value(stats.read_ops);
  object["write_ops"] = json::Value(stats.write_ops);
  object["retries"] = json::Value(stats.retries);
  object["give_ups"] = json::Value(stats.give_ups);
  object["cache_hits"] = json::Value(stats.cache_hits);
  object["cache_misses"] = json::Value(stats.cache_misses);
  object["cache_evictions"] = json::Value(stats.cache_evictions);
  object["cache_hit_bytes"] = json::Value(stats.cache_hit_bytes);
  return json::Value(std::move(object));
}

Result<storage::StoreStats> StoreStatsFromJson(const json::Value& value) {
  storage::StoreStats stats;
  PERSONA_ASSIGN_OR_RETURN(int64_t bytes_read, value.GetInt("bytes_read"));
  PERSONA_ASSIGN_OR_RETURN(int64_t bytes_written, value.GetInt("bytes_written"));
  PERSONA_ASSIGN_OR_RETURN(int64_t read_ops, value.GetInt("read_ops"));
  PERSONA_ASSIGN_OR_RETURN(int64_t write_ops, value.GetInt("write_ops"));
  PERSONA_ASSIGN_OR_RETURN(int64_t retries, value.GetInt("retries"));
  PERSONA_ASSIGN_OR_RETURN(int64_t give_ups, value.GetInt("give_ups"));
  PERSONA_ASSIGN_OR_RETURN(int64_t cache_hits, value.GetInt("cache_hits"));
  PERSONA_ASSIGN_OR_RETURN(int64_t cache_misses, value.GetInt("cache_misses"));
  PERSONA_ASSIGN_OR_RETURN(int64_t cache_evictions, value.GetInt("cache_evictions"));
  PERSONA_ASSIGN_OR_RETURN(int64_t cache_hit_bytes, value.GetInt("cache_hit_bytes"));
  stats.bytes_read = static_cast<uint64_t>(bytes_read);
  stats.bytes_written = static_cast<uint64_t>(bytes_written);
  stats.read_ops = static_cast<uint64_t>(read_ops);
  stats.write_ops = static_cast<uint64_t>(write_ops);
  stats.retries = static_cast<uint64_t>(retries);
  stats.give_ups = static_cast<uint64_t>(give_ups);
  stats.cache_hits = static_cast<uint64_t>(cache_hits);
  stats.cache_misses = static_cast<uint64_t>(cache_misses);
  stats.cache_evictions = static_cast<uint64_t>(cache_evictions);
  stats.cache_hit_bytes = static_cast<uint64_t>(cache_hit_bytes);
  return stats;
}

std::string RegisterWorker::ToJson() const {
  json::Object object;
  object["node_name"] = json::Value(node_name);
  object["pid"] = json::Value(pid);
  return json::Value(std::move(object)).Dump();
}

Result<RegisterWorker> RegisterWorker::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  RegisterWorker msg;
  PERSONA_ASSIGN_OR_RETURN(msg.node_name, value.GetString("node_name"));
  PERSONA_ASSIGN_OR_RETURN(msg.pid, value.GetInt("pid"));
  return msg;
}

std::string JobSpec::ToJson() const {
  json::Object object;
  object["tool"] = json::Value(tool);
  object["manifest_key"] = json::Value(manifest_key);
  object["group_size"] = json::Value(group_size);
  object["num_groups"] = json::Value(num_groups);
  object["lease_timeout_sec"] = json::Value(lease_timeout_sec);
  object["heartbeat_interval_sec"] = json::Value(heartbeat_interval_sec);
  object["params"] = json::Value(params);
  return json::Value(std::move(object)).Dump();
}

Result<JobSpec> JobSpec::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  JobSpec spec;
  PERSONA_ASSIGN_OR_RETURN(spec.tool, value.GetString("tool"));
  PERSONA_ASSIGN_OR_RETURN(spec.manifest_key, value.GetString("manifest_key"));
  PERSONA_ASSIGN_OR_RETURN(spec.group_size, value.GetInt("group_size"));
  PERSONA_ASSIGN_OR_RETURN(spec.num_groups, value.GetInt("num_groups"));
  PERSONA_ASSIGN_OR_RETURN(const json::Value* timeout, value.Get("lease_timeout_sec"));
  if (!timeout->is_number()) {
    return InvalidArgumentError("job spec: lease_timeout_sec must be a number");
  }
  spec.lease_timeout_sec = timeout->as_number();
  PERSONA_ASSIGN_OR_RETURN(const json::Value* heartbeat,
                           value.Get("heartbeat_interval_sec"));
  if (!heartbeat->is_number()) {
    return InvalidArgumentError("job spec: heartbeat_interval_sec must be a number");
  }
  spec.heartbeat_interval_sec = heartbeat->as_number();
  PERSONA_ASSIGN_OR_RETURN(const json::Object* params, value.GetObject("params"));
  spec.params = *params;
  return spec;
}

std::string LeaseGrantMsg::ToJson() const {
  json::Object object;
  object["lease_id"] = json::Value(lease_id);
  object["group"] = json::Value(group);
  return json::Value(std::move(object)).Dump();
}

Result<LeaseGrantMsg> LeaseGrantMsg::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  LeaseGrantMsg msg;
  PERSONA_ASSIGN_OR_RETURN(int64_t lease_id, value.GetInt("lease_id"));
  PERSONA_ASSIGN_OR_RETURN(int64_t group, value.GetInt("group"));
  if (lease_id < 0 || group < 0) {
    return InvalidArgumentError("lease grant: negative lease_id or group");
  }
  msg.lease_id = static_cast<uint64_t>(lease_id);
  msg.group = static_cast<uint64_t>(group);
  return msg;
}

std::string LeaseCompleteMsg::ToJson() const {
  json::Object object;
  object["lease_id"] = json::Value(lease_id);
  object["group"] = json::Value(group);
  json::Array key_array;
  key_array.reserve(keys.size());
  for (const std::string& key : keys) {
    key_array.emplace_back(key);
  }
  object["keys"] = json::Value(std::move(key_array));
  object["records"] = json::Value(records);
  object["store"] = StoreStatsToJson(store);
  return json::Value(std::move(object)).Dump();
}

Result<LeaseCompleteMsg> LeaseCompleteMsg::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  LeaseCompleteMsg msg;
  PERSONA_ASSIGN_OR_RETURN(int64_t lease_id, value.GetInt("lease_id"));
  PERSONA_ASSIGN_OR_RETURN(int64_t group, value.GetInt("group"));
  if (lease_id < 0 || group < 0) {
    return InvalidArgumentError("lease complete: negative lease_id or group");
  }
  msg.lease_id = static_cast<uint64_t>(lease_id);
  msg.group = static_cast<uint64_t>(group);
  PERSONA_ASSIGN_OR_RETURN(const json::Array* keys, value.GetArray("keys"));
  for (const json::Value& key : *keys) {
    if (!key.is_string()) {
      return InvalidArgumentError("lease complete: keys must be strings");
    }
    msg.keys.push_back(key.as_string());
  }
  PERSONA_ASSIGN_OR_RETURN(int64_t records, value.GetInt("records"));
  msg.records = static_cast<uint64_t>(records);
  PERSONA_ASSIGN_OR_RETURN(const json::Value* store, value.Get("store"));
  PERSONA_ASSIGN_OR_RETURN(msg.store, StoreStatsFromJson(*store));
  return msg;
}

std::string LeaseFailMsg::ToJson() const {
  json::Object object;
  object["lease_id"] = json::Value(lease_id);
  object["group"] = json::Value(group);
  object["error"] = json::Value(error);
  return json::Value(std::move(object)).Dump();
}

Result<LeaseFailMsg> LeaseFailMsg::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  LeaseFailMsg msg;
  PERSONA_ASSIGN_OR_RETURN(int64_t lease_id, value.GetInt("lease_id"));
  PERSONA_ASSIGN_OR_RETURN(int64_t group, value.GetInt("group"));
  if (lease_id < 0 || group < 0) {
    return InvalidArgumentError("lease fail: negative lease_id or group");
  }
  msg.lease_id = static_cast<uint64_t>(lease_id);
  msg.group = static_cast<uint64_t>(group);
  PERSONA_ASSIGN_OR_RETURN(msg.error, value.GetString("error"));
  return msg;
}

std::string AckMsg::ToJson() const {
  json::Object object;
  object["duplicate"] = json::Value(duplicate);
  object["quarantined"] = json::Value(quarantined);
  return json::Value(std::move(object)).Dump();
}

Result<AckMsg> AckMsg::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  AckMsg msg;
  PERSONA_ASSIGN_OR_RETURN(const json::Value* duplicate, value.Get("duplicate"));
  PERSONA_ASSIGN_OR_RETURN(const json::Value* quarantined, value.Get("quarantined"));
  if (!duplicate->is_bool() || !quarantined->is_bool()) {
    return InvalidArgumentError("ack: duplicate/quarantined must be booleans");
  }
  msg.duplicate = duplicate->as_bool();
  msg.quarantined = quarantined->as_bool();
  return msg;
}

std::string ClusterWorkReport::ToJson() const {
  json::Object object;
  object["num_groups"] = json::Value(num_groups);
  object["completed"] = json::Value(completed);
  object["quarantined"] = json::Value(quarantined);
  object["reissues"] = json::Value(reissues);
  object["expired_reclaims"] = json::Value(expired_reclaims);
  object["duplicate_completions"] = json::Value(duplicate_completions);
  object["drained"] = json::Value(drained);
  object["records"] = json::Value(records);
  object["store"] = StoreStatsToJson(store);
  json::Array worker_array;
  worker_array.reserve(workers.size());
  for (const WorkerReport& worker : workers) {
    json::Object entry;
    entry["node_name"] = json::Value(worker.node_name);
    entry["completed_groups"] = json::Value(worker.completed_groups);
    entry["records"] = json::Value(worker.records);
    entry["store"] = StoreStatsToJson(worker.store);
    worker_array.emplace_back(std::move(entry));
  }
  object["workers"] = json::Value(std::move(worker_array));
  return json::Value(std::move(object)).Dump(2);
}

Result<ClusterWorkReport> ClusterWorkReport::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value value, json::Parse(text));
  ClusterWorkReport report;
  PERSONA_ASSIGN_OR_RETURN(int64_t num_groups, value.GetInt("num_groups"));
  PERSONA_ASSIGN_OR_RETURN(int64_t completed, value.GetInt("completed"));
  PERSONA_ASSIGN_OR_RETURN(int64_t quarantined, value.GetInt("quarantined"));
  PERSONA_ASSIGN_OR_RETURN(int64_t reissues, value.GetInt("reissues"));
  PERSONA_ASSIGN_OR_RETURN(int64_t expired, value.GetInt("expired_reclaims"));
  PERSONA_ASSIGN_OR_RETURN(int64_t duplicates, value.GetInt("duplicate_completions"));
  PERSONA_ASSIGN_OR_RETURN(int64_t records, value.GetInt("records"));
  report.num_groups = static_cast<uint64_t>(num_groups);
  report.completed = static_cast<uint64_t>(completed);
  report.quarantined = static_cast<uint64_t>(quarantined);
  report.reissues = static_cast<uint64_t>(reissues);
  report.expired_reclaims = static_cast<uint64_t>(expired);
  report.duplicate_completions = static_cast<uint64_t>(duplicates);
  report.records = static_cast<uint64_t>(records);
  PERSONA_ASSIGN_OR_RETURN(const json::Value* drained, value.Get("drained"));
  if (!drained->is_bool()) {
    return InvalidArgumentError("cluster report: drained must be a boolean");
  }
  report.drained = drained->as_bool();
  PERSONA_ASSIGN_OR_RETURN(const json::Value* store, value.Get("store"));
  PERSONA_ASSIGN_OR_RETURN(report.store, StoreStatsFromJson(*store));
  PERSONA_ASSIGN_OR_RETURN(const json::Array* workers, value.GetArray("workers"));
  for (const json::Value& entry : *workers) {
    WorkerReport worker;
    PERSONA_ASSIGN_OR_RETURN(worker.node_name, entry.GetString("node_name"));
    PERSONA_ASSIGN_OR_RETURN(int64_t worker_completed, entry.GetInt("completed_groups"));
    PERSONA_ASSIGN_OR_RETURN(int64_t worker_records, entry.GetInt("records"));
    worker.completed_groups = static_cast<uint64_t>(worker_completed);
    worker.records = static_cast<uint64_t>(worker_records);
    PERSONA_ASSIGN_OR_RETURN(const json::Value* worker_store, entry.Get("store"));
    PERSONA_ASSIGN_OR_RETURN(worker.store, StoreStatsFromJson(*worker_store));
    report.workers.push_back(std::move(worker));
  }
  return report;
}

}  // namespace persona::cluster
