#include "src/cluster/cluster_runner.h"

#include <algorithm>
#include <thread>

#include "src/cluster/manifest_server.h"
#include "src/util/first_error.h"
#include "src/util/mutex.h"
#include "src/util/stopwatch.h"

namespace persona::cluster {

double ClusterReport::imbalance() const {
  if (node_seconds.empty()) {
    return 0;
  }
  double max_s = *std::max_element(node_seconds.begin(), node_seconds.end());
  double min_s = *std::min_element(node_seconds.begin(), node_seconds.end());
  return max_s > 0 ? (max_s - min_s) / max_s : 0;
}

Result<ClusterReport> RunCluster(storage::ObjectStore* store,
                                 const format::Manifest& manifest,
                                 const align::Aligner& aligner,
                                 const ClusterOptions& options) {
  if (options.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  ManifestServer server(manifest.chunks.size(), static_cast<size_t>(options.num_nodes));

  ClusterReport report;
  report.node_seconds.assign(static_cast<size_t>(options.num_nodes), 0);
  Mutex report_mu;
  FirstErrorCollector errors;

  const storage::StoreStats store_before = store->stats();
  Stopwatch cluster_timer;
  std::vector<std::thread> nodes;
  nodes.reserve(static_cast<size_t>(options.num_nodes));
  for (int node = 0; node < options.num_nodes; ++node) {
    nodes.emplace_back([&, node] {
      // Each node owns its executor resource, as each server owns its cores.
      dataflow::Executor executor(static_cast<size_t>(options.threads_per_node));
      pipeline::AlignPipelineOptions node_options = options.node_options;
      pipeline::FunctionWorkSource node_source(
          [&server, node]() { return server.Next(static_cast<size_t>(node)); });
      node_options.work_source = &node_source;
      Stopwatch node_timer;
      auto result = pipeline::RunPersonaAlignment(store, manifest, aligner, &executor,
                                                  node_options);
      double seconds = node_timer.ElapsedSeconds();
      MutexLock lock(report_mu);
      report.node_seconds[static_cast<size_t>(node)] = seconds;
      if (!result.ok()) {
        errors.Record(result.status());
        return;
      }
      report.total_reads += result->reads;
      report.total_bases += result->bases;
    });
  }
  for (std::thread& t : nodes) {
    t.join();
  }
  PERSONA_RETURN_IF_ERROR(errors.first());

  report.seconds = cluster_timer.ElapsedSeconds();
  report.gigabases_per_sec =
      report.seconds > 0 ? static_cast<double>(report.total_bases) / 1e9 / report.seconds
                         : 0;
  report.node_chunks = server.per_node_chunks();
  report.store_stats = storage::StatsDelta(store_before, store->stats());
  report.store_read_mb_per_sec =
      report.seconds > 0
          ? static_cast<double>(report.store_stats.bytes_read) / 1e6 / report.seconds
          : 0;
  return report;
}

}  // namespace persona::cluster
