// Wire protocol for the distributed work service (paper §5.2's manifest server as a
// real network daemon). Frames ride the same length-prefixed layout as the ingest
// protocol (src/ingest/wire.h: type u8 | payload u32 LE | payload) via the shared
// Read/WriteRawFrame core; payloads are JSON, matching AGD's "simple JSON files"
// manifest culture — the messages are small and on-wire debuggability beats the few
// bytes a binary encoding would save.
//
// Session shape (client = persona_node worker, server = WorkService):
//
//   worker                              service
//     kRegisterWorker {name, pid}  ->
//                                  <-   kRegistered {job spec JSON}
//     kLeaseRequest                ->
//                                  <-   kLeaseGrant {lease_id, group} | kNoWork | kDrained
//     ... process group ...
//     kLeaseComplete {result}      ->
//                                  <-   kAck {duplicate}
//     kLeaseFail {error}           ->
//                                  <-   kAck {quarantined}
//     kHeartbeat                   ->   (renews every lease the worker holds)
//                                  <-   kHeartbeatAck
//     kStatsRequest                ->
//                                  <-   kStatsReply {cluster report JSON}
//
// Any malformed frame gets kError {message} and the connection is closed: a worker
// speaking garbage cannot be trusted with leases.

#ifndef PERSONA_SRC_CLUSTER_WORK_PROTOCOL_H_
#define PERSONA_SRC_CLUSTER_WORK_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/storage/object_store.h"
#include "src/util/json.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace persona::cluster {

// Work-service frame types. Disjoint from ingest::FrameType only by convention (the
// two protocols run on different ports); the 1..15 / 16..31 split mirrors ingest's
// client/server ranges.
enum class WorkFrame : uint8_t {
  // worker -> service
  kRegisterWorker = 1,
  kLeaseRequest = 2,
  kLeaseComplete = 3,
  kLeaseFail = 4,
  kHeartbeat = 5,
  kStatsRequest = 6,
  // service -> worker
  kRegistered = 16,
  kLeaseGrant = 17,
  kNoWork = 18,   // nothing pending now; leases elsewhere may expire — poll again
  kDrained = 19,  // every group settled; worker should exit its loop
  kAck = 20,      // reply to kLeaseComplete / kLeaseFail
  kHeartbeatAck = 21,
  kStatsReply = 22,
  kError = 23,  // protocol violation; connection closes after this frame
};

const char* WorkFrameName(uint8_t type);

// What a worker announces at connect time.
struct RegisterWorker {
  std::string node_name;
  int64_t pid = 0;

  std::string ToJson() const;
  static Result<RegisterWorker> FromJson(std::string_view text);
};

// The job the service is coordinating, sent back in kRegistered. Workers are thin:
// everything they need to build their local pipeline — which tool, how chunks are
// grouped, and tool parameters — comes from here, so starting a different job is a
// service-side change only.
struct JobSpec {
  std::string tool;  // "align" | "recompress" | "reconstruct" | "sort1"
  std::string manifest_key = "manifest.json";  // dataset manifest in the shared store
  int64_t group_size = 1;                      // chunks per work group
  int64_t num_groups = 0;
  double lease_timeout_sec = 30;
  double heartbeat_interval_sec = 5;
  // Tool-specific knobs (codec name, sort out_name, synthetic-genome seed, ...).
  json::Object params;

  std::string ToJson() const;
  static Result<JobSpec> FromJson(std::string_view text);
};

// kLeaseGrant payload.
struct LeaseGrantMsg {
  uint64_t lease_id = 0;
  uint64_t group = 0;

  std::string ToJson() const;
  static Result<LeaseGrantMsg> FromJson(std::string_view text);
};

// kLeaseComplete payload: proof-of-work metadata for one finished group. `keys` are
// the store objects the worker made durable before reporting (completion is only sent
// after the pipeline's write window landed them). `store` is the worker-side
// StoreStats delta attributed to this lease, for cluster-wide I/O accounting.
struct LeaseCompleteMsg {
  uint64_t lease_id = 0;
  uint64_t group = 0;
  std::vector<std::string> keys;
  uint64_t records = 0;
  storage::StoreStats store;

  std::string ToJson() const;
  static Result<LeaseCompleteMsg> FromJson(std::string_view text);
};

// kLeaseFail payload.
struct LeaseFailMsg {
  uint64_t lease_id = 0;
  uint64_t group = 0;
  std::string error;

  std::string ToJson() const;
  static Result<LeaseFailMsg> FromJson(std::string_view text);
};

// kAck payload.
struct AckMsg {
  bool duplicate = false;     // completion was for an already-completed group
  bool quarantined = false;   // this failure exhausted the group's attempt budget

  std::string ToJson() const;
  static Result<AckMsg> FromJson(std::string_view text);
};

// Per-worker slice of the cluster report.
struct WorkerReport {
  std::string node_name;
  uint64_t completed_groups = 0;
  uint64_t records = 0;
  storage::StoreStats store;
};

// Cluster-wide aggregate the service maintains from workers' completion reports
// (kStatsReply payload, and WorkService::Report()).
struct ClusterWorkReport {
  uint64_t num_groups = 0;
  uint64_t completed = 0;
  uint64_t quarantined = 0;
  uint64_t reissues = 0;
  uint64_t expired_reclaims = 0;
  uint64_t duplicate_completions = 0;
  bool drained = false;
  uint64_t records = 0;        // sum of first-completion record counts
  storage::StoreStats store;   // sum of first-completion store deltas
  std::vector<WorkerReport> workers;

  std::string ToJson() const;
  static Result<ClusterWorkReport> FromJson(std::string_view text);
};

// StoreStats <-> JSON, shared by the messages above.
json::Value StoreStatsToJson(const storage::StoreStats& stats);
Result<storage::StoreStats> StoreStatsFromJson(const json::Value& value);

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_WORK_PROTOCOL_H_
