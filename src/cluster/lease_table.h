// LeaseTable: the work service's chunk-handout ledger (paper §5.2's manifest server,
// grown fault tolerance). Every work group (one or more consecutive AGD chunks) moves
// through pending -> leased -> completed; a lease that is not completed, failed, or
// renewed before its expiry is reclaimed and re-issued to another node, and a group
// that keeps failing is quarantined after `max_attempts` hand-outs.
//
// Completion is keyed by group, not by lease: a slow worker whose lease expired may
// still land its output after the re-issued lease does. Both workers produced the
// same bytes under the same key (every tool here is deterministic), so the late
// completion is acknowledged as a duplicate and the counters stay consistent — the
// store holds one object either way.
//
// One mutex covers the whole table: hand-out, accounting, and expiry reclaim are a
// single atomic step, so a grant can never be observed without its bookkeeping (the
// old ManifestServer stub bumped its per-node counter in a second critical section).
//
// Time is injected (`now` in seconds, any monotonic base) so expiry tests are
// deterministic and need no sleeps.

#ifndef PERSONA_SRC_CLUSTER_LEASE_TABLE_H_
#define PERSONA_SRC_CLUSTER_LEASE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"

namespace persona::cluster {

using persona::Mutex;
using persona::MutexLock;

struct LeaseTableOptions {
  // Seconds a lease may go without completion/failure/renewal before it is reclaimed.
  // <= 0 disables expiry (leases live until the node completes, fails, or disconnects).
  double lease_timeout_sec = 30;
  // Hand-outs a group gets before it is quarantined as poisoned. Counts every grant,
  // including re-issues after expiry, so a chunk that crashes its worker cannot
  // ping-pong around the cluster forever.
  int max_attempts = 3;
};

// One granted lease: the group to process and the id to report back with.
struct LeaseGrant {
  uint64_t lease_id = 0;
  size_t group = 0;
};

// What happened to a completion report.
enum class CompleteOutcome {
  kFirst,      // first completion of this group; counted
  kDuplicate,  // group already completed (stale lease or retry); output identical, deduped
  kUnknown,    // group index out of range — protocol violation
};

// Snapshot of the table's counters (all monotonic except outstanding).
struct LeaseTableStats {
  size_t num_groups = 0;
  size_t completed = 0;
  size_t quarantined = 0;
  size_t outstanding = 0;            // currently leased
  uint64_t reissues = 0;             // grants beyond a group's first
  uint64_t expired_reclaims = 0;     // leases reclaimed by the expiry sweep
  uint64_t duplicate_completions = 0;
  std::vector<uint64_t> per_node_completed;
};

// A permanently failed group, for the quarantine manifest.
struct QuarantinedGroup {
  size_t group = 0;
  int attempts = 0;
  std::string last_error;
};

class LeaseTable {
 public:
  LeaseTable(size_t num_groups, size_t num_nodes, const LeaseTableOptions& options);

  // Grants the next available group to `node` (reclaiming expired leases first), or
  // nullopt when nothing is pending right now. Distinguish "drained" (all groups
  // settled — stop asking) from "try again later" (groups leased elsewhere may yet
  // expire or fail) via drained().
  std::optional<LeaseGrant> Acquire(size_t node, double now) EXCLUDES(mu_);

  // Records `node` finishing `group`. Accepts completions from expired or superseded
  // leases (see file comment); `lease_id` is used only for logging mismatches.
  CompleteOutcome Complete(size_t node, uint64_t lease_id, size_t group) EXCLUDES(mu_);

  // Records `node` failing `group`: back to pending for another node, or quarantined
  // once the attempt budget is spent. Returns true when this failure quarantined the
  // group. Failures for already-completed groups are ignored.
  bool Fail(size_t node, uint64_t lease_id, size_t group, const std::string& error)
      EXCLUDES(mu_);

  // Extends every live lease held by `node` (heartbeat).
  void Renew(size_t node, double now) EXCLUDES(mu_);

  // Returns every leased group held by `node` to pending (worker disconnected).
  // Returns how many leases were released.
  size_t ReleaseNode(size_t node) EXCLUDES(mu_);

  // Reclaims every lease whose deadline has passed. Returns how many were reclaimed.
  size_t ReapExpired(double now) EXCLUDES(mu_);

  // All groups settled (completed or quarantined)?
  bool drained() const EXCLUDES(mu_);

  LeaseTableStats stats() const EXCLUDES(mu_);
  std::vector<QuarantinedGroup> quarantined_groups() const EXCLUDES(mu_);

  // Acquire + immediate Complete in one critical section, for in-process nodes that
  // process a group to durability before asking for the next (the ManifestServer
  // compatibility path). Returns the completed group.
  std::optional<size_t> AcquireCompleted(size_t node) EXCLUDES(mu_);

  size_t num_groups() const { return slots_.size(); }

 private:
  enum class State : uint8_t { kPending, kLeased, kCompleted, kQuarantined };

  struct Slot {
    State state = State::kPending;
    size_t holder = 0;        // node holding the lease (kLeased only)
    uint64_t lease_id = 0;    // current/most recent lease
    double deadline = 0;      // expiry (kLeased only; ignored when timeout disabled)
    int attempts = 0;         // grants so far
    std::string last_error;   // most recent failure message
  };

  // Reclaims expired leases; caller holds mu_. Returns number reclaimed.
  size_t ReapExpiredLocked(double now) REQUIRES(mu_);
  // Bumps node's completion counter, growing the vector for nodes registered after
  // construction (the network service learns its worker count as workers connect).
  void CountCompletionLocked(size_t node) REQUIRES(mu_);

  const LeaseTableOptions options_;

  mutable Mutex mu_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  // Pending scan cursor: groups are handed out roughly in order; reclaimed groups
  // rewind it so they are re-issued promptly.
  size_t scan_ GUARDED_BY(mu_) = 0;
  uint64_t next_lease_id_ GUARDED_BY(mu_) = 1;
  size_t completed_ GUARDED_BY(mu_) = 0;
  size_t quarantined_ GUARDED_BY(mu_) = 0;
  size_t outstanding_ GUARDED_BY(mu_) = 0;
  uint64_t reissues_ GUARDED_BY(mu_) = 0;
  uint64_t expired_reclaims_ GUARDED_BY(mu_) = 0;
  uint64_t duplicate_completions_ GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> per_node_completed_ GUARDED_BY(mu_);
};

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_LEASE_TABLE_H_
