// In-process multi-node cluster runner (the "Actual" line of Fig. 7).
//
// Each "node" is a full Persona pipeline instance (reader/parser/aligner/writer graph +
// its own executor resource) sharing one object store and one manifest server, exactly
// the paper's §5.2 deployment shape with TensorFlow instances replaced by Graph
// instances. Nodes run concurrently in one process; per-node completion times expose
// straggler behaviour.

#ifndef PERSONA_SRC_CLUSTER_CLUSTER_RUNNER_H_
#define PERSONA_SRC_CLUSTER_CLUSTER_RUNNER_H_

#include <vector>

#include "src/align/aligner.h"
#include "src/format/agd_manifest.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/object_store.h"

namespace persona::cluster {

struct ClusterOptions {
  int num_nodes = 4;
  int threads_per_node = 2;            // executor threads per node
  pipeline::AlignPipelineOptions node_options;  // per-node pipeline shape
};

struct ClusterReport {
  double seconds = 0;                  // start of request to last node finished
  uint64_t total_reads = 0;
  uint64_t total_bases = 0;
  double gigabases_per_sec = 0;
  std::vector<double> node_seconds;    // per-node completion times
  std::vector<uint64_t> node_chunks;   // chunks each node processed
  // Shared-store I/O for the whole run (all nodes' batched column fetches + result
  // writes): shows whether aggregate store bandwidth kept up with compute (Fig. 7).
  storage::StoreStats store_stats;
  double store_read_mb_per_sec = 0;
  // Completion-time imbalance: (max - min) / max across nodes.
  double imbalance() const;
};

// Aligns the dataset across `options.num_nodes` concurrent Persona instances.
Result<ClusterReport> RunCluster(storage::ObjectStore* store,
                                 const format::Manifest& manifest,
                                 const align::Aligner& aligner,
                                 const ClusterOptions& options);

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_CLUSTER_RUNNER_H_
