#include "src/cluster/des_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/rng.h"

namespace persona::cluster {

namespace {

// Per-node three-stage pipeline state. Each node overlaps one read, one align, and one
// write (Persona hides I/O behind compute), with 1-deep hand-off slots between stages.
struct NodeState {
  // Active work; negative remaining = idle.
  double read_remaining_mb = -1;
  double align_remaining_sec = -1;
  double write_remaining_mb = -1;
  // Hand-off slots.
  bool chunk_ready_to_align = false;
  bool chunk_ready_to_write = false;
  // Aligner blocked on a full write slot (holds its finished chunk).
  bool align_output_pending = false;
};

}  // namespace

DesPoint SimulateCluster(const DesParams& params, int nodes) {
  Rng rng(params.seed + static_cast<uint64_t>(nodes) * 7919);

  const double align_mean_sec =
      static_cast<double>(params.reads_per_chunk) * params.read_length /
      (params.node_megabases_per_sec * 1e6);
  auto sample_align = [&]() {
    double t = rng.Normal(align_mean_sec, params.align_time_cv * align_mean_sec);
    return std::max(t, align_mean_sec * 0.25);
  };

  const double read_cap_mb = params.read_capacity_gb_per_sec * 1000.0;
  const double write_cap_mb = params.write_capacity_gb_per_sec * 1000.0;

  std::vector<NodeState> state(static_cast<size_t>(nodes));
  int64_t dispensed = 0;
  int64_t completed = 0;
  double now = 0;
  double read_mb_done = 0;
  double write_mb_done = 0;

  while (completed < params.num_chunks) {
    // 1. Start whatever can start, cascading until a fixpoint so that a freed slot is
    // reused within the same instant (e.g. aligner consumes -> reader restarts).
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeState& n : state) {
        if (n.write_remaining_mb < 0 && n.chunk_ready_to_write) {
          n.chunk_ready_to_write = false;
          // Replication amplifies the device-side write volume.
          n.write_remaining_mb = params.chunk_write_mb * params.replication;
          changed = true;
        }
        // Unblock an aligner whose output slot freed up.
        if (n.align_output_pending && !n.chunk_ready_to_write) {
          n.align_output_pending = false;
          n.chunk_ready_to_write = true;
          changed = true;
        }
        if (n.align_remaining_sec < 0 && !n.align_output_pending &&
            n.chunk_ready_to_align) {
          n.chunk_ready_to_align = false;
          n.align_remaining_sec = sample_align();
          changed = true;
        }
        if (n.read_remaining_mb < 0 && !n.chunk_ready_to_align &&
            dispensed < params.num_chunks) {
          n.read_remaining_mb = params.chunk_read_mb;
          ++dispensed;
          changed = true;
        }
      }
    }

    // 2. Processor-sharing rates.
    int active_readers = 0;
    int active_writers = 0;
    for (const NodeState& n : state) {
      active_readers += n.read_remaining_mb >= 0 ? 1 : 0;
      active_writers += n.write_remaining_mb >= 0 ? 1 : 0;
    }
    double read_rate = active_readers > 0 ? read_cap_mb / active_readers : 0;
    double write_rate = active_writers > 0 ? write_cap_mb / active_writers : 0;

    // 3. Time to the next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (const NodeState& n : state) {
      if (n.read_remaining_mb >= 0 && read_rate > 0) {
        dt = std::min(dt, n.read_remaining_mb / read_rate);
      }
      if (n.align_remaining_sec >= 0) {
        dt = std::min(dt, n.align_remaining_sec);
      }
      if (n.write_remaining_mb >= 0 && write_rate > 0) {
        dt = std::min(dt, n.write_remaining_mb / write_rate);
      }
    }
    if (!std::isfinite(dt)) {
      break;  // nothing active and nothing startable: deadlock guard
    }
    now += dt;

    // 4. Advance and retire completed activities.
    constexpr double kEps = 1e-9;
    for (NodeState& n : state) {
      if (n.read_remaining_mb >= 0) {
        n.read_remaining_mb -= read_rate * dt;
        read_mb_done += read_rate * dt;
        if (n.read_remaining_mb <= kEps) {
          n.read_remaining_mb = -1;
          n.chunk_ready_to_align = true;
        }
      }
      if (n.align_remaining_sec >= 0) {
        n.align_remaining_sec -= dt;
        if (n.align_remaining_sec <= kEps) {
          n.align_remaining_sec = -1;
          if (!n.chunk_ready_to_write) {
            n.chunk_ready_to_write = true;
          } else {
            n.align_output_pending = true;  // write slot full: aligner stalls
          }
        }
      }
      if (n.write_remaining_mb >= 0) {
        n.write_remaining_mb -= write_rate * dt;
        write_mb_done += write_rate * dt;
        if (n.write_remaining_mb <= kEps) {
          n.write_remaining_mb = -1;
          ++completed;
        }
      }
    }
  }

  DesPoint point;
  point.nodes = nodes;
  point.seconds = now;
  double total_bases =
      static_cast<double>(params.num_chunks) * params.reads_per_chunk * params.read_length;
  point.gigabases_per_sec = now > 0 ? total_bases / 1e9 / now : 0;
  point.read_utilization = now > 0 ? read_mb_done / (read_cap_mb * now) : 0;
  point.write_utilization = now > 0 ? write_mb_done / (write_cap_mb * now) : 0;
  return point;
}

std::vector<DesPoint> SimulateScaling(const DesParams& params,
                                      const std::vector<int>& node_counts) {
  std::vector<DesPoint> points;
  points.reserve(node_counts.size());
  for (int nodes : node_counts) {
    points.push_back(SimulateCluster(params, nodes));
  }
  return points;
}

}  // namespace persona::cluster
