#include "src/cluster/work_service.h"

#include <chrono>
#include <utility>

#include "src/ingest/wire.h"
#include "src/pipeline/quarantine.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace persona::cluster {
namespace {

using ingest::Connection;
using ingest::RawFrame;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-effort reply: by the time a reply fails the worker is gone and the session
// loop will notice on its next read; losing the reply itself is not an error.
void WriteFrameBestEffort(Connection& conn, WorkFrame type, std::string_view payload) {
  Status status = ingest::WriteRawFrame(conn, static_cast<uint8_t>(type), payload);
  if (!status.ok()) {
    PLOG(DEBUG) << "work service: dropping " << WorkFrameName(static_cast<uint8_t>(type))
                << " reply: " << status.ToString();
  }
}

}  // namespace

Result<std::unique_ptr<WorkService>> WorkService::Start(
    const WorkServiceOptions& options) {
  if (options.job.num_groups <= 0) {
    return InvalidArgumentError("work service: job.num_groups must be positive");
  }
  if (options.job.group_size <= 0) {
    return InvalidArgumentError("work service: job.group_size must be positive");
  }
  if (options.job.tool.empty()) {
    return InvalidArgumentError("work service: job.tool must be set");
  }
  PERSONA_ASSIGN_OR_RETURN(std::unique_ptr<ingest::SocketServer> server,
                           ingest::SocketServer::Listen(options.port));
  std::unique_ptr<WorkService> service(new WorkService(options, std::move(server)));
  service->accept_thread_ = std::thread([raw = service.get()] { raw->AcceptLoop(); });
  service->sweep_thread_ = std::thread([raw = service.get()] { raw->SweepLoop(); });
  PLOG(INFO) << "work service for '" << options.job.tool << "' listening on port "
             << service->port() << " (" << options.job.num_groups << " group(s) of "
             << options.job.group_size << ")";
  return service;
}

WorkService::~WorkService() { ForceShutdown(); }

void WorkService::AcceptLoop() {
  for (;;) {
    Result<Connection> conn = server_->Accept();
    if (!conn.ok()) {
      if (conn.status().code() != StatusCode::kCancelled) {
        PLOG(ERROR) << "work service: accept failed: " << conn.status().ToString();
      }
      return;
    }
    auto moved = std::make_shared<Connection>(std::move(*conn));
    MutexLock lock(mu_);
    ReapFinishedLocked();
    SessionThread entry;
    entry.done = std::make_shared<std::atomic<bool>>(false);
    try {
      entry.thread = std::thread([this, done = entry.done, moved] {
        RunSession(std::move(*moved));
        done->store(true, std::memory_order_release);
      });
    } catch (const std::system_error&) {
      // Refuse one worker on thread exhaustion instead of killing the service.
      WriteFrameBestEffort(*moved, WorkFrame::kError,
                           "server cannot start a session thread");
      continue;
    }
    session_threads_.push_back(std::move(entry));
  }
}

void WorkService::ReapFinishedLocked() {
  for (auto it = session_threads_.begin(); it != session_threads_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = session_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkService::RunSession(Connection conn_in) {
  auto conn = std::make_shared<Connection>(std::move(conn_in));
  live_conns_.Add(conn);

  // Handshake: the first frame must be RegisterWorker, within the deadline.
  size_t node = 0;
  {
    Status status = conn->SetRecvTimeout(options_.handshake_timeout_sec);
    RawFrame frame;
    if (status.ok()) {
      status = ingest::ReadRawFrame(*conn, &frame);
    }
    if (status.ok() &&
        frame.type != static_cast<uint8_t>(WorkFrame::kRegisterWorker)) {
      status = InvalidArgumentError(
          StrFormat("expected RegisterWorker, got %s (type %u)",
                    WorkFrameName(frame.type), frame.type));
    }
    Result<RegisterWorker> reg = status.ok()
                                     ? RegisterWorker::FromJson(frame.payload)
                                     : Result<RegisterWorker>(status);
    if (!reg.ok()) {
      PLOG(WARN) << "work service: rejecting connection: " << reg.status().ToString();
      WriteFrameBestEffort(*conn, WorkFrame::kError, reg.status().ToString());
      live_conns_.Remove(conn.get());
      conn->Close();
      return;
    }
    {
      MutexLock lock(mu_);
      node = workers_.size();
      workers_.push_back({reg->node_name, reg->pid, 0, {}});
    }
    PLOG(INFO) << "work service: node " << node << " ('" << reg->node_name << "', pid "
               << reg->pid << ") registered";
    WriteFrameBestEffort(*conn, WorkFrame::kRegistered, options_.job.ToJson());
  }
  // Request loop: workers poll on their own cadence, so no read deadline — a wedged
  // worker's leases are reclaimed by the sweeper, and disconnect ends the session.
  if (Status status = conn->SetRecvTimeout(0); !status.ok()) {
    PLOG(WARN) << "work service: node " << node
               << ": clearing recv timeout failed: " << status.ToString();
  }
  ServeWorker(conn, node);

  const size_t released = table_.ReleaseNode(node);
  if (released > 0) {
    PLOG(WARN) << "work service: node " << node << " disconnected holding " << released
               << " lease(s); returned to pending";
    NotifyProgress();  // wake pollers blocked on drained-state changes
  }
  live_conns_.Remove(conn.get());
  conn->Close();
}

void WorkService::ServeWorker(const std::shared_ptr<Connection>& conn, size_t node) {
  for (;;) {
    RawFrame frame;
    if (Status status = ingest::ReadRawFrame(*conn, &frame); !status.ok()) {
      if (status.code() != StatusCode::kOutOfRange) {
        PLOG(WARN) << "work service: node " << node
                   << " session read failed: " << status.ToString();
      }
      return;
    }
    switch (static_cast<WorkFrame>(frame.type)) {
      case WorkFrame::kLeaseRequest: {
        std::optional<LeaseGrant> grant = table_.Acquire(node, NowSeconds());
        if (grant.has_value()) {
          LeaseGrantMsg msg;
          msg.lease_id = grant->lease_id;
          msg.group = grant->group;
          WriteFrameBestEffort(*conn, WorkFrame::kLeaseGrant, msg.ToJson());
        } else if (table_.drained()) {
          WriteFrameBestEffort(*conn, WorkFrame::kDrained, "");
        } else {
          WriteFrameBestEffort(*conn, WorkFrame::kNoWork, "");
        }
        break;
      }
      case WorkFrame::kLeaseComplete: {
        Result<LeaseCompleteMsg> msg = LeaseCompleteMsg::FromJson(frame.payload);
        if (!msg.ok()) {
          WriteFrameBestEffort(*conn, WorkFrame::kError, msg.status().ToString());
          return;
        }
        const CompleteOutcome outcome = table_.Complete(
            node, msg->lease_id, static_cast<size_t>(msg->group));
        if (outcome == CompleteOutcome::kUnknown) {
          WriteFrameBestEffort(
              *conn, WorkFrame::kError,
              StrFormat("completion for out-of-range group %llu",
                        static_cast<unsigned long long>(msg->group)));
          return;
        }
        if (outcome == CompleteOutcome::kFirst) {
          MutexLock lock(mu_);
          total_records_ += msg->records;
          total_store_.Accumulate(msg->store);
          if (node < workers_.size()) {
            workers_[node].records += msg->records;
            workers_[node].store.Accumulate(msg->store);
          }
        }
        AckMsg ack;
        ack.duplicate = outcome == CompleteOutcome::kDuplicate;
        WriteFrameBestEffort(*conn, WorkFrame::kAck, ack.ToJson());
        NotifyProgress();
        break;
      }
      case WorkFrame::kLeaseFail: {
        Result<LeaseFailMsg> msg = LeaseFailMsg::FromJson(frame.payload);
        if (!msg.ok()) {
          WriteFrameBestEffort(*conn, WorkFrame::kError, msg.status().ToString());
          return;
        }
        AckMsg ack;
        ack.quarantined = table_.Fail(node, msg->lease_id,
                                      static_cast<size_t>(msg->group), msg->error);
        WriteFrameBestEffort(*conn, WorkFrame::kAck, ack.ToJson());
        NotifyProgress();
        break;
      }
      case WorkFrame::kHeartbeat: {
        table_.Renew(node, NowSeconds());
        WriteFrameBestEffort(*conn, WorkFrame::kHeartbeatAck, "");
        break;
      }
      case WorkFrame::kStatsRequest: {
        WriteFrameBestEffort(*conn, WorkFrame::kStatsReply, Report().ToJson());
        break;
      }
      default: {
        PLOG(WARN) << "work service: node " << node << " sent unexpected "
                   << WorkFrameName(frame.type) << " (type "
                   << static_cast<unsigned>(frame.type) << "); closing";
        WriteFrameBestEffort(*conn, WorkFrame::kError,
                             StrFormat("unexpected frame type %u", frame.type));
        return;
      }
    }
  }
}

void WorkService::SweepLoop() {
  for (;;) {
    {
      MutexLock lock(sweep_mu_);
      if (sweep_stop_) {
        return;
      }
      // Result ignored on purpose: a notify means stop (checked above) and a timeout
      // means sweep — both fall through to the reap.
      if (sweep_cv_.WaitFor(sweep_mu_, options_.sweep_interval_sec) && sweep_stop_) {
        return;
      }
    }
    const size_t reclaimed = table_.ReapExpired(NowSeconds());
    if (reclaimed > 0) {
      NotifyProgress();  // freed groups may unblock kNoWork pollers' drain checks
    }
  }
}

void WorkService::NotifyProgress() {
  MutexLock lock(drain_mu_);
  drain_cv_.NotifyAll();
}

Status WorkService::AwaitDrained(double timeout_sec) {
  const double deadline = timeout_sec > 0 ? NowSeconds() + timeout_sec : 0;
  {
    MutexLock lock(drain_mu_);
    while (!table_.drained()) {
      if (stopping_) {
        return CancelledError("work service shut down before drain");
      }
      const double wait = deadline > 0
                              ? deadline - NowSeconds()
                              : options_.sweep_interval_sec + 1;
      if (deadline > 0 && wait <= 0) {
        return DeadlineExceededError(
            StrFormat("dataset not drained after %.1fs", timeout_sec));
      }
      // Notified on every completion/failure/reclaim; the timeout re-checks the
      // deadline (and, with no deadline, guards against a missed notify).
      if (!drain_cv_.WaitFor(drain_mu_, wait)) {
        continue;
      }
    }
  }
  if (!options_.quarantine_manifest_path.empty()) {
    PERSONA_RETURN_IF_ERROR(WriteQuarantineManifest());
  }
  return OkStatus();
}

Status WorkService::WriteQuarantineManifest() const {
  const std::vector<QuarantinedGroup> groups = table_.quarantined_groups();
  if (groups.empty()) {
    return OkStatus();
  }
  pipeline::QuarantineManifest manifest;
  manifest.dataset = options_.job.manifest_key;
  for (const QuarantinedGroup& group : groups) {
    pipeline::QuarantineManifest::Entry entry;
    entry.group = group.group;
    entry.error = StrFormat("quarantined after %d attempt(s): %s", group.attempts,
                            group.last_error.c_str());
    manifest.entries.push_back(std::move(entry));
  }
  return pipeline::SaveQuarantineManifest(options_.quarantine_manifest_path, manifest);
}

ClusterWorkReport WorkService::Report() const {
  const LeaseTableStats stats = table_.stats();
  ClusterWorkReport report;
  report.num_groups = stats.num_groups;
  report.completed = stats.completed;
  report.quarantined = stats.quarantined;
  report.reissues = stats.reissues;
  report.expired_reclaims = stats.expired_reclaims;
  report.duplicate_completions = stats.duplicate_completions;
  report.drained = stats.completed + stats.quarantined == stats.num_groups;
  MutexLock lock(mu_);
  report.records = total_records_;
  report.store = total_store_;
  for (size_t node = 0; node < workers_.size(); ++node) {
    WorkerReport worker;
    worker.node_name = workers_[node].node_name;
    worker.completed_groups = node < stats.per_node_completed.size()
                                  ? stats.per_node_completed[node]
                                  : 0;
    worker.records = workers_[node].records;
    worker.store = workers_[node].store;
    report.workers.push_back(std::move(worker));
  }
  return report;
}

void WorkService::Shutdown() {
  {
    MutexLock lock(drain_mu_);
    stopping_ = true;
    drain_cv_.NotifyAll();
  }
  {
    MutexLock lock(sweep_mu_);
    sweep_stop_ = true;
    sweep_cv_.NotifyAll();
  }
  server_->Shutdown();
  MutexLock lock(shutdown_mu_);
  if (shut_down_.exchange(true)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (sweep_thread_.joinable()) {
    sweep_thread_.join();
  }
  // Collect session threads; they end when their worker disconnects.
  for (;;) {
    std::vector<SessionThread> threads;
    {
      MutexLock sessions(mu_);
      threads.swap(session_threads_);
    }
    if (threads.empty()) {
      return;
    }
    for (SessionThread& entry : threads) {
      entry.thread.join();
    }
  }
}

void WorkService::ForceShutdown() {
  server_->Shutdown();
  const size_t aborted = live_conns_.AbortAll();
  if (aborted > 0) {
    PLOG(INFO) << "work service force shutdown: aborted " << aborted
               << " live worker socket(s)";
  }
  Shutdown();
}

}  // namespace persona::cluster
