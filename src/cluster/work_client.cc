#include "src/cluster/work_client.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace persona::cluster {

Result<std::unique_ptr<WorkClient>> WorkClient::Connect(
    const WorkClientOptions& options) {
  PERSONA_ASSIGN_OR_RETURN(ingest::Connection conn,
                           ingest::ConnectLoopback(options.port));
  RegisterWorker reg;
  reg.node_name = options.node_name.empty() ? "worker" : options.node_name;
  reg.pid = static_cast<int64_t>(::getpid());
  PERSONA_RETURN_IF_ERROR(ingest::WriteRawFrame(
      conn, static_cast<uint8_t>(WorkFrame::kRegisterWorker), reg.ToJson()));
  ingest::RawFrame frame;
  PERSONA_RETURN_IF_ERROR(ingest::ReadRawFrame(conn, &frame));
  if (frame.type == static_cast<uint8_t>(WorkFrame::kError)) {
    return UnavailableError(
        StrFormat("work service rejected registration: %s", frame.payload.c_str()));
  }
  if (frame.type != static_cast<uint8_t>(WorkFrame::kRegistered)) {
    return InvalidArgumentError(StrFormat("expected Registered, got %s",
                                          WorkFrameName(frame.type)));
  }
  PERSONA_ASSIGN_OR_RETURN(JobSpec job, JobSpec::FromJson(frame.payload));
  std::unique_ptr<WorkClient> client(
      new WorkClient(options, std::move(conn), std::move(job)));
  client->heartbeat_ = std::thread([raw = client.get()] { raw->HeartbeatLoop(); });
  return client;
}

WorkClient::~WorkClient() { Close(); }

void WorkClient::Close() {
  {
    MutexLock lock(stop_mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
    stop_cv_.NotifyAll();
  }
  if (heartbeat_.joinable()) {
    heartbeat_.join();
  }
  MutexLock lock(conn_mu_);
  closed_ = true;
  conn_.Close();
}

Result<ingest::RawFrame> WorkClient::Transact(WorkFrame type, std::string_view payload) {
  MutexLock lock(conn_mu_);
  if (closed_) {
    return CancelledError("work client closed");
  }
  PLOG(DEBUG) << "work client: -> " << WorkFrameName(static_cast<uint8_t>(type));
  PERSONA_RETURN_IF_ERROR(
      ingest::WriteRawFrame(conn_, static_cast<uint8_t>(type), payload));
  ingest::RawFrame reply;
  PERSONA_RETURN_IF_ERROR(ingest::ReadRawFrame(conn_, &reply));
  PLOG(DEBUG) << "work client: <- " << WorkFrameName(reply.type);
  if (reply.type == static_cast<uint8_t>(WorkFrame::kError)) {
    return UnavailableError(
        StrFormat("work service error: %s", reply.payload.c_str()));
  }
  return reply;
}

void WorkClient::HeartbeatLoop() {
  const double interval = options_.heartbeat_interval_sec > 0
                              ? options_.heartbeat_interval_sec
                              : job_.heartbeat_interval_sec;
  if (interval <= 0) {
    return;  // heartbeats disabled; leases live on the service's timeout alone
  }
  for (;;) {
    {
      MutexLock lock(stop_mu_);
      if (stop_) {
        return;
      }
      if (stop_cv_.WaitFor(stop_mu_, interval) && stop_) {
        return;
      }
    }
    Result<ingest::RawFrame> reply = Transact(WorkFrame::kHeartbeat, "");
    if (!reply.ok()) {
      // The next real request will surface the failure with context; heartbeats are
      // best-effort by design (a dead service reclaims our leases either way).
      PLOG(DEBUG) << "heartbeat failed: " << reply.status().ToString();
      return;
    }
    if (reply->type != static_cast<uint8_t>(WorkFrame::kHeartbeatAck)) {
      PLOG(WARN) << "heartbeat got unexpected " << WorkFrameName(reply->type);
      return;
    }
  }
}

Result<WorkClient::LeaseReply> WorkClient::TryLease() {
  PERSONA_ASSIGN_OR_RETURN(ingest::RawFrame reply,
                           Transact(WorkFrame::kLeaseRequest, ""));
  LeaseReply result;
  switch (static_cast<WorkFrame>(reply.type)) {
    case WorkFrame::kLeaseGrant: {
      PERSONA_ASSIGN_OR_RETURN(result.grant, LeaseGrantMsg::FromJson(reply.payload));
      result.outcome = LeaseOutcome::kGranted;
      return result;
    }
    case WorkFrame::kDrained:
      result.outcome = LeaseOutcome::kDrained;
      return result;
    case WorkFrame::kNoWork:
      result.outcome = LeaseOutcome::kNoWork;
      return result;
    default:
      return InvalidArgumentError(
          StrFormat("lease request got unexpected %s", WorkFrameName(reply.type)));
  }
}

bool WorkClient::PollWait() {
  MutexLock lock(stop_mu_);
  if (stop_) {
    return true;
  }
  return stop_cv_.WaitFor(stop_mu_, options_.poll_interval_sec) && stop_;
}

Result<std::optional<LeaseGrantMsg>> WorkClient::NextLease() {
  for (;;) {
    PERSONA_ASSIGN_OR_RETURN(LeaseReply reply, TryLease());
    switch (reply.outcome) {
      case LeaseOutcome::kGranted:
        return std::optional<LeaseGrantMsg>(std::move(reply.grant));
      case LeaseOutcome::kDrained:
        return std::optional<LeaseGrantMsg>(std::nullopt);
      case LeaseOutcome::kNoWork:
        // Another node holds the remaining groups; wait and re-ask (a failure or
        // expiry may free one). Close() aborts the wait via stop_cv_.
        if (PollWait()) {
          return CancelledError("work client closed while polling for work");
        }
        break;
    }
  }
}

Result<AckMsg> WorkClient::CompleteLease(const LeaseCompleteMsg& msg) {
  PERSONA_ASSIGN_OR_RETURN(ingest::RawFrame reply,
                           Transact(WorkFrame::kLeaseComplete, msg.ToJson()));
  if (reply.type != static_cast<uint8_t>(WorkFrame::kAck)) {
    return InvalidArgumentError(
        StrFormat("lease complete got unexpected %s", WorkFrameName(reply.type)));
  }
  return AckMsg::FromJson(reply.payload);
}

Result<AckMsg> WorkClient::FailLease(const LeaseFailMsg& msg) {
  PERSONA_ASSIGN_OR_RETURN(ingest::RawFrame reply,
                           Transact(WorkFrame::kLeaseFail, msg.ToJson()));
  if (reply.type != static_cast<uint8_t>(WorkFrame::kAck)) {
    return InvalidArgumentError(
        StrFormat("lease fail got unexpected %s", WorkFrameName(reply.type)));
  }
  return AckMsg::FromJson(reply.payload);
}

Result<ClusterWorkReport> WorkClient::Stats() {
  PERSONA_ASSIGN_OR_RETURN(ingest::RawFrame reply,
                           Transact(WorkFrame::kStatsRequest, ""));
  if (reply.type != static_cast<uint8_t>(WorkFrame::kStatsReply)) {
    return InvalidArgumentError(
        StrFormat("stats request got unexpected %s", WorkFrameName(reply.type)));
  }
  return ClusterWorkReport::FromJson(reply.payload);
}

NetworkWorkSource::NetworkWorkSource(WorkClient* client,
                                     const format::Manifest* manifest,
                                     storage::ObjectStore* store)
    : client_(client), manifest_(manifest), store_(store) {
  if (store_ != nullptr) {
    MutexLock lock(mu_);
    last_reported_ = store_->stats();
  }
}

uint64_t NetworkWorkSource::RecordsInGroup(size_t group) const {
  const size_t group_size = static_cast<size_t>(client_->job().group_size);
  const size_t begin = group * group_size;
  const size_t end = std::min(manifest_->chunks.size(), begin + group_size);
  uint64_t records = 0;
  for (size_t c = begin; c < end; ++c) {
    records += static_cast<uint64_t>(manifest_->chunks[c].num_records);
  }
  return records;
}

std::optional<size_t> NetworkWorkSource::NextGroup() {
  for (;;) {
    Result<WorkClient::LeaseReply> reply = client_->TryLease();
    if (!reply.ok()) {
      // The pipeline treats nullopt as end-of-work and drains what it has; the
      // service re-issues anything this worker leaves unfinished.
      PLOG(WARN) << "work source: lease request failed, stopping: "
                 << reply.status().ToString();
      return std::nullopt;
    }
    switch (reply->outcome) {
      case WorkClient::LeaseOutcome::kGranted: {
        const size_t group = static_cast<size_t>(reply->grant.group);
        MutexLock lock(mu_);
        lease_by_group_[group] = reply->grant.lease_id;
        return group;
      }
      case WorkClient::LeaseOutcome::kDrained:
        return std::nullopt;
      case WorkClient::LeaseOutcome::kNoWork: {
        // No group is available right now. If THIS worker still holds leases, the
        // groups behind them are queued in our own pipeline — and their completions
        // only flush once the pipeline drains, which requires this source to end.
        // Polling here would deadlock the whole cluster on ourselves (the service
        // answers kNoWork precisely because our leases are outstanding). End the
        // stream; queued groups complete during the drain, and re-issued strays go
        // to workers that are still idle-polling.
        {
          MutexLock lock(mu_);
          if (!lease_by_group_.empty()) {
            PLOG(DEBUG) << "work source: nothing left to lease and " << lease_by_group_.size()
                        << " lease(s) in flight locally; draining pipeline";
            return std::nullopt;
          }
        }
        if (client_->PollWait()) {
          return std::nullopt;  // client closing
        }
        break;
      }
    }
  }
}

Status NetworkWorkSource::CompleteGroup(size_t group,
                                        const std::vector<std::string>& keys) {
  LeaseCompleteMsg msg;
  msg.group = group;
  msg.keys = keys;
  msg.records = RecordsInGroup(group);
  {
    MutexLock lock(mu_);
    auto it = lease_by_group_.find(group);
    if (it == lease_by_group_.end()) {
      return InternalError(
          StrFormat("completion for group %zu with no recorded lease", group));
    }
    msg.lease_id = it->second;
    lease_by_group_.erase(it);
    if (store_ != nullptr) {
      const storage::StoreStats now = store_->stats();
      msg.store = storage::StatsDelta(last_reported_, now);
      last_reported_ = now;
    }
    records_completed_ += msg.records;
    ++groups_completed_;
  }
  PERSONA_ASSIGN_OR_RETURN(AckMsg ack, client_->CompleteLease(msg));
  if (ack.duplicate) {
    PLOG(INFO) << "group " << group << " was already completed elsewhere "
               << "(identical output, deduped by the service)";
  }
  return OkStatus();
}

Status NetworkWorkSource::FailGroup(size_t group, const Status& error) {
  LeaseFailMsg msg;
  msg.group = group;
  msg.error = error.ToString();
  {
    MutexLock lock(mu_);
    auto it = lease_by_group_.find(group);
    if (it == lease_by_group_.end()) {
      return InternalError(
          StrFormat("failure report for group %zu with no recorded lease", group));
    }
    msg.lease_id = it->second;
    lease_by_group_.erase(it);
  }
  PERSONA_ASSIGN_OR_RETURN(AckMsg ack, client_->FailLease(msg));
  if (ack.quarantined) {
    PLOG(WARN) << "group " << group << " quarantined by the service";
  }
  return OkStatus();
}

uint64_t NetworkWorkSource::records_completed() const {
  MutexLock lock(mu_);
  return records_completed_;
}

uint64_t NetworkWorkSource::groups_completed() const {
  MutexLock lock(mu_);
  return groups_completed_;
}

}  // namespace persona::cluster
