// persona_node: the worker daemon of the distributed work service.
//
// A node connects to a WorkService, learns the job (tool + parameters) from the
// registration reply, plugs a NetworkWorkSource into the matching ChunkPipeline tool,
// and processes leased chunk groups against the shared object store until the
// service reports the dataset drained. The node is deliberately thin — all policy
// (grouping, lease timeouts, retry budgets) lives in the service, so workers can be
// added, killed, and restarted freely mid-run (the whole point of leases).
//
// Tools served: "align" (results column), "recompress"/"reconstruct" (ref_bases
// transcode, paper §6.1), "sort1" (sort phase 1: superchunk spills; the coordinator
// merges with MergeSuperchunks once drained). Workers never write the dataset
// manifest — the coordinator owns it (update_manifest = false everywhere here).
//
// Align jobs can rebuild their reference genome and seed index deterministically
// from job params (synthetic-genome generation is seeded), so a forked or exec'd
// worker needs nothing but the service port and the store root.

#ifndef PERSONA_SRC_CLUSTER_PERSONA_NODE_H_
#define PERSONA_SRC_CLUSTER_PERSONA_NODE_H_

#include <cstdint>
#include <string>

#include "src/align/aligner.h"
#include "src/genome/reference.h"
#include "src/util/json.h"
#include "src/pipeline/persona_pipeline.h"
#include "src/storage/object_store.h"
#include "src/util/result.h"

namespace persona::cluster {

struct PersonaNodeOptions {
  uint16_t port = 0;      // work service on loopback
  std::string node_name;  // identity in the cluster report
  storage::ObjectStore* store = nullptr;  // shared store (required, borrowed)
  // Pre-built alignment context (borrowed). When null, align/recompress jobs
  // rebuild it from job params: genome_seed, num_contigs, contig_length,
  // seed_length (see JobParamsForScenario in persona_node.cc).
  const align::Aligner* aligner = nullptr;
  const genome::ReferenceGenome* reference = nullptr;
  int executor_threads = 2;     // align executor width
  double poll_interval_sec = 0.05;
  // Stage widths for the align pipeline; work_source / update_manifest /
  // resume_journal / collect_results are overridden by the node.
  pipeline::AlignPipelineOptions align;
};

struct PersonaNodeReport {
  std::string tool;
  uint64_t groups_completed = 0;  // leases this node completed
  uint64_t records = 0;           // records in those groups
  double seconds = 0;
  storage::StoreStats store_stats;  // this node's store delta
};

// Connects, serves leases until the dataset drains (or the service goes away), and
// returns what this node contributed. A worker that cannot finish a group reports
// the failure and keeps serving; only transport-level loss of the service ends the
// run early (successfully — the service re-issues unfinished leases).
Result<PersonaNodeReport> RunPersonaNode(const PersonaNodeOptions& options);

// JobSpec params for jobs whose workers rebuild the synthetic reference themselves
// (generation is seeded, so every worker reconstructs bit-identical genome + index).
// The service side puts this in JobSpec::params; RunPersonaNode consumes it.
json::Object GenomeJobParams(uint64_t genome_seed, int num_contigs,
                             int64_t contig_length, int seed_length);

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_PERSONA_NODE_H_
