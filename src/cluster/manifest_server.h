// ManifestServer: the cluster-wide work queue (paper §5.2: "the first stage in the
// graph fetches a chunk name from the manifest server; the latter is implemented as a
// simple message queue"). Hands each AGD chunk index to exactly one node and records
// who got it, for completion-balance reporting (§5.5: "no measurable completion-time
// imbalance").
//
// This is the in-process view of the lease table the network WorkService serves over
// TCP (see work_service.h). The hand-out and its per-node accounting are one critical
// section in LeaseTable::AcquireCompleted — an earlier version bumped an atomic
// cursor and then took a lock to count, so a reader of per_node_chunks() could see a
// granted chunk that no node's counter owned yet.

#ifndef PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_
#define PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cluster/lease_table.h"

namespace persona::cluster {

class ManifestServer {
 public:
  ManifestServer(size_t num_chunks, size_t num_nodes)
      : table_(num_chunks, num_nodes, NoExpiry()) {}

  // Next chunk for `node`, or nullopt when the dataset is exhausted. In-process
  // nodes never crash independently of the server, so the chunk is granted and
  // settled in one step — no lease lifecycle, no expiry.
  std::optional<size_t> Next(size_t node) { return table_.AcquireCompleted(node); }

  size_t num_chunks() const { return table_.num_groups(); }

  std::vector<uint64_t> per_node_chunks() const {
    return table_.stats().per_node_completed;
  }

 private:
  static LeaseTableOptions NoExpiry() {
    LeaseTableOptions options;
    options.lease_timeout_sec = 0;
    return options;
  }

  LeaseTable table_;
};

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_
