// ManifestServer: the cluster-wide work queue (paper §5.2: "the first stage in the
// graph fetches a chunk name from the manifest server; the latter is implemented as a
// simple message queue"). Hands each AGD chunk index to exactly one node and records
// who got it, for completion-balance reporting (§5.5: "no measurable completion-time
// imbalance").

#ifndef PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_
#define PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/mutex.h"

namespace persona::cluster {

using persona::Mutex;
using persona::MutexLock;

class ManifestServer {
 public:
  ManifestServer(size_t num_chunks, size_t num_nodes)
      : num_chunks_(num_chunks), per_node_chunks_(num_nodes, 0) {}

  // Next chunk for `node`, or nullopt when the dataset is exhausted.
  std::optional<size_t> Next(size_t node) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_chunks_) {
      return std::nullopt;
    }
    {
      MutexLock lock(mu_);
      ++per_node_chunks_[node];
    }
    return i;
  }

  size_t num_chunks() const { return num_chunks_; }

  std::vector<uint64_t> per_node_chunks() const {
    MutexLock lock(mu_);
    return per_node_chunks_;
  }

 private:
  const size_t num_chunks_;
  std::atomic<size_t> next_{0};
  mutable Mutex mu_;
  std::vector<uint64_t> per_node_chunks_ GUARDED_BY(mu_);
};

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_MANIFEST_SERVER_H_
