// Discrete-event cluster-scaling simulator: the "Simulation" line of Fig. 7.
//
// The paper validates a simulator against measured throughput up to 32 nodes, then uses
// it to find the storage-cluster saturation point (~60 compute nodes; beyond that,
// writing alignment results limits performance). This module reproduces that
// methodology: compute nodes process chunks (read 2 columns -> align -> write results),
// with the shared Ceph read and write capacities modelled as processor-sharing fluid
// resources and per-chunk align time drawn from a calibrated distribution.

#ifndef PERSONA_SRC_CLUSTER_DES_SIM_H_
#define PERSONA_SRC_CLUSTER_DES_SIM_H_

#include <cstdint>
#include <vector>

namespace persona::cluster {

struct DesParams {
  // Dataset (paper defaults: ERR174324 half-dataset in AGD).
  int64_t num_chunks = 2231;
  int64_t reads_per_chunk = 100'000;
  int read_length = 101;
  double chunk_read_mb = 7.0;     // bases + qual columns (~3.5 MB each)
  double chunk_write_mb = 2.0;    // results column
  // Compute: §5.4 measures ~45.45 megabases/s/node at 48 threads.
  double node_megabases_per_sec = 45.45;
  double align_time_cv = 0.05;    // per-chunk service-time variability
  // Storage cluster (7-node Ceph): 6 GB/s aggregate reads. Writes consume
  // `replication` x the object size of device bandwidth (3-way replication), against a
  // write capacity reduced by journaling; 1.62 GB/s puts the saturation knee at ~60
  // compute nodes, matching the paper's measurement.
  double read_capacity_gb_per_sec = 6.0;
  double write_capacity_gb_per_sec = 1.62;
  int replication = 3;
  uint64_t seed = 99;
};

struct DesPoint {
  int nodes = 0;
  double seconds = 0;              // request start -> all results written
  double gigabases_per_sec = 0;
  double read_utilization = 0;     // fraction of read capacity used
  double write_utilization = 0;
};

// Simulates one whole-genome alignment with `nodes` compute nodes.
DesPoint SimulateCluster(const DesParams& params, int nodes);

// Sweeps node counts, e.g. {1, 2, 4, ..., 100} for the Fig. 7 series.
std::vector<DesPoint> SimulateScaling(const DesParams& params,
                                      const std::vector<int>& node_counts);

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_DES_SIM_H_
