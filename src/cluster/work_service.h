// WorkService: the manifest server as a real network daemon (paper §5.2), upgraded
// from a message queue to a fault-tolerant lease service.
//
// One process runs the service next to the shared object store; N persona_node
// workers connect over loopback TCP, register, and pull chunk-group leases until the
// dataset drains. The service owns nothing but coordination state — workers read
// chunks from and write results to the shared store directly, so the data path
// scales with the store (paper §5.4) while the control path stays a few hundred
// bytes per chunk.
//
// Fault tolerance (the reason this is a lease service, not a queue):
//   - A worker that disconnects (crash, SIGKILL) has its leases released immediately
//     and re-issued to the next requester.
//   - A worker that goes silent while connected (wedged process) has its leases
//     reclaimed by the sweeper thread once they expire; heartbeats renew them.
//   - A completion that arrives after its lease expired is accepted anyway: the
//     tools are deterministic, so both executions produced bit-identical objects
//     under the same store key, and the duplicate is acknowledged and deduped.
//   - A group that fails `max_attempts` times is quarantined, reported in the
//     cluster report, and optionally persisted to a quarantine manifest so the run
//     can drain instead of wedging on one poisoned chunk.
//
// The service aggregates per-worker completion counts, record counts, and worker-side
// StoreStats deltas into a cluster-wide ClusterWorkReport (paper §5.5's
// completion-balance measurement).

#ifndef PERSONA_SRC_CLUSTER_WORK_SERVICE_H_
#define PERSONA_SRC_CLUSTER_WORK_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/lease_table.h"
#include "src/cluster/work_protocol.h"
#include "src/ingest/socket.h"
#include "src/util/mutex.h"
#include "src/util/result.h"

namespace persona::cluster {

struct WorkServiceOptions {
  uint16_t port = 0;  // 0 = kernel-assigned (read back via port())
  // The job to coordinate. num_groups must be set (ceil(chunks / group_size));
  // lease_timeout_sec and heartbeat_interval_sec ride inside it to the workers.
  JobSpec job;
  int max_attempts = 3;             // per-group hand-out budget before quarantine
  double handshake_timeout_sec = 10;  // RegisterWorker deadline for a new connection
  double sweep_interval_sec = 0.5;    // expired-lease reaper cadence
  // When set, permanently failed groups are persisted here as a quarantine manifest
  // (pipeline::QuarantineManifest JSON, written atomically) once the run drains.
  std::string quarantine_manifest_path;
};

class WorkService {
 public:
  ~WorkService();  // ForceShutdown + join

  WorkService(const WorkService&) = delete;
  WorkService& operator=(const WorkService&) = delete;

  // Binds, starts the accept loop and lease sweeper, and returns a running service.
  static Result<std::unique_ptr<WorkService>> Start(const WorkServiceOptions& options);

  uint16_t port() const { return server_->port(); }

  // Blocks until every group is completed or quarantined (or `timeout_sec` elapses;
  // 0 = wait forever). On drain, writes the quarantine manifest if configured and
  // any groups were quarantined. Returns DeadlineExceeded on timeout and Cancelled
  // if the service was shut down first.
  [[nodiscard]] Status AwaitDrained(double timeout_sec = 0) EXCLUDES(drain_mu_);

  // Cluster-wide aggregate so far. Callable at any time.
  ClusterWorkReport Report() const EXCLUDES(mu_);

  std::vector<QuarantinedGroup> quarantined_groups() const {
    return table_.quarantined_groups();
  }

  // Stops accepting, then waits for connected workers to go away on their own.
  // Sessions keep being served until their socket closes — use ForceShutdown when
  // they must not outlive the call. Idempotent.
  void Shutdown() EXCLUDES(shutdown_mu_, mu_, drain_mu_);

  // Force-abort: aborts every live worker socket (their sessions end with a
  // transport error and release their leases) and joins. Idempotent.
  void ForceShutdown() EXCLUDES(shutdown_mu_, mu_, drain_mu_);

 private:
  WorkService(const WorkServiceOptions& options,
              std::unique_ptr<ingest::SocketServer> server)
      : options_(options),
        table_(static_cast<size_t>(options.job.num_groups > 0 ? options.job.num_groups
                                                              : 0),
               0, LeaseOptionsFrom(options)),
        server_(std::move(server)) {}

  static LeaseTableOptions LeaseOptionsFrom(const WorkServiceOptions& options) {
    LeaseTableOptions lease;
    lease.lease_timeout_sec = options.job.lease_timeout_sec;
    lease.max_attempts = options.max_attempts;
    return lease;
  }

  void AcceptLoop();
  void RunSession(ingest::Connection conn_in);
  // The registered-worker request loop; returns when the worker disconnects or
  // violates the protocol.
  void ServeWorker(const std::shared_ptr<ingest::Connection>& conn, size_t node);
  void SweepLoop();
  void NotifyProgress() EXCLUDES(drain_mu_);
  // Joins session threads that have finished (called on each accept).
  void ReapFinishedLocked() REQUIRES(mu_);
  [[nodiscard]] Status WriteQuarantineManifest() const;

  const WorkServiceOptions options_;
  LeaseTable table_;
  std::unique_ptr<ingest::SocketServer> server_;
  std::thread accept_thread_;
  std::thread sweep_thread_;

  ingest::LiveConnectionSet live_conns_;  // worker sockets, for ForceShutdown

  struct SessionThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  struct WorkerInfo {
    std::string node_name;
    int64_t pid = 0;
    uint64_t records = 0;          // first-completion records reported
    storage::StoreStats store;     // first-completion store deltas reported
  };

  mutable Mutex mu_;
  Mutex shutdown_mu_;  // serializes Shutdown/ForceShutdown (thread joins)
  std::vector<SessionThread> session_threads_ GUARDED_BY(mu_);
  std::vector<WorkerInfo> workers_ GUARDED_BY(mu_);  // indexed by node id
  uint64_t total_records_ GUARDED_BY(mu_) = 0;
  storage::StoreStats total_store_ GUARDED_BY(mu_);

  mutable Mutex drain_mu_ ACQUIRED_AFTER(mu_);
  CondVar drain_cv_;
  bool stopping_ GUARDED_BY(drain_mu_) = false;

  Mutex sweep_mu_;
  CondVar sweep_cv_;
  bool sweep_stop_ GUARDED_BY(sweep_mu_) = false;

  std::atomic<bool> shut_down_{false};
};

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_WORK_SERVICE_H_
