#include "src/cluster/persona_node.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/align/seed_index.h"
#include "src/align/snap_aligner.h"
#include "src/cluster/work_client.h"
#include "src/dataflow/executor.h"
#include "src/genome/generator.h"
#include "src/pipeline/recompress.h"
#include "src/pipeline/sort.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace persona::cluster {
namespace {

// Alignment context a worker rebuilt from job params (empty when the caller
// supplied one): owns whatever had to be constructed locally. Everything lives on
// the heap — the aligner stores the reference's and index's addresses, so they must
// survive this struct being moved.
struct RebuiltContext {
  std::unique_ptr<genome::ReferenceGenome> reference;
  std::unique_ptr<align::SeedIndex> seed_index;
  std::unique_ptr<align::SnapAligner> aligner;
};

Result<RebuiltContext> RebuildFromParams(const json::Object& params,
                                         bool need_aligner) {
  const json::Value value{params};
  PERSONA_ASSIGN_OR_RETURN(int64_t genome_seed, value.GetInt("genome_seed"));
  PERSONA_ASSIGN_OR_RETURN(int64_t num_contigs, value.GetInt("num_contigs"));
  PERSONA_ASSIGN_OR_RETURN(int64_t contig_length, value.GetInt("contig_length"));
  RebuiltContext context;
  genome::GenomeSpec spec;
  spec.num_contigs = static_cast<int>(num_contigs);
  spec.contig_length = contig_length;
  spec.seed = static_cast<uint64_t>(genome_seed);
  context.reference =
      std::make_unique<genome::ReferenceGenome>(genome::GenerateGenome(spec));
  if (need_aligner) {
    PERSONA_ASSIGN_OR_RETURN(int64_t seed_length, value.GetInt("seed_length"));
    align::SeedIndexOptions index_options;
    index_options.seed_length = static_cast<int>(seed_length);
    PERSONA_ASSIGN_OR_RETURN(align::SeedIndex index,
                             align::SeedIndex::Build(*context.reference, index_options));
    context.seed_index = std::make_unique<align::SeedIndex>(std::move(index));
    context.aligner = std::make_unique<align::SnapAligner>(context.reference.get(),
                                                           context.seed_index.get());
  }
  return context;
}

Result<compress::CodecId> CodecFromParams(const json::Object& params,
                                          compress::CodecId fallback) {
  auto it = params.find("codec");
  if (it == params.end()) {
    return fallback;
  }
  if (!it->second.is_string()) {
    return InvalidArgumentError("job params: codec must be a string");
  }
  return compress::CodecIdFromName(it->second.as_string());
}

}  // namespace

json::Object GenomeJobParams(uint64_t genome_seed, int num_contigs,
                             int64_t contig_length, int seed_length) {
  json::Object params;
  params["genome_seed"] = json::Value(genome_seed);
  params["num_contigs"] = json::Value(num_contigs);
  params["contig_length"] = json::Value(contig_length);
  params["seed_length"] = json::Value(seed_length);
  return params;
}

Result<PersonaNodeReport> RunPersonaNode(const PersonaNodeOptions& options) {
  if (options.store == nullptr) {
    return InvalidArgumentError("persona_node: store is required");
  }
  Stopwatch timer;
  const storage::StoreStats store_before = options.store->stats();

  WorkClientOptions client_options;
  client_options.port = options.port;
  client_options.node_name = options.node_name;
  client_options.poll_interval_sec = options.poll_interval_sec;
  PERSONA_ASSIGN_OR_RETURN(std::unique_ptr<WorkClient> client,
                           WorkClient::Connect(client_options));
  const JobSpec& job = client->job();
  PLOG(INFO) << "persona_node '" << options.node_name << "': serving " << job.tool
             << " job (" << job.num_groups << " group(s))";

  Buffer manifest_bytes;
  PERSONA_RETURN_IF_ERROR(options.store->Get(job.manifest_key, &manifest_bytes));
  PERSONA_ASSIGN_OR_RETURN(format::Manifest manifest,
                           format::Manifest::FromJson(manifest_bytes.view()));

  // Context shared by every round of the serve loop.
  const align::Aligner* aligner = options.aligner;
  const genome::ReferenceGenome* reference = options.reference;
  RebuiltContext context;
  std::unique_ptr<dataflow::Executor> executor;
  if (job.tool == "align") {
    if (aligner == nullptr) {
      PERSONA_ASSIGN_OR_RETURN(context,
                               RebuildFromParams(job.params, /*need_aligner=*/true));
      aligner = context.aligner.get();
    }
    executor = std::make_unique<dataflow::Executor>(
        static_cast<size_t>(std::max(options.executor_threads, 1)));
  } else if (job.tool == "recompress" || job.tool == "reconstruct") {
    if (reference == nullptr) {
      PERSONA_ASSIGN_OR_RETURN(context,
                               RebuildFromParams(job.params, /*need_aligner=*/false));
      reference = context.reference.get();
    }
  } else if (job.tool != "sort1") {
    return UnimplementedError(
        StrFormat("persona_node: unknown tool '%s'", job.tool.c_str()));
  }

  // One pipeline round over a network work source. A round ends when the job
  // drains — or early, when every remaining group is leased elsewhere while this
  // node still has completions to flush (the source ends its stream so the write
  // window can commit them; see NetworkWorkSource::NextGroup).
  auto run_round = [&](NetworkWorkSource* source) -> Status {
    if (job.tool == "align") {
      pipeline::AlignPipelineOptions align = options.align;
      align.work_source = source;
      align.update_manifest = false;  // the coordinator owns manifest.json
      align.resume_journal = nullptr;
      align.collect_results = false;
      return pipeline::RunPersonaAlignment(options.store, manifest, *aligner,
                                           executor.get(), align)
          .status();
    }
    if (job.tool == "recompress" || job.tool == "reconstruct") {
      pipeline::RecompressOptions recompress;
      PERSONA_ASSIGN_OR_RETURN(recompress.codec,
                               CodecFromParams(job.params, recompress.codec));
      recompress.work_source = source;
      recompress.update_manifest = false;
      format::Manifest out_manifest;
      if (job.tool == "recompress") {
        return pipeline::RefCompressBasesColumn(options.store, manifest, *reference,
                                                recompress, &out_manifest)
            .status();
      }
      return pipeline::ReconstructBasesColumn(options.store, manifest, *reference,
                                              recompress, &out_manifest)
          .status();
    }
    const json::Value params{job.params};
    PERSONA_ASSIGN_OR_RETURN(std::string out_name, params.GetString("out_name"));
    pipeline::SortOptions sort;
    sort.chunks_per_superchunk = static_cast<int>(job.group_size);
    auto key_it = job.params.find("sort_key");
    if (key_it != job.params.end() && key_it->second.is_string() &&
        key_it->second.as_string() == "metadata") {
      sort.key = pipeline::SortKey::kMetadata;
    }
    return pipeline::SortSuperchunks(options.store, manifest, out_name, sort, source)
        .status();
  };

  // Serve rounds until the job truly drains. A node whose round ended early must
  // come back for more: groups released by a dead worker may have returned to
  // pending after this node's source already ended its stream, and a node that
  // exits instead of re-asking would strand them (nobody left to re-lease).
  uint64_t groups_completed = 0;
  uint64_t records = 0;
  for (;;) {
    NetworkWorkSource source(client.get(), &manifest, options.store);
    PERSONA_RETURN_IF_ERROR(run_round(&source));
    groups_completed += source.groups_completed();
    records += source.records_completed();
    Result<ClusterWorkReport> progress = client->Stats();
    if (!progress.ok()) {
      // Transport loss: the service is gone (its report is final) — this node's
      // contribution stands, anything unfinished is someone else's lease now.
      PLOG(WARN) << "persona_node '" << options.node_name
                 << "': service unreachable after round, stopping: "
                 << progress.status().ToString();
      break;
    }
    if (progress->drained) {
      break;
    }
    if (client->PollWait()) {
      break;  // client closing
    }
  }

  PersonaNodeReport report;
  report.tool = job.tool;
  report.groups_completed = groups_completed;
  report.records = records;
  report.seconds = timer.ElapsedSeconds();
  report.store_stats = storage::StatsDelta(store_before, options.store->stats());
  PLOG(INFO) << "persona_node '" << options.node_name << "': done — "
             << report.groups_completed << " group(s), " << report.records
             << " record(s) in " << report.seconds << "s";
  client->Close();
  return report;
}

}  // namespace persona::cluster
