// Worker side of the distributed work service: WorkClient speaks the wire protocol
// (work_protocol.h) to a WorkService, and NetworkWorkSource adapts it to the
// pipeline::WorkSource interface so any ChunkPipeline tool — align, recompress, sort
// phase 1 — becomes cluster-distributable without knowing the network exists.
//
// One connection serves the whole worker: the pipeline's source thread leases and
// completes groups on it while a background heartbeat thread renews them, so all
// request/reply exchanges are serialized on one mutex (the protocol has no frame
// correlation ids — ordering IS the correlation).

#ifndef PERSONA_SRC_CLUSTER_WORK_CLIENT_H_
#define PERSONA_SRC_CLUSTER_WORK_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cluster/work_protocol.h"
#include "src/format/agd_manifest.h"
#include "src/ingest/socket.h"
#include "src/ingest/wire.h"
#include "src/pipeline/chunk_pipeline.h"
#include "src/storage/object_store.h"
#include "src/util/mutex.h"
#include "src/util/result.h"

namespace persona::cluster {

struct WorkClientOptions {
  uint16_t port = 0;      // work service port on loopback
  std::string node_name;  // operator-facing identity in the cluster report
  // Wait between kNoWork polls. The service answers kNoWork while other nodes hold
  // the remaining leases — one of them may yet fail or expire, so the worker polls
  // until kDrained.
  double poll_interval_sec = 0.05;
  // 0 = use the interval the job spec announces.
  double heartbeat_interval_sec = 0;
};

// A registered work-service session. Thread-safe; Close() (or destruction) stops the
// heartbeat thread and disconnects, unblocking a NextLease poll wait.
class WorkClient {
 public:
  ~WorkClient();

  WorkClient(const WorkClient&) = delete;
  WorkClient& operator=(const WorkClient&) = delete;

  // Connects to 127.0.0.1:port, registers, and starts the heartbeat thread. The
  // returned client has the job spec the service announced.
  static Result<std::unique_ptr<WorkClient>> Connect(const WorkClientOptions& options);

  const JobSpec& job() const { return job_; }

  // One lease request. kNoWork means every remaining group is currently leased
  // elsewhere (one may yet fail or expire — poll again); kDrained means the job is
  // finished for good.
  enum class LeaseOutcome { kGranted, kNoWork, kDrained };
  struct LeaseReply {
    LeaseOutcome outcome = LeaseOutcome::kNoWork;
    LeaseGrantMsg grant;  // set when outcome == kGranted
  };
  Result<LeaseReply> TryLease() EXCLUDES(conn_mu_);

  // Next lease, polling through kNoWork. nullopt when the service says kDrained.
  // Fails on transport errors and protocol violations (including service shutdown
  // mid-poll).
  Result<std::optional<LeaseGrantMsg>> NextLease() EXCLUDES(conn_mu_, stop_mu_);

  // Sleeps one poll interval (or until Close()). Returns true when the client is
  // closing and the caller should stop polling.
  bool PollWait() EXCLUDES(stop_mu_);

  // Reports a finished group; the returned ack says whether the service had already
  // counted it (duplicate — e.g. this lease expired and another node finished first).
  Result<AckMsg> CompleteLease(const LeaseCompleteMsg& msg) EXCLUDES(conn_mu_);

  // Reports a failed group; the ack says whether this failure quarantined it.
  Result<AckMsg> FailLease(const LeaseFailMsg& msg) EXCLUDES(conn_mu_);

  // Cluster-wide report, served from the service's aggregation.
  Result<ClusterWorkReport> Stats() EXCLUDES(conn_mu_);

  // Stops the heartbeat and disconnects. Idempotent; implied by destruction. Leases
  // still held become the service's problem (released on disconnect).
  void Close() EXCLUDES(conn_mu_, stop_mu_);

 private:
  WorkClient(const WorkClientOptions& options, ingest::Connection conn, JobSpec job)
      : options_(options), conn_(std::move(conn)), job_(std::move(job)) {}

  // One request/reply exchange. `expect` of kError means "any reply"; otherwise a
  // kError reply or an unexpected type fails the exchange.
  Result<ingest::RawFrame> Transact(WorkFrame type, std::string_view payload)
      EXCLUDES(conn_mu_);

  void HeartbeatLoop() EXCLUDES(conn_mu_, stop_mu_);

  const WorkClientOptions options_;
  Mutex conn_mu_;  // serializes request/reply pairs across threads
  ingest::Connection conn_ GUARDED_BY(conn_mu_);
  bool closed_ GUARDED_BY(conn_mu_) = false;
  JobSpec job_;

  std::thread heartbeat_;
  Mutex stop_mu_;
  CondVar stop_cv_;
  bool stop_ GUARDED_BY(stop_mu_) = false;
};

// pipeline::WorkSource over a WorkClient: NextGroup leases, CompleteGroup reports
// the landed keys plus per-lease record counts (from the manifest) and the worker's
// StoreStats delta, FailGroup reports the error. Constructed per pipeline run.
//
// Store-delta attribution: deltas are cut at completion time from the shared store
// counter, so with several groups in flight a group's delta may include a neighbor's
// I/O — per-lease numbers are approximate, the cluster-wide sum is exact.
class NetworkWorkSource final : public pipeline::WorkSource {
 public:
  // All pointers borrowed. `store` may be null (no delta reporting).
  NetworkWorkSource(WorkClient* client, const format::Manifest* manifest,
                    storage::ObjectStore* store);

  std::optional<size_t> NextGroup() override EXCLUDES(mu_);
  [[nodiscard]] Status CompleteGroup(size_t group,
                                     const std::vector<std::string>& keys) override
      EXCLUDES(mu_);
  [[nodiscard]] Status FailGroup(size_t group, const Status& error) override
      EXCLUDES(mu_);

  // Work this source completed (first-completion or not, as leased here).
  uint64_t records_completed() const EXCLUDES(mu_);
  uint64_t groups_completed() const EXCLUDES(mu_);

 private:
  uint64_t RecordsInGroup(size_t group) const;

  WorkClient* const client_;
  const format::Manifest* const manifest_;
  storage::ObjectStore* const store_;

  mutable Mutex mu_;
  std::unordered_map<size_t, uint64_t> lease_by_group_ GUARDED_BY(mu_);
  storage::StoreStats last_reported_ GUARDED_BY(mu_);
  uint64_t records_completed_ GUARDED_BY(mu_) = 0;
  uint64_t groups_completed_ GUARDED_BY(mu_) = 0;
};

}  // namespace persona::cluster

#endif  // PERSONA_SRC_CLUSTER_WORK_CLIENT_H_
