#include "src/cluster/lease_table.h"

#include <algorithm>

#include "src/util/logging.h"

namespace persona::cluster {

LeaseTable::LeaseTable(size_t num_groups, size_t num_nodes,
                       const LeaseTableOptions& options)
    : options_(options), slots_(num_groups), per_node_completed_(num_nodes, 0) {}

void LeaseTable::CountCompletionLocked(size_t node) {
  if (node >= per_node_completed_.size()) {
    per_node_completed_.resize(node + 1, 0);
  }
  ++per_node_completed_[node];
}

size_t LeaseTable::ReapExpiredLocked(double now) {
  if (options_.lease_timeout_sec <= 0) {
    return 0;
  }
  size_t reclaimed = 0;
  for (size_t g = 0; g < slots_.size(); ++g) {
    Slot& slot = slots_[g];
    if (slot.state == State::kLeased && now >= slot.deadline) {
      slot.state = State::kPending;
      --outstanding_;
      ++expired_reclaims_;
      ++reclaimed;
      scan_ = std::min(scan_, g);
      PLOG(WARN) << "lease " << slot.lease_id << " (group " << g << ", node "
                 << slot.holder << ") expired; re-issuing";
    }
  }
  return reclaimed;
}

std::optional<LeaseGrant> LeaseTable::Acquire(size_t node, double now) {
  MutexLock lock(mu_);
  const size_t reaped = ReapExpiredLocked(now);
  if (reaped > 0) {
    PLOG(DEBUG) << "acquire: reclaimed " << reaped << " expired lease(s)";
  }
  while (scan_ < slots_.size() && slots_[scan_].state != State::kPending) {
    ++scan_;
  }
  // The cursor may have skipped groups reclaimed behind it before this call; fall
  // back to a full scan only when the fast path finds nothing.
  size_t group = scan_;
  if (group >= slots_.size()) {
    for (group = 0; group < slots_.size(); ++group) {
      if (slots_[group].state == State::kPending) {
        break;
      }
    }
    if (group >= slots_.size()) {
      return std::nullopt;
    }
  }
  Slot& slot = slots_[group];
  slot.state = State::kLeased;
  slot.holder = node;
  slot.lease_id = next_lease_id_++;
  slot.deadline = now + options_.lease_timeout_sec;
  if (slot.attempts > 0) {
    ++reissues_;
  }
  ++slot.attempts;
  ++outstanding_;
  return LeaseGrant{slot.lease_id, group};
}

CompleteOutcome LeaseTable::Complete(size_t node, uint64_t lease_id, size_t group) {
  MutexLock lock(mu_);
  if (group >= slots_.size()) {
    return CompleteOutcome::kUnknown;
  }
  Slot& slot = slots_[group];
  if (slot.state == State::kCompleted) {
    ++duplicate_completions_;
    PLOG(INFO) << "duplicate completion of group " << group << " from node " << node
               << " (lease " << lease_id << "); output identical, deduped";
    return CompleteOutcome::kDuplicate;
  }
  // A completion from an expired-and-not-yet-reissued lease, a superseded lease, or
  // even a quarantined group still means the output object is durable under the right
  // key — the work is done no matter whose lease "won".
  if (slot.state == State::kLeased) {
    --outstanding_;
    if (slot.lease_id != lease_id) {
      PLOG(INFO) << "group " << group << " completed by node " << node << " under lease "
                 << lease_id << " while lease " << slot.lease_id << " was live";
    }
  }
  if (slot.state == State::kQuarantined) {
    --quarantined_;
    PLOG(WARN) << "group " << group << " completed by node " << node
               << " after quarantine; un-quarantining";
  }
  slot.state = State::kCompleted;
  ++completed_;
  CountCompletionLocked(node);
  return CompleteOutcome::kFirst;
}

bool LeaseTable::Fail(size_t node, uint64_t lease_id, size_t group,
                      const std::string& error) {
  MutexLock lock(mu_);
  if (group >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[group];
  if (slot.state == State::kCompleted || slot.state == State::kQuarantined) {
    return false;  // settled; a stale failure changes nothing
  }
  if (slot.state == State::kLeased) {
    --outstanding_;
  }
  slot.last_error = error;
  PLOG(WARN) << "group " << group << " failed on node " << node << " (lease " << lease_id
             << ", attempt " << slot.attempts << "): " << error;
  if (slot.attempts >= options_.max_attempts) {
    slot.state = State::kQuarantined;
    ++quarantined_;
    PLOG(ERROR) << "group " << group << " quarantined after " << slot.attempts
                << " attempt(s): " << error;
    return true;
  }
  slot.state = State::kPending;
  scan_ = std::min(scan_, group);
  return false;
}

void LeaseTable::Renew(size_t node, double now) {
  MutexLock lock(mu_);
  if (options_.lease_timeout_sec <= 0) {
    return;
  }
  for (Slot& slot : slots_) {
    if (slot.state == State::kLeased && slot.holder == node) {
      slot.deadline = now + options_.lease_timeout_sec;
    }
  }
}

size_t LeaseTable::ReleaseNode(size_t node) {
  MutexLock lock(mu_);
  size_t released = 0;
  for (size_t g = 0; g < slots_.size(); ++g) {
    Slot& slot = slots_[g];
    if (slot.state == State::kLeased && slot.holder == node) {
      slot.state = State::kPending;
      --outstanding_;
      ++released;
      scan_ = std::min(scan_, g);
    }
  }
  return released;
}

size_t LeaseTable::ReapExpired(double now) {
  MutexLock lock(mu_);
  return ReapExpiredLocked(now);
}

bool LeaseTable::drained() const {
  MutexLock lock(mu_);
  return completed_ + quarantined_ == slots_.size();
}

LeaseTableStats LeaseTable::stats() const {
  MutexLock lock(mu_);
  LeaseTableStats stats;
  stats.num_groups = slots_.size();
  stats.completed = completed_;
  stats.quarantined = quarantined_;
  stats.outstanding = outstanding_;
  stats.reissues = reissues_;
  stats.expired_reclaims = expired_reclaims_;
  stats.duplicate_completions = duplicate_completions_;
  stats.per_node_completed = per_node_completed_;
  return stats;
}

std::vector<QuarantinedGroup> LeaseTable::quarantined_groups() const {
  MutexLock lock(mu_);
  std::vector<QuarantinedGroup> out;
  for (size_t g = 0; g < slots_.size(); ++g) {
    const Slot& slot = slots_[g];
    if (slot.state == State::kQuarantined) {
      out.push_back({g, slot.attempts, slot.last_error});
    }
  }
  return out;
}

std::optional<size_t> LeaseTable::AcquireCompleted(size_t node) {
  MutexLock lock(mu_);
  while (scan_ < slots_.size() && slots_[scan_].state != State::kPending) {
    ++scan_;
  }
  size_t group = scan_;
  if (group >= slots_.size()) {
    for (group = 0; group < slots_.size(); ++group) {
      if (slots_[group].state == State::kPending) {
        break;
      }
    }
    if (group >= slots_.size()) {
      return std::nullopt;
    }
  }
  // Grant and settle in the same critical section: the hand-out and its accounting
  // are one atomic step (this is the fixed ManifestServer::Next).
  Slot& slot = slots_[group];
  slot.lease_id = next_lease_id_++;
  ++slot.attempts;
  slot.state = State::kCompleted;
  ++completed_;
  CountCompletionLocked(node);
  return group;
}

}  // namespace persona::cluster
