#include "src/genome/read_simulator.h"

#include <algorithm>
#include <cmath>

#include "src/compress/base_compaction.h"
#include "src/util/string_util.h"

namespace persona::genome {

namespace {

// Phred+33 quality character for error probability p.
char PhredChar(double p) {
  int q = static_cast<int>(-10.0 * std::log10(std::max(p, 1e-5)));
  q = std::clamp(q, 2, 41);
  return static_cast<char>('!' + q);
}

double PhredProb(char qc) {
  int q = qc - '!';
  return std::pow(10.0, -q / 10.0);
}

}  // namespace

Result<ReadTruth> ParseReadTruth(const ReferenceGenome& reference, std::string_view metadata) {
  // Pair mates carry a FASTQ-style "/1" or "/2" suffix (NextPair); the truth fields are
  // identical for both ends, so the suffix is simply stripped.
  if (metadata.size() >= 2 && metadata[metadata.size() - 2] == '/' &&
      (metadata.back() == '1' || metadata.back() == '2')) {
    metadata.remove_suffix(2);
  }
  auto fields = SplitString(metadata, ':');
  if (fields.size() < 5 || fields[0] != "sim") {
    return InvalidArgumentError("metadata is not simulator-formatted: " +
                                std::string(metadata));
  }
  ReadTruth truth;
  PERSONA_ASSIGN_OR_RETURN(truth.contig_index, reference.FindContig(fields[1]));
  truth.position = ParseInt64(fields[2]);
  if (truth.position < 0) {
    return InvalidArgumentError("bad position in metadata");
  }
  if (fields[3] == "R") {
    truth.reverse = true;
  } else if (fields[3] != "F") {
    return InvalidArgumentError("bad strand in metadata");
  }
  int64_t serial = ParseInt64(fields[4]);
  if (serial < 0) {
    return InvalidArgumentError("bad serial in metadata");
  }
  truth.serial = static_cast<uint64_t>(serial);
  truth.duplicate = fields.size() > 5 && fields[5] == "d";
  return truth;
}

ReadSimulator::ReadSimulator(const ReferenceGenome* reference, const ReadSimSpec& spec)
    : reference_(reference), spec_(spec), rng_(spec.seed) {}

ReadSimulator::Fragment ReadSimulator::SampleFragment(int length) {
  while (true) {
    // Pick a contig proportional to its length, then a start that fits.
    int64_t g = static_cast<int64_t>(rng_.Uniform(
        static_cast<uint64_t>(std::max<int64_t>(reference_->total_length(), 1))));
    auto pos = reference_->GlobalToLocal(g);
    if (!pos.ok()) {
      continue;
    }
    const Contig& contig = reference_->contig(static_cast<size_t>(pos->contig_index));
    if (pos->offset + length > static_cast<int64_t>(contig.sequence.size())) {
      continue;  // does not fit; resample
    }
    bool reverse = rng_.Bernoulli(spec_.reverse_fraction);
    return Fragment{pos->contig_index, pos->offset, reverse};
  }
}

std::string ReadSimulator::MakeQuality(int length) {
  std::string qual;
  qual.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    // Illumina-like profile: high quality early, degrading toward the 3' end.
    double frac = static_cast<double>(i) / std::max(1, length - 1);
    double p = 0.001 + 0.009 * frac * frac;
    // Add jitter so qualities are not constant.
    p *= (0.5 + rng_.UniformDouble());
    qual.push_back(PhredChar(p));
  }
  return qual;
}

std::string ReadSimulator::ApplyErrors(std::string_view tmpl, const std::string& qual) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  std::string out;
  out.reserve(tmpl.size());
  for (size_t i = 0; i < tmpl.size(); ++i) {
    // Indels first (rare).
    if (rng_.Bernoulli(spec_.indel_rate)) {
      if (rng_.Bernoulli(0.5)) {
        continue;  // deletion: skip this template base
      }
      out.push_back(kBases[rng_.Uniform(4)]);  // insertion before the base
    }
    char base = tmpl[i];
    double err = spec_.substitution_rate + PhredProb(qual[std::min(i, qual.size() - 1)]);
    if (rng_.Bernoulli(err)) {
      char sub = base;
      while (sub == base) {
        sub = kBases[rng_.Uniform(4)];
      }
      base = sub;
    }
    out.push_back(base);
    if (out.size() >= tmpl.size()) {
      break;  // keep read length fixed even after insertions
    }
  }
  // Insertions may overshoot by one; deletions may undershoot. Normalize the length so
  // bases and qualities always agree.
  if (out.size() > tmpl.size()) {
    out.resize(tmpl.size());
  }
  while (out.size() < tmpl.size()) {
    out.push_back(kBases[rng_.Uniform(4)]);
  }
  return out;
}

Read ReadSimulator::MakeRead(const Fragment& frag, int length, bool duplicate) {
  const Contig& contig = reference_->contig(static_cast<size_t>(frag.contig_index));
  std::string_view tmpl =
      std::string_view(contig.sequence).substr(static_cast<size_t>(frag.position),
                                               static_cast<size_t>(length));
  std::string oriented(tmpl);
  if (frag.reverse) {
    oriented = compress::ReverseComplement(oriented);
  }
  Read read;
  read.qual = MakeQuality(length);
  read.bases = ApplyErrors(oriented, read.qual);
  read.metadata = StrFormat("sim:%s:%lld:%c:%llu%s", contig.name.c_str(),
                            static_cast<long long>(frag.position), frag.reverse ? 'R' : 'F',
                            static_cast<unsigned long long>(serial_++),
                            duplicate ? ":d" : "");
  return read;
}

Read ReadSimulator::NextRead() {
  bool duplicate = !recent_fragments_.empty() && rng_.Bernoulli(spec_.duplicate_fraction);
  Fragment frag;
  if (duplicate) {
    frag = recent_fragments_[rng_.Uniform(recent_fragments_.size())];
  } else {
    frag = SampleFragment(spec_.read_length);
    // Bound the duplicate pool so memory stays constant over long simulations.
    if (recent_fragments_.size() < 4096) {
      recent_fragments_.push_back(frag);
    } else {
      recent_fragments_[rng_.Uniform(recent_fragments_.size())] = frag;
    }
  }
  return MakeRead(frag, spec_.read_length, duplicate);
}

std::pair<Read, Read> ReadSimulator::NextPair() {
  int insert = std::max(
      2 * spec_.read_length,
      static_cast<int>(std::lround(rng_.Normal(spec_.insert_mean, spec_.insert_stddev))));
  // Sample a fragment long enough for the whole insert.
  Fragment frag;
  while (true) {
    frag = SampleFragment(insert);
    break;
  }
  // First mate: forward at the left end. Second mate: reverse at the right end.
  Fragment left{frag.contig_index, frag.position, false};
  Fragment right{frag.contig_index, frag.position + insert - spec_.read_length, true};
  Read r1 = MakeRead(left, spec_.read_length, /*duplicate=*/false);
  Read r2 = MakeRead(right, spec_.read_length, /*duplicate=*/false);
  // Pair mates share a name stem: suffix /1 and /2, FASTQ-style.
  r1.metadata += "/1";
  r2.metadata += "/2";
  return {std::move(r1), std::move(r2)};
}

std::vector<Read> ReadSimulator::Simulate(size_t n) {
  std::vector<Read> reads;
  reads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reads.push_back(NextRead());
  }
  return reads;
}

}  // namespace persona::genome
