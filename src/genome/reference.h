// Reference genome model: a set of named contigs with global-coordinate mapping.
//
// Aligners work in a single global coordinate space (the concatenation of all contigs);
// SAM/AGD results are reported per-contig. This mirrors how SNAP and BWA treat hg19.

#ifndef PERSONA_SRC_GENOME_REFERENCE_H_
#define PERSONA_SRC_GENOME_REFERENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace persona::genome {

// Global offset into the concatenated reference, or kInvalidLocation for unmapped.
using GenomeLocation = int64_t;
inline constexpr GenomeLocation kInvalidLocation = -1;

struct Contig {
  std::string name;
  std::string sequence;  // uppercase A/C/G/T/N
};

// Position expressed relative to one contig.
struct ContigPosition {
  int32_t contig_index = -1;
  int64_t offset = -1;  // 0-based within the contig

  bool valid() const { return contig_index >= 0; }
  bool operator==(const ContigPosition&) const = default;
};

class ReferenceGenome {
 public:
  ReferenceGenome() = default;
  explicit ReferenceGenome(std::vector<Contig> contigs);

  const std::vector<Contig>& contigs() const { return contigs_; }
  size_t num_contigs() const { return contigs_.size(); }
  const Contig& contig(size_t i) const { return contigs_[i]; }

  // Total bases across all contigs.
  int64_t total_length() const { return total_length_; }

  Result<int32_t> FindContig(std::string_view name) const;

  // Maps a global location to (contig, offset). Fails if out of range.
  Result<ContigPosition> GlobalToLocal(GenomeLocation loc) const;
  // Maps (contig index, offset) to a global location. Fails if out of range.
  Result<GenomeLocation> LocalToGlobal(int32_t contig_index, int64_t offset) const;

  // Start of contig i in global coordinates.
  GenomeLocation contig_start(size_t i) const { return starts_[i]; }

  // Reads `len` bases starting at global location `loc`; clipped at contig boundaries is
  // an error (reads never span contigs).
  Result<std::string_view> Slice(GenomeLocation loc, size_t len) const;

  // Direct access to the base at a global location (no bounds check).
  char BaseAt(GenomeLocation loc) const;

 private:
  std::vector<Contig> contigs_;
  std::vector<GenomeLocation> starts_;  // starts_[i] = global start of contig i
  int64_t total_length_ = 0;
};

}  // namespace persona::genome

#endif  // PERSONA_SRC_GENOME_REFERENCE_H_
