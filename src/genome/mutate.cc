#include "src/genome/mutate.h"

#include <algorithm>
#include <cassert>

#include "src/util/rng.h"

namespace persona::genome {
namespace {

constexpr char kAlphabet[4] = {'A', 'C', 'G', 'T'};

// A base different from `ref`, uniform over the remaining three.
char SubstituteBase(Rng& rng, char ref) {
  while (true) {
    char b = kAlphabet[rng.Uniform(4)];
    if (b != ref) {
      return b;
    }
  }
}

std::string RandomBases(Rng& rng, int len) {
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.Uniform(4)]);
  }
  return s;
}

// True when positions [pos, pos+len) are all plain bases (mutating an 'N' region would
// create alleles the caller cannot evaluate against the reference).
bool RegionIsPlain(const std::string& seq, int64_t pos, int64_t len) {
  for (int64_t i = pos; i < pos + len; ++i) {
    char c = seq[static_cast<size_t>(i)];
    if (c != 'A' && c != 'C' && c != 'G' && c != 'T') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view VariantTypeName(VariantType type) {
  switch (type) {
    case VariantType::kSnv:
      return "SNV";
    case VariantType::kInsertion:
      return "INS";
    case VariantType::kDeletion:
      return "DEL";
  }
  return "?";
}

int64_t DonorGenome::CountType(VariantType type) const {
  return std::count_if(variants.begin(), variants.end(),
                       [type](const TrueVariant& v) { return v.type == type; });
}

DonorGenome MutateGenome(const ReferenceGenome& reference, const MutationSpec& spec) {
  assert(spec.max_indel_length >= 1);
  Rng rng(spec.seed);
  DonorGenome donor;
  std::vector<Contig> hap_a_contigs;
  std::vector<Contig> hap_b_contigs;
  hap_a_contigs.reserve(reference.num_contigs());
  hap_b_contigs.reserve(reference.num_contigs());

  const double any_rate = spec.snv_rate + spec.insertion_rate + spec.deletion_rate;

  for (size_t ci = 0; ci < reference.num_contigs(); ++ci) {
    const Contig& contig = reference.contig(ci);
    const std::string& ref = contig.sequence;
    const int64_t len = static_cast<int64_t>(ref.size());
    std::string hap_a;
    std::string hap_b;
    hap_a.reserve(ref.size() + ref.size() / 64);
    hap_b.reserve(ref.size() + ref.size() / 64);

    int64_t next_allowed = 1;  // position 0 is reserved: indels need a left anchor
    for (int64_t p = 0; p < len;) {
      const char ref_base = ref[static_cast<size_t>(p)];
      bool mutate = p >= next_allowed && ref_base != 'N' && rng.Bernoulli(any_rate);
      if (!mutate) {
        hap_a.push_back(ref_base);
        hap_b.push_back(ref_base);
        ++p;
        continue;
      }

      // Which type? Conditional split of the combined rate.
      double u = rng.UniformDouble() * any_rate;
      VariantType type = u < spec.snv_rate ? VariantType::kSnv
                         : u < spec.snv_rate + spec.insertion_rate ? VariantType::kInsertion
                                                                   : VariantType::kDeletion;

      TrueVariant v;
      v.contig_index = static_cast<int32_t>(ci);
      v.position = p;
      v.type = type;
      v.heterozygous = rng.Bernoulli(spec.heterozygous_fraction);
      v.haplotype_mask = v.heterozygous ? (rng.Bernoulli(0.5) ? 0x1 : 0x2) : 0x3;
      const bool on_a = (v.haplotype_mask & 0x1) != 0;
      const bool on_b = (v.haplotype_mask & 0x2) != 0;

      switch (type) {
        case VariantType::kSnv: {
          char alt = SubstituteBase(rng, ref_base);
          v.ref_allele.assign(1, ref_base);
          v.alt_allele.assign(1, alt);
          hap_a.push_back(on_a ? alt : ref_base);
          hap_b.push_back(on_b ? alt : ref_base);
          ++p;
          break;
        }
        case VariantType::kInsertion: {
          int ins_len = static_cast<int>(rng.UniformInt(1, spec.max_indel_length));
          std::string inserted = RandomBases(rng, ins_len);
          v.ref_allele.assign(1, ref_base);
          v.alt_allele = v.ref_allele + inserted;
          hap_a.push_back(ref_base);
          hap_b.push_back(ref_base);
          if (on_a) {
            hap_a.append(inserted);
          }
          if (on_b) {
            hap_b.append(inserted);
          }
          ++p;
          break;
        }
        case VariantType::kDeletion: {
          int64_t max_del = std::min<int64_t>(spec.max_indel_length, len - p - 1);
          if (max_del < 1 || !RegionIsPlain(ref, p, max_del + 1)) {
            // No room (or 'N' in the window): fall back to emitting the reference base.
            hap_a.push_back(ref_base);
            hap_b.push_back(ref_base);
            ++p;
            continue;
          }
          int64_t del_len = rng.UniformInt(1, max_del);
          v.ref_allele = ref.substr(static_cast<size_t>(p), static_cast<size_t>(del_len) + 1);
          v.alt_allele.assign(1, ref_base);
          hap_a.push_back(ref_base);
          hap_b.push_back(ref_base);
          for (int64_t q = p + 1; q <= p + del_len; ++q) {
            const char kept = ref[static_cast<size_t>(q)];
            if (!on_a) {
              hap_a.push_back(kept);
            }
            if (!on_b) {
              hap_b.push_back(kept);
            }
          }
          p += del_len + 1;
          break;
        }
      }

      donor.variants.push_back(std::move(v));
      next_allowed = p + spec.min_spacing;
    }

    hap_a_contigs.push_back({contig.name, std::move(hap_a)});
    hap_b_contigs.push_back({contig.name, std::move(hap_b)});
  }

  donor.haplotypes[0] = ReferenceGenome(std::move(hap_a_contigs));
  donor.haplotypes[1] = ReferenceGenome(std::move(hap_b_contigs));
  // Variants were generated in (contig, position) order already; assert in debug builds.
  assert(std::is_sorted(donor.variants.begin(), donor.variants.end(),
                        [](const TrueVariant& x, const TrueVariant& y) {
                          return std::tie(x.contig_index, x.position) <
                                 std::tie(y.contig_index, y.position);
                        }));
  return donor;
}

}  // namespace persona::genome
