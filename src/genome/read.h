// The core read record: the three fields a sequencing machine produces (paper §2.1):
// bases, per-base quality scores, and uniquely identifying metadata.

#ifndef PERSONA_SRC_GENOME_READ_H_
#define PERSONA_SRC_GENOME_READ_H_

#include <string>

namespace persona::genome {

struct Read {
  std::string bases;     // A/C/G/T/N
  std::string qual;      // Phred+33 ASCII, same length as bases
  std::string metadata;  // read name / identifier

  bool operator==(const Read&) const = default;
};

}  // namespace persona::genome

#endif  // PERSONA_SRC_GENOME_READ_H_
