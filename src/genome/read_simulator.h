// wgsim-style read simulator (substitute for the ERR174324 Illumina dataset).
//
// Samples reads uniformly from a reference, applies a position-dependent quality profile,
// introduces substitution and indel errors, optionally emits PCR-style duplicates, and
// encodes ground truth in the read metadata so tests can score aligner accuracy:
//   sim:<contig>:<0-based pos>:<F|R>:<serial>[:d]      (":d" marks an intended duplicate)

#ifndef PERSONA_SRC_GENOME_READ_SIMULATOR_H_
#define PERSONA_SRC_GENOME_READ_SIMULATOR_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/genome/read.h"
#include "src/genome/reference.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace persona::genome {

struct ReadSimSpec {
  int read_length = 101;           // the paper's dataset uses 101-bp reads
  double substitution_rate = 0.005;
  double indel_rate = 0.0002;
  double reverse_fraction = 0.5;   // probability of sampling the reverse strand
  double duplicate_fraction = 0.0; // probability a read is a duplicate of a previous one
  bool paired = false;
  int insert_mean = 350;
  int insert_stddev = 30;
  uint64_t seed = 7;
};

// Ground truth parsed back out of a simulated read's metadata.
struct ReadTruth {
  int32_t contig_index = -1;
  int64_t position = -1;
  bool reverse = false;
  uint64_t serial = 0;
  bool duplicate = false;
};

// Parses "sim:..." metadata; error if the read was not produced by this simulator.
Result<ReadTruth> ParseReadTruth(const ReferenceGenome& reference, std::string_view metadata);

class ReadSimulator {
 public:
  ReadSimulator(const ReferenceGenome* reference, const ReadSimSpec& spec);

  // Generates the next single-end read.
  Read NextRead();

  // Generates a read pair (forward/reverse of one fragment). Requires spec.paired.
  std::pair<Read, Read> NextPair();

  // Convenience: n single-end reads.
  std::vector<Read> Simulate(size_t n);

 private:
  struct Fragment {
    int32_t contig_index;
    int64_t position;  // leftmost position of the sampled segment
    bool reverse;
  };

  Fragment SampleFragment(int length);
  Read MakeRead(const Fragment& frag, int length, bool duplicate);
  std::string ApplyErrors(std::string_view tmpl, const std::string& qual);
  std::string MakeQuality(int length);

  const ReferenceGenome* reference_;
  ReadSimSpec spec_;
  Rng rng_;
  uint64_t serial_ = 0;
  std::vector<Fragment> recent_fragments_;  // duplicate source pool
};

}  // namespace persona::genome

#endif  // PERSONA_SRC_GENOME_READ_SIMULATOR_H_
