// Diploid donor genome generator: injects known germline variants into a reference.
//
// Variant calling (the paper's stated next integration step, §8) needs reads that carry
// real mutations relative to the reference they are aligned to. This module produces a
// two-haplotype "donor" from a reference plus the exact truth set of injected variants,
// so the end-to-end pipeline (simulate reads from donor -> align to reference -> sort ->
// dedup -> pileup -> call) can be scored for precision/recall against ground truth.
//
// Truth variants are recorded in normalized VCF conventions: SNVs are single-base
// substitutions; insertions/deletions carry one anchor reference base, with `position`
// the 0-based reference coordinate of that anchor.

#ifndef PERSONA_SRC_GENOME_MUTATE_H_
#define PERSONA_SRC_GENOME_MUTATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/genome/reference.h"

namespace persona::genome {

enum class VariantType : uint8_t {
  kSnv = 0,
  kInsertion = 1,
  kDeletion = 2,
};

std::string_view VariantTypeName(VariantType type);

// One injected germline variant, in reference coordinates.
struct TrueVariant {
  int32_t contig_index = -1;
  int64_t position = -1;    // 0-based; anchor base for indels
  VariantType type = VariantType::kSnv;
  std::string ref_allele;   // reference bases ("A" for SNV, anchor+deleted for DEL)
  std::string alt_allele;   // donor bases ("G" for SNV, anchor+inserted for INS)
  bool heterozygous = false;
  uint8_t haplotype_mask = 0x3;  // bit 0 = haplotype A carries it, bit 1 = haplotype B

  // Diploid genotype in VCF notation: "1/1" for homozygous-alt, "0/1" for heterozygous.
  std::string GenotypeString() const { return heterozygous ? "0/1" : "1/1"; }

  bool operator==(const TrueVariant&) const = default;
};

struct MutationSpec {
  double snv_rate = 0.001;        // per reference base (human-like: ~1 SNV / kb)
  double insertion_rate = 1e-4;
  double deletion_rate = 1e-4;
  int max_indel_length = 8;       // uniform in [1, max]
  double heterozygous_fraction = 0.6;
  // Minimum reference distance between injected variants. Spacing keeps the truth set
  // unambiguous (no overlapping alleles), which callers and the scorer rely on.
  int min_spacing = 12;
  uint64_t seed = 1789;
};

// A diploid donor: two haplotype genomes plus the variants that distinguish them from
// the reference. Haplotype contigs keep the reference contig names so read-simulation
// metadata stays parseable.
struct DonorGenome {
  std::array<ReferenceGenome, 2> haplotypes;
  std::vector<TrueVariant> variants;  // sorted by (contig_index, position)

  // Count of variants of one type (diagnostics / tests).
  int64_t CountType(VariantType type) const;
};

// Generates a deterministic donor for the given spec. Bases 'N' never mutate and indels
// are never placed so close to a contig end that the anchor+allele would run off.
DonorGenome MutateGenome(const ReferenceGenome& reference, const MutationSpec& spec);

}  // namespace persona::genome

#endif  // PERSONA_SRC_GENOME_MUTATE_H_
