#include "src/genome/reference.h"

#include <algorithm>

namespace persona::genome {

ReferenceGenome::ReferenceGenome(std::vector<Contig> contigs) : contigs_(std::move(contigs)) {
  starts_.reserve(contigs_.size());
  for (const Contig& c : contigs_) {
    starts_.push_back(total_length_);
    total_length_ += static_cast<int64_t>(c.sequence.size());
  }
}

Result<int32_t> ReferenceGenome::FindContig(std::string_view name) const {
  for (size_t i = 0; i < contigs_.size(); ++i) {
    if (contigs_[i].name == name) {
      return static_cast<int32_t>(i);
    }
  }
  return NotFoundError("no such contig: " + std::string(name));
}

Result<ContigPosition> ReferenceGenome::GlobalToLocal(GenomeLocation loc) const {
  if (loc < 0 || loc >= total_length_) {
    return OutOfRangeError("global location out of range: " + std::to_string(loc));
  }
  // Binary search over contig start offsets.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), loc);
  size_t idx = static_cast<size_t>(it - starts_.begin()) - 1;
  return ContigPosition{static_cast<int32_t>(idx), loc - starts_[idx]};
}

Result<GenomeLocation> ReferenceGenome::LocalToGlobal(int32_t contig_index,
                                                      int64_t offset) const {
  if (contig_index < 0 || static_cast<size_t>(contig_index) >= contigs_.size()) {
    return OutOfRangeError("contig index out of range");
  }
  const Contig& c = contigs_[static_cast<size_t>(contig_index)];
  if (offset < 0 || offset >= static_cast<int64_t>(c.sequence.size())) {
    return OutOfRangeError("offset out of range for contig " + c.name);
  }
  return starts_[static_cast<size_t>(contig_index)] + offset;
}

Result<std::string_view> ReferenceGenome::Slice(GenomeLocation loc, size_t len) const {
  PERSONA_ASSIGN_OR_RETURN(ContigPosition pos, GlobalToLocal(loc));
  const Contig& c = contigs_[static_cast<size_t>(pos.contig_index)];
  if (pos.offset + static_cast<int64_t>(len) > static_cast<int64_t>(c.sequence.size())) {
    return OutOfRangeError("slice spans contig boundary");
  }
  return std::string_view(c.sequence).substr(static_cast<size_t>(pos.offset), len);
}

char ReferenceGenome::BaseAt(GenomeLocation loc) const {
  auto pos = GlobalToLocal(loc);
  if (!pos.ok()) {
    return 'N';
  }
  return contigs_[static_cast<size_t>(pos->contig_index)]
      .sequence[static_cast<size_t>(pos->offset)];
}

}  // namespace persona::genome
