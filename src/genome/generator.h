// Synthetic reference genome generator.
//
// Stands in for hg19 (DESIGN.md §1): produces a multi-contig genome with configurable GC
// content and injected repeats. Repeats matter because they create ambiguous seed hits,
// which is what makes real aligners need candidate voting and MAPQ.

#ifndef PERSONA_SRC_GENOME_GENERATOR_H_
#define PERSONA_SRC_GENOME_GENERATOR_H_

#include <cstdint>

#include "src/genome/reference.h"

namespace persona::genome {

struct GenomeSpec {
  int num_contigs = 2;
  int64_t contig_length = 100'000;
  double gc_content = 0.41;        // hg19-like
  double repeat_fraction = 0.05;   // fraction of each contig rewritten as repeat copies
  int64_t repeat_unit_length = 300;
  double repeat_mutation_rate = 0.01;  // divergence between repeat copies
  uint64_t seed = 42;
};

// Generates a deterministic synthetic reference for the given spec. Contigs are named
// "chr1".."chrN" to keep SAM headers familiar.
ReferenceGenome GenerateGenome(const GenomeSpec& spec);

}  // namespace persona::genome

#endif  // PERSONA_SRC_GENOME_GENERATOR_H_
