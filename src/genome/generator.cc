#include "src/genome/generator.h"

#include <algorithm>

#include "src/util/rng.h"

namespace persona::genome {

namespace {

char RandomBase(Rng& rng, double gc_content) {
  // P(G or C) = gc_content, split evenly; same for A/T.
  double u = rng.UniformDouble();
  if (u < gc_content / 2) {
    return 'G';
  }
  if (u < gc_content) {
    return 'C';
  }
  if (u < gc_content + (1.0 - gc_content) / 2) {
    return 'A';
  }
  return 'T';
}

void MutateCopy(Rng& rng, double rate, std::string* segment) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (char& c : *segment) {
    if (rng.Bernoulli(rate)) {
      c = kBases[rng.Uniform(4)];
    }
  }
}

}  // namespace

ReferenceGenome GenerateGenome(const GenomeSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Contig> contigs;
  contigs.reserve(static_cast<size_t>(spec.num_contigs));

  for (int ci = 0; ci < spec.num_contigs; ++ci) {
    std::string seq;
    seq.reserve(static_cast<size_t>(spec.contig_length));
    for (int64_t i = 0; i < spec.contig_length; ++i) {
      seq.push_back(RandomBase(rng, spec.gc_content));
    }

    // Inject repeats: overwrite windows with mutated copies of earlier material.
    if (spec.repeat_fraction > 0 && spec.contig_length > 4 * spec.repeat_unit_length) {
      int64_t repeat_bases =
          static_cast<int64_t>(spec.repeat_fraction * static_cast<double>(spec.contig_length));
      int64_t placed = 0;
      while (placed + spec.repeat_unit_length <= repeat_bases) {
        int64_t src = rng.UniformInt(0, spec.contig_length - spec.repeat_unit_length - 1);
        int64_t dst = rng.UniformInt(0, spec.contig_length - spec.repeat_unit_length - 1);
        if (std::abs(src - dst) < spec.repeat_unit_length) {
          continue;  // avoid self-overlapping copies
        }
        std::string copy = seq.substr(static_cast<size_t>(src),
                                      static_cast<size_t>(spec.repeat_unit_length));
        MutateCopy(rng, spec.repeat_mutation_rate, &copy);
        seq.replace(static_cast<size_t>(dst), copy.size(), copy);
        placed += spec.repeat_unit_length;
      }
    }

    contigs.push_back(Contig{"chr" + std::to_string(ci + 1), std::move(seq)});
  }
  return ReferenceGenome(std::move(contigs));
}

}  // namespace persona::genome
