// FASTQ parsing and writing (paper §2.2).
//
// FASTQ is the row-oriented text format sequencers emit: four lines per read
// (@metadata / bases / + / qualities). Parsing is structural (line-counted), which
// sidesteps the classic "@ is also a quality character" ambiguity the paper notes.

#ifndef PERSONA_SRC_FORMAT_FASTQ_H_
#define PERSONA_SRC_FORMAT_FASTQ_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/read.h"
#include "src/util/result.h"

namespace persona::format {

// Parses a complete FASTQ document (strict: every record must have 4 well-formed lines,
// bases and quality lengths must agree). Appends to `out`.
Status ParseFastq(std::string_view text, std::vector<genome::Read>* out);

// Incremental parser for streamed import: feed arbitrary byte windows, reads are emitted
// as soon as their 4th line is complete.
class FastqParser {
 public:
  // Consumes `bytes`; appends completed reads to `out`.
  Status Feed(std::string_view bytes, std::vector<genome::Read>* out);

  // Must be called after the last Feed; errors if a record is mid-flight.
  Status Finish() const;

 private:
  Status ConsumeLine(std::string_view line, std::vector<genome::Read>* out);

  std::string pending_;   // partial line carried across Feed calls
  int line_in_record_ = 0;
  genome::Read current_;
};

// Serializes reads to FASTQ text, appending to `out`.
void WriteFastq(std::span<const genome::Read> reads, std::string* out);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_FASTQ_H_
