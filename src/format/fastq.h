// FASTQ parsing and writing (paper §2.2).
//
// FASTQ is the row-oriented text format sequencers emit: four lines per read
// (@metadata / bases / + / qualities). Parsing is structural (line-counted), which
// sidesteps the classic "@ is also a quality character" ambiguity the paper notes.

#ifndef PERSONA_SRC_FORMAT_FASTQ_H_
#define PERSONA_SRC_FORMAT_FASTQ_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/read.h"
#include "src/util/result.h"

namespace persona::format {

// Parses a complete FASTQ document (strict: every record must have 4 well-formed lines,
// bases and quality lengths must agree). Appends to `out`.
Status ParseFastq(std::string_view text, std::vector<genome::Read>* out);

// Incremental parser for streamed import: feed arbitrary byte windows, reads are emitted
// as soon as their 4th line is complete.
class FastqParser {
 public:
  // Consumes `bytes`; appends completed reads to `out`.
  Status Feed(std::string_view bytes, std::vector<genome::Read>* out);

  // Must be called after the last Feed; errors if a record is mid-flight.
  Status Finish() const;

 private:
  Status ConsumeLine(std::string_view line, std::vector<genome::Read>* out);

  std::string pending_;   // partial line carried across Feed calls
  int line_in_record_ = 0;
  genome::Read current_;
};

// Batches an incremental FASTQ stream into fixed-size record groups: the unit of work
// both the offline importer and the stream-ingest service hand to the AGD chunk
// builders. Feed arbitrary byte windows (a decompressed file slice, a socket frame);
// TakeBatch returns exactly `batch_size` reads while more are buffered, and the
// partial tail batch once Finish() has sealed the stream. Keeping the batching here —
// not in each tool — is what makes socket ingest bit-identical to offline import.
class FastqRecordBatcher {
 public:
  explicit FastqRecordBatcher(size_t batch_size)
      : batch_size_(batch_size == 0 ? 1 : batch_size) {}

  // Consumes `bytes` (may end mid-line or mid-record).
  Status Feed(std::string_view bytes);

  // Seals the stream after the last Feed; errors if a record is mid-flight. A
  // missing final newline is tolerated (matching ParseFastq).
  Status Finish();

  // True when TakeBatch would return a batch.
  bool HasBatch() const {
    return ready_.size() >= batch_size_ || (finished_ && !ready_.empty());
  }
  bool finished() const { return finished_; }
  size_t buffered() const { return ready_.size(); }
  // Records parsed so far (taken or still buffered).
  uint64_t total_records() const { return total_records_; }

  // Removes and returns the next batch, or nullopt when none is available (more input
  // needed, or the stream is finished and drained).
  std::optional<std::vector<genome::Read>> TakeBatch();

 private:
  const size_t batch_size_;
  FastqParser parser_;
  std::vector<genome::Read> ready_;
  uint64_t total_records_ = 0;
  bool at_line_start_ = true;  // last fed byte was '\n' (or nothing fed yet)
  bool finished_ = false;
};

// Serializes reads to FASTQ text, appending to `out`.
void WriteFastq(std::span<const genome::Read> reads, std::string* out);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_FASTQ_H_
