#include "src/format/refcomp.h"

#include "src/compress/base_compaction.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace persona::format {
namespace {

constexpr uint64_t kTagRaw = 0;
constexpr uint64_t kTagRefBased = 1;

// One substitution relative to the reference projection.
struct Substitution {
  int64_t read_offset;  // forward-reference read coordinates
  char base;
};

void EncodeRaw(std::string_view bases, Buffer* out, RefCompStats* stats) {
  const size_t before = out->size();
  PutVarint(kTagRaw, out);
  PutVarint(bases.size(), out);
  compress::PackBases(bases, out);
  ++stats->raw_fallback;
  stats->encoded_bytes += static_cast<int64_t>(out->size() - before);
}

// Projects the read against the reference. Returns false when the read cannot be
// reconstructed from (reference, result) — the caller then falls back to raw.
bool CollectDiffs(const genome::ReferenceGenome& reference, std::string_view fwd,
                  const align::AlignmentResult& result,
                  const std::vector<align::CigarOp>& ops, std::vector<Substitution>* subs,
                  std::string* extra) {
  genome::GenomeLocation ref_pos = result.location;
  int64_t read_off = 0;
  const int64_t read_len = static_cast<int64_t>(fwd.size());
  for (const align::CigarOp& op : ops) {
    switch (op.op) {
      case 'M':
      case '=':
      case 'X': {
        if (read_off + op.length > read_len) {
          return false;
        }
        auto slice = reference.Slice(ref_pos, static_cast<size_t>(op.length));
        if (!slice.ok()) {
          return false;
        }
        std::string_view ref_seg = *slice;
        for (int64_t i = 0; i < op.length; ++i) {
          char b = fwd[static_cast<size_t>(read_off + i)];
          if (b != ref_seg[static_cast<size_t>(i)]) {
            subs->push_back({read_off + i, b});
          }
        }
        ref_pos += op.length;
        read_off += op.length;
        break;
      }
      case 'I':
      case 'S': {
        if (read_off + op.length > read_len) {
          return false;
        }
        extra->append(fwd.substr(static_cast<size_t>(read_off),
                                 static_cast<size_t>(op.length)));
        read_off += op.length;
        break;
      }
      case 'D':
      case 'N':
        ref_pos += op.length;
        break;
      default:
        break;  // H, P: no bases on either side
    }
  }
  return read_off == read_len;
}

}  // namespace

void RefCompStats::Add(const RefCompStats& other) {
  records += other.records;
  ref_encoded += other.ref_encoded;
  raw_fallback += other.raw_fallback;
  substitutions += other.substitutions;
  extra_bases += other.extra_bases;
  input_bases += other.input_bases;
  encoded_bytes += other.encoded_bytes;
}

void RefEncodeRead(const genome::ReferenceGenome& reference, std::string_view bases,
                   const align::AlignmentResult& result, Buffer* out, RefCompStats* stats) {
  ++stats->records;
  stats->input_bases += static_cast<int64_t>(bases.size());

  if (!result.mapped() || result.cigar.empty()) {
    EncodeRaw(bases, out, stats);
    return;
  }
  auto ops_or = align::ParseCigar(result.cigar);
  if (!ops_or.ok() ||
      align::CigarQuerySpan(result.cigar) != static_cast<int64_t>(bases.size())) {
    EncodeRaw(bases, out, stats);
    return;
  }

  // The CIGAR describes the forward reference strand; project reverse reads through
  // their reverse complement (SAM convention).
  std::string fwd_storage;
  std::string_view fwd = bases;
  if (result.reverse()) {
    fwd_storage = compress::ReverseComplement(bases);
    fwd = fwd_storage;
  }

  std::vector<Substitution> subs;
  std::string extra;
  if (!CollectDiffs(reference, fwd, result, *ops_or, &subs, &extra)) {
    EncodeRaw(bases, out, stats);
    return;
  }

  const size_t before = out->size();
  PutVarint(kTagRefBased, out);
  PutVarint(subs.size(), out);
  int64_t prev_offset = 0;
  for (const Substitution& sub : subs) {
    const uint64_t delta = static_cast<uint64_t>(sub.read_offset - prev_offset);
    PutVarint((delta << 3) | compress::BaseToCode(sub.base), out);
    prev_offset = sub.read_offset;
  }
  compress::PackBases(extra, out);

  ++stats->ref_encoded;
  stats->substitutions += static_cast<int64_t>(subs.size());
  stats->extra_bases += static_cast<int64_t>(extra.size());
  stats->encoded_bytes += static_cast<int64_t>(out->size() - before);
}

Result<std::string> RefDecodeRead(const genome::ReferenceGenome& reference,
                                  std::span<const uint8_t> bytes,
                                  const align::AlignmentResult& result) {
  size_t offset = 0;
  PERSONA_ASSIGN_OR_RETURN(uint64_t tag, GetVarint(bytes, &offset));

  if (tag == kTagRaw) {
    PERSONA_ASSIGN_OR_RETURN(uint64_t count, GetVarint(bytes, &offset));
    std::string bases;
    Status status = compress::UnpackBases(bytes.subspan(offset), count, &bases);
    if (!status.ok()) {
      return status;
    }
    return bases;
  }
  if (tag != kTagRefBased) {
    return DataLossError(StrFormat("refcomp record: unknown tag %llu",
                                   static_cast<unsigned long long>(tag)));
  }
  if (!result.mapped() || result.cigar.empty()) {
    return DataLossError("refcomp record: ref-based encoding but result is unmapped");
  }
  PERSONA_ASSIGN_OR_RETURN(std::vector<align::CigarOp> ops, align::ParseCigar(result.cigar));

  // Substitution stream.
  PERSONA_ASSIGN_OR_RETURN(uint64_t sub_count, GetVarint(bytes, &offset));
  std::vector<Substitution> subs;
  subs.reserve(sub_count);
  int64_t prev_offset = 0;
  for (uint64_t i = 0; i < sub_count; ++i) {
    PERSONA_ASSIGN_OR_RETURN(uint64_t packed, GetVarint(bytes, &offset));
    const uint8_t code = static_cast<uint8_t>(packed & 0x7);
    if (code > compress::kBaseCodeN) {
      return DataLossError("refcomp record: invalid substitution base code");
    }
    prev_offset += static_cast<int64_t>(packed >> 3);
    subs.push_back({prev_offset, compress::CodeToBase(code)});
  }

  // Extra (insertion + soft-clip) bases; the count comes from the CIGAR.
  int64_t extra_count = 0;
  for (const align::CigarOp& op : ops) {
    if (op.op == 'I' || op.op == 'S') {
      extra_count += op.length;
    }
  }
  std::string extra;
  Status status =
      compress::UnpackBases(bytes.subspan(offset), static_cast<size_t>(extra_count), &extra);
  if (!status.ok()) {
    return status;
  }

  // Rebuild the forward projection by walking the CIGAR over the reference.
  std::string fwd;
  fwd.reserve(static_cast<size_t>(align::CigarQuerySpan(result.cigar)));
  genome::GenomeLocation ref_pos = result.location;
  size_t extra_off = 0;
  for (const align::CigarOp& op : ops) {
    switch (op.op) {
      case 'M':
      case '=':
      case 'X': {
        PERSONA_ASSIGN_OR_RETURN(std::string_view seg,
                                 reference.Slice(ref_pos, static_cast<size_t>(op.length)));
        fwd.append(seg);
        ref_pos += op.length;
        break;
      }
      case 'I':
      case 'S':
        fwd.append(extra, extra_off, static_cast<size_t>(op.length));
        extra_off += static_cast<size_t>(op.length);
        break;
      case 'D':
      case 'N':
        ref_pos += op.length;
        break;
      default:
        break;
    }
  }

  for (const Substitution& sub : subs) {
    if (sub.read_offset < 0 || sub.read_offset >= static_cast<int64_t>(fwd.size())) {
      return DataLossError("refcomp record: substitution offset out of read range");
    }
    fwd[static_cast<size_t>(sub.read_offset)] = sub.base;
  }

  return result.reverse() ? compress::ReverseComplement(fwd) : fwd;
}

RefCompStats RefEncodeChunk(const genome::ReferenceGenome& reference,
                            std::span<const std::string> bases,
                            std::span<const align::AlignmentResult> results, Buffer* out,
                            std::vector<uint32_t>* record_lengths) {
  RefCompStats stats;
  for (size_t i = 0; i < bases.size(); ++i) {
    const size_t before = out->size();
    RefEncodeRead(reference, bases[i], results[i], out, &stats);
    record_lengths->push_back(static_cast<uint32_t>(out->size() - before));
  }
  return stats;
}

Result<std::vector<std::string>> RefDecodeChunk(
    const genome::ReferenceGenome& reference, std::span<const uint8_t> data,
    std::span<const uint32_t> record_lengths,
    std::span<const align::AlignmentResult> results) {
  if (record_lengths.size() != results.size()) {
    return InvalidArgumentError("refcomp chunk: index and results size mismatch");
  }
  std::vector<std::string> out;
  out.reserve(record_lengths.size());
  size_t offset = 0;
  for (size_t i = 0; i < record_lengths.size(); ++i) {
    if (offset + record_lengths[i] > data.size()) {
      return DataLossError("refcomp chunk: record extends past data block");
    }
    PERSONA_ASSIGN_OR_RETURN(
        std::string bases,
        RefDecodeRead(reference, data.subspan(offset, record_lengths[i]), results[i]));
    out.push_back(std::move(bases));
    offset += record_lengths[i];
  }
  return out;
}

}  // namespace persona::format
