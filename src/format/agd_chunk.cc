#include "src/format/agd_chunk.h"

#include <cstring>

#include "src/compress/base_compaction.h"
#include "src/util/crc32.h"
#include "src/util/varint.h"

namespace persona::format {

Result<RecordType> RecordTypeFromName(std::string_view name) {
  if (name == "bases") {
    return RecordType::kBases;
  }
  if (name == "qual") {
    return RecordType::kQual;
  }
  if (name == "metadata") {
    return RecordType::kMetadata;
  }
  if (name == "results") {
    return RecordType::kResults;
  }
  if (name == "ref_bases") {
    return RecordType::kRefBases;
  }
  return InvalidArgumentError("unknown record type: " + std::string(name));
}

std::string_view RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kBases:
      return "bases";
    case RecordType::kQual:
      return "qual";
    case RecordType::kMetadata:
      return "metadata";
    case RecordType::kResults:
      return "results";
    case RecordType::kRefBases:
      return "ref_bases";
  }
  return "unknown";
}

ChunkBuilder::ChunkBuilder(RecordType type, compress::CodecId codec)
    : type_(type), codec_(codec) {}

void ChunkBuilder::AddRecord(std::string_view bytes) {
  lengths_.push_back(static_cast<uint32_t>(bytes.size()));
  data_.Append(bytes);
}

void ChunkBuilder::AddBases(std::string_view bases) {
  lengths_.push_back(static_cast<uint32_t>(bases.size()));
  compress::PackBases(bases, &data_);
}

void ChunkBuilder::AddResult(const align::AlignmentResult& result) {
  Buffer encoded;
  align::EncodeResult(result, &encoded);
  lengths_.push_back(static_cast<uint32_t>(encoded.size()));
  data_.Append(encoded.span());
}

void ChunkBuilder::Reset() {
  lengths_.clear();
  data_.Clear();
}

Status ChunkBuilder::Finalize(Buffer* out) const {
  out->Clear();

  // Relative index.
  Buffer index;
  for (uint32_t len : lengths_) {
    PutVarint(len, &index);
  }

  // Compressed data block.
  Buffer compressed;
  const compress::Codec& codec = compress::GetCodec(codec_);
  PERSONA_RETURN_IF_ERROR(codec.Compress(data_.span(), &compressed));

  out->Append(kAgdMagic, sizeof(kAgdMagic));
  out->AppendScalar<uint8_t>(kAgdVersion);
  out->AppendScalar<uint8_t>(static_cast<uint8_t>(type_));
  out->AppendScalar<uint8_t>(static_cast<uint8_t>(codec_));
  out->AppendScalar<uint8_t>(0);  // reserved
  out->AppendScalar<uint32_t>(static_cast<uint32_t>(lengths_.size()));
  out->AppendScalar<uint32_t>(static_cast<uint32_t>(index.size()));
  out->AppendScalar<uint32_t>(static_cast<uint32_t>(data_.size()));
  out->AppendScalar<uint32_t>(static_cast<uint32_t>(compressed.size()));
  out->AppendScalar<uint32_t>(Crc32(compressed.span()));
  out->Append(index.span());
  out->Append(compressed.span());
  return OkStatus();
}

Result<ParsedChunk> ParsedChunk::Parse(std::span<const uint8_t> file_bytes) {
  constexpr size_t kHeaderSize = 4 + 4 + 4 * 5;
  if (file_bytes.size() < kHeaderSize) {
    return DataLossError("AGD chunk too small for header");
  }
  if (std::memcmp(file_bytes.data(), kAgdMagic, sizeof(kAgdMagic)) != 0) {
    return DataLossError("AGD chunk: bad magic");
  }
  uint8_t version = file_bytes[4];
  if (version != kAgdVersion) {
    return UnimplementedError("AGD chunk: unsupported version " + std::to_string(version));
  }
  uint8_t type_byte = file_bytes[5];
  if (type_byte > static_cast<uint8_t>(RecordType::kRefBases)) {
    return DataLossError("AGD chunk: unknown record type");
  }
  uint8_t codec_byte = file_bytes[6];
  if (codec_byte > static_cast<uint8_t>(compress::CodecId::kLzss)) {
    return DataLossError("AGD chunk: unknown codec");
  }

  auto read_u32 = [&](size_t offset) {
    uint32_t v;
    std::memcpy(&v, file_bytes.data() + offset, sizeof(v));
    return v;
  };
  uint32_t record_count = read_u32(8);
  uint32_t index_bytes = read_u32(12);
  uint32_t data_uncompressed = read_u32(16);
  uint32_t data_compressed = read_u32(20);
  uint32_t crc = read_u32(24);

  if (file_bytes.size() != kHeaderSize + index_bytes + data_compressed) {
    return DataLossError("AGD chunk: size mismatch");
  }
  // Bound allocations before trusting the header: every index entry is at least one
  // varint byte, and our codecs cannot exceed ~1032:1 expansion (DEFLATE's bound) — a
  // header violating either is corrupt, and honoring it would attempt a huge allocation.
  if (record_count > index_bytes) {
    return DataLossError("AGD chunk: record count exceeds index capacity");
  }
  if (data_uncompressed > 64 + static_cast<uint64_t>(data_compressed) * 1100) {
    return DataLossError("AGD chunk: implausible decompressed size");
  }

  ParsedChunk chunk;
  chunk.type_ = static_cast<RecordType>(type_byte);
  chunk.codec_ = static_cast<compress::CodecId>(codec_byte);

  // Relative index -> lengths.
  std::span<const uint8_t> index_span = file_bytes.subspan(kHeaderSize, index_bytes);
  size_t pos = 0;
  chunk.lengths_.reserve(record_count);
  for (uint32_t i = 0; i < record_count; ++i) {
    PERSONA_ASSIGN_OR_RETURN(uint64_t len, GetVarint(index_span, &pos));
    if (len > UINT32_MAX) {
      return DataLossError("AGD chunk: index entry overflow");
    }
    chunk.lengths_.push_back(static_cast<uint32_t>(len));
  }
  if (pos != index_span.size()) {
    return DataLossError("AGD chunk: trailing index bytes");
  }

  // Verify and decompress the data block.
  std::span<const uint8_t> data_span =
      file_bytes.subspan(kHeaderSize + index_bytes, data_compressed);
  if (Crc32(data_span) != crc) {
    return DataLossError("AGD chunk: CRC mismatch");
  }
  const compress::Codec& codec = compress::GetCodec(chunk.codec_);
  PERSONA_RETURN_IF_ERROR(codec.Decompress(data_span, data_uncompressed, &chunk.data_));

  // Absolute index, generated on the fly from the relative one (paper §3).
  chunk.offsets_.reserve(record_count);
  uint64_t offset = 0;
  for (uint32_t len : chunk.lengths_) {
    chunk.offsets_.push_back(offset);
    if (chunk.type_ == RecordType::kBases) {
      offset += compress::PackedBasesSize(len);
    } else {
      offset += len;
    }
  }
  if (offset != chunk.data_.size()) {
    return DataLossError("AGD chunk: index does not cover data block");
  }
  return chunk;
}

std::string_view ParsedChunk::RecordBytes(size_t i) const {
  uint64_t offset = offsets_[i];
  uint64_t size = type_ == RecordType::kBases ? compress::PackedBasesSize(lengths_[i])
                                              : lengths_[i];
  return std::string_view(reinterpret_cast<const char*>(data_.data()) + offset, size);
}

Result<std::string> ParsedChunk::GetBases(size_t i) const {
  if (type_ != RecordType::kBases) {
    return FailedPreconditionError("GetBases on non-bases chunk");
  }
  if (i >= lengths_.size()) {
    return OutOfRangeError("record index out of range");
  }
  std::string out;
  std::string_view bytes = RecordBytes(i);
  PERSONA_RETURN_IF_ERROR(compress::UnpackBases(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
      lengths_[i], &out));
  return out;
}

Result<std::string_view> ParsedChunk::GetString(size_t i) const {
  if (type_ != RecordType::kQual && type_ != RecordType::kMetadata) {
    return FailedPreconditionError("GetString on non-string chunk");
  }
  if (i >= lengths_.size()) {
    return OutOfRangeError("record index out of range");
  }
  return RecordBytes(i);
}

Result<align::AlignmentResult> ParsedChunk::GetResult(size_t i) const {
  if (type_ != RecordType::kResults) {
    return FailedPreconditionError("GetResult on non-results chunk");
  }
  if (i >= lengths_.size()) {
    return OutOfRangeError("record index out of range");
  }
  std::string_view bytes = RecordBytes(i);
  align::AlignmentResult result;
  size_t offset = 0;
  PERSONA_RETURN_IF_ERROR(DecodeResult(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
      &offset, &result));
  return result;
}

}  // namespace persona::format
