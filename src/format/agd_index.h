// Record-level random access over an AGD dataset (paper §2.1: "some downstream steps are
// more efficient with random access to the dataset"; §3: "For more efficient random
// access, an absolute index can be generated on the fly").
//
// Within a chunk, ParsedChunk already materializes the absolute offset table, making
// record access O(1). This module adds the cross-chunk half: a RecordLocator that maps a
// dataset-global record id to (chunk, record-in-chunk) by binary search over the
// manifest, and a RandomAccessReader that caches recently parsed chunks (LRU) so that
// clustered access patterns pay decompression once per chunk, not once per record.
//
// Also here: row-group validation (§3: "Columns can also be row-grouped, indicating that
// record indices align in those columns") — the structural invariant every multi-column
// operation in Persona relies on.

#ifndef PERSONA_SRC_FORMAT_AGD_INDEX_H_
#define PERSONA_SRC_FORMAT_AGD_INDEX_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>

#include "src/format/agd_dataset.h"

namespace persona::format {

// Position of one record inside a dataset.
struct RecordLocation {
  size_t chunk_index = 0;
  size_t record_in_chunk = 0;

  bool operator==(const RecordLocation&) const = default;
};

// Maps dataset-global record ids to chunk-local positions. Requires the manifest's
// chunks to be contiguous (first_record monotone, no gaps), which Create() checks and
// which AgdWriter guarantees by construction. The locator copies the chunk boundary
// table (one int64 per chunk), so it stays valid independent of the manifest's lifetime.
class RecordLocator {
 public:
  // Empty locator (0 records); assign from Create() to populate.
  RecordLocator() = default;

  static Result<RecordLocator> Create(const Manifest* manifest);

  int64_t total_records() const { return total_records_; }

  Result<RecordLocation> Locate(int64_t record_id) const;

 private:
  std::vector<int64_t> chunk_ends_;  // chunk_ends_[i] = first_record + num_records of i
  int64_t total_records_ = 0;
};

// Random access into a file-backed dataset with an LRU cache of parsed chunks.
// Not thread-safe; use one reader per thread (parsed chunks are immutable, but the
// cache bookkeeping is not synchronized).
class RandomAccessReader {
 public:
  // `cache_capacity` counts (chunk, column) entries, not bytes.
  static Result<RandomAccessReader> Open(const std::string& dir, size_t cache_capacity = 8);

  int64_t total_records() const { return locator_.total_records(); }
  const Manifest& manifest() const { return dataset_.manifest(); }

  // Reassembles the full read record (bases + qual + metadata columns).
  Result<genome::Read> GetRead(int64_t record_id);

  // Decodes one alignment result; requires a results column.
  Result<align::AlignmentResult> GetResult(int64_t record_id);

  // One field of one record as a string (bases are unpacked; qual/metadata verbatim).
  Result<std::string> GetField(int64_t record_id, std::string_view column_name);

  // Cache effectiveness counters (benchmarks / tests).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  RandomAccessReader(AgdDataset dataset, RecordLocator locator, size_t cache_capacity)
      : dataset_(std::move(dataset)),
        locator_(std::move(locator)),
        cache_capacity_(cache_capacity) {}

  // Returns the parsed chunk for (chunk, column), loading and caching it if absent.
  Result<const ParsedChunk*> GetChunk(size_t chunk_index, std::string_view column_name);

  AgdDataset dataset_;
  RecordLocator locator_;
  size_t cache_capacity_;
  // LRU: most-recent at front. Entries are few (cache_capacity_), so linear scans of
  // the list are cheaper than maintaining a secondary map.
  struct CacheEntry {
    size_t chunk_index;
    std::string column;
    ParsedChunk chunk;
  };
  std::list<CacheEntry> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

// Checks the row-grouping invariant across all columns of `dataset`: every chunk has the
// same record count in every column and matches the manifest, and chunk ranges tile
// [0, total_records) without gaps or overlap.
Status ValidateRowGrouping(const AgdDataset& dataset);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_AGD_INDEX_H_
