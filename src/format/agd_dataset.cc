#include "src/format/agd_dataset.h"

#include "src/util/file_util.h"

namespace persona::format {

AgdWriter::AgdWriter(std::string dir, Options options)
    : dir_(std::move(dir)),
      options_(options),
      bases_(RecordType::kBases, options.codec),
      qual_(RecordType::kQual, options.codec),
      metadata_(RecordType::kMetadata, options.codec) {}

Result<AgdWriter> AgdWriter::Create(const std::string& dir, const std::string& name,
                                    const Options& options) {
  if (options.chunk_size <= 0) {
    return InvalidArgumentError("chunk_size must be positive");
  }
  PERSONA_RETURN_IF_ERROR(MakeDirectories(dir));
  AgdWriter writer(dir, options);
  writer.manifest_.name = name;
  writer.manifest_.chunk_size = options.chunk_size;
  writer.manifest_.columns = StandardReadColumns(options.codec);
  return writer;
}

Status AgdWriter::Append(const genome::Read& read) {
  if (finalized_) {
    return FailedPreconditionError("Append after Finalize");
  }
  bases_.AddBases(read.bases);
  qual_.AddRecord(read.qual);
  metadata_.AddRecord(read.metadata);
  if (++records_in_chunk_ >= options_.chunk_size) {
    PERSONA_RETURN_IF_ERROR(FlushChunk());
  }
  return OkStatus();
}

Status AgdWriter::FlushChunk() {
  if (records_in_chunk_ == 0) {
    return OkStatus();
  }
  ManifestChunk chunk;
  chunk.path_base = manifest_.name + "-" + std::to_string(manifest_.chunks.size());
  chunk.first_record = next_first_record_;
  chunk.num_records = records_in_chunk_;

  Buffer file;
  PERSONA_RETURN_IF_ERROR(bases_.Finalize(&file));
  PERSONA_RETURN_IF_ERROR(WriteBufferToFile(dir_ + "/" + chunk.path_base + ".bases", file));
  PERSONA_RETURN_IF_ERROR(qual_.Finalize(&file));
  PERSONA_RETURN_IF_ERROR(WriteBufferToFile(dir_ + "/" + chunk.path_base + ".qual", file));
  PERSONA_RETURN_IF_ERROR(metadata_.Finalize(&file));
  PERSONA_RETURN_IF_ERROR(
      WriteBufferToFile(dir_ + "/" + chunk.path_base + ".metadata", file));

  manifest_.chunks.push_back(std::move(chunk));
  next_first_record_ += records_in_chunk_;
  records_in_chunk_ = 0;
  bases_.Reset();
  qual_.Reset();
  metadata_.Reset();
  return OkStatus();
}

Status AgdWriter::Finalize() {
  if (finalized_) {
    return FailedPreconditionError("Finalize called twice");
  }
  PERSONA_RETURN_IF_ERROR(FlushChunk());
  finalized_ = true;
  // The manifest is the dataset's root pointer: a torn write orphans every chunk, so
  // it lands via atomic replace.
  return WriteFileAtomic(dir_ + "/manifest.json", manifest_.ToJson());
}

Result<AgdDataset> AgdDataset::Open(const std::string& dir) {
  PERSONA_ASSIGN_OR_RETURN(std::string text, ReadFileToString(dir + "/manifest.json"));
  PERSONA_ASSIGN_OR_RETURN(Manifest manifest, Manifest::FromJson(text));
  return AgdDataset(dir, std::move(manifest));
}

Result<ParsedChunk> AgdDataset::ReadChunk(size_t chunk_index,
                                          std::string_view column_name) const {
  if (chunk_index >= manifest_.chunks.size()) {
    return OutOfRangeError("chunk index out of range");
  }
  PERSONA_RETURN_IF_ERROR(manifest_.FindColumn(column_name).status());
  Buffer file;
  PERSONA_RETURN_IF_ERROR(
      ReadFileToBuffer(dir_ + "/" + manifest_.ChunkFileName(chunk_index, column_name), &file));
  return ParsedChunk::Parse(file.span());
}

Result<std::vector<genome::Read>> AgdDataset::ReadAllReads() const {
  std::vector<genome::Read> reads;
  reads.reserve(static_cast<size_t>(manifest_.total_records()));
  for (size_t ci = 0; ci < manifest_.chunks.size(); ++ci) {
    PERSONA_ASSIGN_OR_RETURN(ParsedChunk bases, ReadChunk(ci, "bases"));
    PERSONA_ASSIGN_OR_RETURN(ParsedChunk qual, ReadChunk(ci, "qual"));
    PERSONA_ASSIGN_OR_RETURN(ParsedChunk metadata, ReadChunk(ci, "metadata"));
    if (bases.record_count() != qual.record_count() ||
        bases.record_count() != metadata.record_count()) {
      return DataLossError("column record counts disagree in chunk " + std::to_string(ci));
    }
    for (size_t i = 0; i < bases.record_count(); ++i) {
      genome::Read read;
      PERSONA_ASSIGN_OR_RETURN(read.bases, bases.GetBases(i));
      PERSONA_ASSIGN_OR_RETURN(std::string_view q, qual.GetString(i));
      read.qual = std::string(q);
      PERSONA_ASSIGN_OR_RETURN(std::string_view m, metadata.GetString(i));
      read.metadata = std::string(m);
      reads.push_back(std::move(read));
    }
  }
  return reads;
}

Status AgdDataset::AddResultsColumn(
    const genome::ReferenceGenome& reference,
    const std::vector<std::vector<align::AlignmentResult>>& results,
    compress::CodecId codec) {
  if (results.size() != manifest_.chunks.size()) {
    return InvalidArgumentError("results chunk count does not match dataset");
  }
  if (manifest_.HasColumn("results")) {
    return AlreadyExistsError("dataset already has a results column");
  }
  for (size_t ci = 0; ci < results.size(); ++ci) {
    if (static_cast<int64_t>(results[ci].size()) != manifest_.chunks[ci].num_records) {
      return InvalidArgumentError("results record count mismatch in chunk " +
                                  std::to_string(ci));
    }
    ChunkBuilder builder(RecordType::kResults, codec);
    for (const align::AlignmentResult& r : results[ci]) {
      builder.AddResult(r);
    }
    Buffer file;
    PERSONA_RETURN_IF_ERROR(builder.Finalize(&file));
    PERSONA_RETURN_IF_ERROR(WriteBufferToFile(
        dir_ + "/" + manifest_.chunks[ci].path_base + ".results", file));
  }
  manifest_.columns.push_back(ResultsColumn(codec));
  manifest_.SetReference(reference);
  return WriteFileAtomic(dir_ + "/manifest.json", manifest_.ToJson());
}

Result<int64_t> AgdDataset::Verify() const {
  int64_t verified = 0;
  for (size_t ci = 0; ci < manifest_.chunks.size(); ++ci) {
    for (const ManifestColumn& column : manifest_.columns) {
      PERSONA_ASSIGN_OR_RETURN(ParsedChunk chunk, ReadChunk(ci, column.name));
      if (static_cast<int64_t>(chunk.record_count()) != manifest_.chunks[ci].num_records) {
        return DataLossError("chunk " + std::to_string(ci) + " column " + column.name +
                             " record count mismatch");
      }
      if (chunk.type() != column.type) {
        return DataLossError("chunk " + std::to_string(ci) + " column " + column.name +
                             " type mismatch");
      }
    }
    verified += manifest_.chunks[ci].num_records;
  }
  return verified;
}

}  // namespace persona::format
