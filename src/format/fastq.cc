#include "src/format/fastq.h"

#include <algorithm>
#include <iterator>

namespace persona::format {

Status FastqParser::ConsumeLine(std::string_view line, std::vector<genome::Read>* out) {
  switch (line_in_record_) {
    case 0:
      if (line.empty()) {
        return OkStatus();  // tolerate blank lines between records
      }
      if (line[0] != '@') {
        return DataLossError("FASTQ: header line must start with '@'");
      }
      current_.metadata = std::string(line.substr(1));
      line_in_record_ = 1;
      return OkStatus();
    case 1:
      if (line.empty()) {
        return DataLossError("FASTQ: empty sequence line");
      }
      current_.bases = std::string(line);
      line_in_record_ = 2;
      return OkStatus();
    case 2:
      if (line.empty() || line[0] != '+') {
        return DataLossError("FASTQ: separator line must start with '+'");
      }
      line_in_record_ = 3;
      return OkStatus();
    default:
      // Quality line. Note: it may legitimately start with '@'.
      if (line.size() != current_.bases.size()) {
        return DataLossError("FASTQ: quality length does not match sequence length");
      }
      current_.qual = std::string(line);
      out->push_back(std::move(current_));
      current_ = genome::Read{};
      line_in_record_ = 0;
      return OkStatus();
  }
}

Status FastqParser::Feed(std::string_view bytes, std::vector<genome::Read>* out) {
  size_t start = 0;
  while (start < bytes.size()) {
    size_t newline = bytes.find('\n', start);
    if (newline == std::string_view::npos) {
      pending_.append(bytes.substr(start));
      break;
    }
    std::string_view line = bytes.substr(start, newline - start);
    if (!pending_.empty()) {
      pending_.append(line);
      std::string whole;
      whole.swap(pending_);
      if (!whole.empty() && whole.back() == '\r') {
        whole.pop_back();
      }
      PERSONA_RETURN_IF_ERROR(ConsumeLine(whole, out));
    } else {
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      PERSONA_RETURN_IF_ERROR(ConsumeLine(line, out));
    }
    start = newline + 1;
  }
  return OkStatus();
}

Status FastqParser::Finish() const {
  if (line_in_record_ != 0 || !pending_.empty()) {
    return DataLossError("FASTQ: truncated record at end of input");
  }
  return OkStatus();
}

Status ParseFastq(std::string_view text, std::vector<genome::Read>* out) {
  FastqParser parser;
  PERSONA_RETURN_IF_ERROR(parser.Feed(text, out));
  // Allow a missing trailing newline by feeding one.
  if (!text.empty() && text.back() != '\n') {
    PERSONA_RETURN_IF_ERROR(parser.Feed("\n", out));
  }
  return parser.Finish();
}

Status FastqRecordBatcher::Feed(std::string_view bytes) {
  if (finished_) {
    return FailedPreconditionError("FastqRecordBatcher: Feed after Finish");
  }
  if (!bytes.empty()) {
    at_line_start_ = bytes.back() == '\n';
  }
  const size_t before = ready_.size();
  PERSONA_RETURN_IF_ERROR(parser_.Feed(bytes, &ready_));
  total_records_ += ready_.size() - before;
  return OkStatus();
}

Status FastqRecordBatcher::Finish() {
  if (!at_line_start_) {
    // Tolerate a missing final newline, as ParseFastq does: the last quality line
    // is complete input even if the file/stream doesn't terminate it.
    PERSONA_RETURN_IF_ERROR(Feed("\n"));
  }
  PERSONA_RETURN_IF_ERROR(parser_.Finish());
  finished_ = true;
  return OkStatus();
}

std::optional<std::vector<genome::Read>> FastqRecordBatcher::TakeBatch() {
  if (!HasBatch()) {
    return std::nullopt;
  }
  const size_t take = std::min(batch_size_, ready_.size());
  std::vector<genome::Read> batch;
  batch.assign(std::make_move_iterator(ready_.begin()),
               std::make_move_iterator(ready_.begin() + static_cast<ptrdiff_t>(take)));
  ready_.erase(ready_.begin(), ready_.begin() + static_cast<ptrdiff_t>(take));
  return batch;
}

void WriteFastq(std::span<const genome::Read> reads, std::string* out) {
  for (const genome::Read& read : reads) {
    out->push_back('@');
    out->append(read.metadata);
    out->push_back('\n');
    out->append(read.bases);
    out->append("\n+\n");
    out->append(read.qual);
    out->push_back('\n');
  }
}

}  // namespace persona::format
