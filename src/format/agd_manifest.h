// The AGD manifest: a JSON metadata file describing the columns, chunks, and records of
// a dataset (paper §3, Figure 2), plus the reference sequences results were aligned to.

#ifndef PERSONA_SRC_FORMAT_AGD_MANIFEST_H_
#define PERSONA_SRC_FORMAT_AGD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/compress/codec.h"
#include "src/format/agd_chunk.h"
#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::format {

struct ManifestColumn {
  std::string name;            // also the file extension, e.g. "bases" -> test-0.bases
  RecordType type = RecordType::kBases;
  compress::CodecId codec = compress::CodecId::kZlib;
};

struct ManifestChunk {
  std::string path_base;   // e.g. "test-0"; column files are "<path_base>.<column>"
  int64_t first_record = 0;
  int64_t num_records = 0;
};

struct ManifestContig {
  std::string name;
  int64_t length = 0;
};

struct Manifest {
  std::string name;
  int64_t chunk_size = 100'000;  // records per chunk (the paper's default)
  std::vector<ManifestColumn> columns;
  std::vector<ManifestChunk> chunks;
  std::vector<ManifestContig> reference_contigs;  // empty until aligned

  int64_t total_records() const;
  Result<const ManifestColumn*> FindColumn(std::string_view column_name) const;
  bool HasColumn(std::string_view column_name) const;

  // Object/file name of one chunk's column file.
  std::string ChunkFileName(size_t chunk_index, std::string_view column_name) const;

  std::string ToJson() const;
  static Result<Manifest> FromJson(std::string_view text);

  // Records the contig table of `reference` (called when a results column is added).
  void SetReference(const genome::ReferenceGenome& reference);
};

// The paper's four standard columns: bases, qual, metadata (+results added post-align).
std::vector<ManifestColumn> StandardReadColumns(
    compress::CodecId codec = compress::CodecId::kZlib);
ManifestColumn ResultsColumn(compress::CodecId codec = compress::CodecId::kZlib);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_AGD_MANIFEST_H_
