#include "src/format/vcf.h"

#include <cmath>
#include <cstdlib>

#include "src/util/string_util.h"

namespace persona::format {
namespace {

bool ValidAllele(std::string_view allele) {
  if (allele.empty()) {
    return false;
  }
  for (char c : allele) {
    if (c != 'A' && c != 'C' && c != 'G' && c != 'T' && c != 'N') {
      return false;
    }
  }
  return true;
}

std::string_view VariantTypeTag(const VariantRecord& record) {
  if (record.snv()) {
    return "SNV";
  }
  return record.insertion() ? "INS" : "DEL";
}

// Parses a floating-point field; VCF uses '.' for missing.
Result<double> ParseVcfDouble(std::string_view field) {
  if (field == ".") {
    return 0.0;
  }
  std::string tmp(field);
  char* end = nullptr;
  double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) {
    return InvalidArgumentError(StrFormat("malformed numeric VCF field '%s'", tmp.c_str()));
  }
  return v;
}

}  // namespace

std::string VcfHeader(const genome::ReferenceGenome& reference, std::string_view sample_name) {
  std::string out;
  out += "##fileformat=VCFv4.2\n";
  out += "##source=persona\n";
  for (const auto& contig : reference.contigs()) {
    out += StrFormat("##contig=<ID=%s,length=%zu>\n", contig.name.c_str(),
                     contig.sequence.size());
  }
  out += "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Pileup depth\">\n";
  out += "##INFO=<ID=AF,Number=1,Type=Float,Description=\"Alt observation fraction\">\n";
  out += "##INFO=<ID=SB,Number=1,Type=Float,Description=\"Strand bias\">\n";
  out += "##INFO=<ID=TYPE,Number=1,Type=String,Description=\"SNV, INS or DEL\">\n";
  out += "##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">\n";
  out += "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t";
  out += sample_name;
  out += '\n';
  return out;
}

Status AppendVcfRecord(const genome::ReferenceGenome& reference, const VariantRecord& record,
                       std::string* out) {
  if (record.contig_index < 0 ||
      record.contig_index >= static_cast<int32_t>(reference.num_contigs())) {
    return InvalidArgumentError("VCF record contig index out of range");
  }
  if (!ValidAllele(record.ref_allele) || !ValidAllele(record.alt_allele)) {
    return InvalidArgumentError("VCF record has an empty or non-ACGTN allele");
  }
  const auto& contig = reference.contig(static_cast<size_t>(record.contig_index));
  if (record.position < 0 ||
      record.position + static_cast<int64_t>(record.ref_allele.size()) >
          static_cast<int64_t>(contig.sequence.size())) {
    return InvalidArgumentError("VCF record position out of contig range");
  }
  out->append(
      StrFormat("%s\t%lld\t%s\t%s\t%s\t%.2f\t%s\tDP=%d;AF=%.4f;SB=%.4f;TYPE=%s\tGT\t%s\n",
                contig.name.c_str(), static_cast<long long>(record.position + 1),
                record.id.c_str(), record.ref_allele.c_str(), record.alt_allele.c_str(),
                record.qual, record.filter.c_str(), record.depth, record.alt_fraction,
                record.strand_bias, std::string(VariantTypeTag(record)).c_str(),
                record.genotype.c_str()));
  return OkStatus();
}

Status ParseVcfRecord(const genome::ReferenceGenome& reference, std::string_view line,
                      VariantRecord* out) {
  std::vector<std::string_view> fields = SplitString(line, '\t');
  if (fields.size() < 8) {
    return InvalidArgumentError(
        StrFormat("VCF record has %zu fields, expected >= 8", fields.size()));
  }
  VariantRecord record;

  PERSONA_ASSIGN_OR_RETURN(int32_t contig_index, reference.FindContig(fields[0]));
  record.contig_index = contig_index;

  int64_t pos1 = ParseInt64(fields[1]);
  if (pos1 < 1) {
    return InvalidArgumentError(StrFormat("malformed VCF POS '%.*s'",
                                          static_cast<int>(fields[1].size()),
                                          fields[1].data()));
  }
  record.position = pos1 - 1;

  record.id = std::string(fields[2]);
  record.ref_allele = std::string(fields[3]);
  record.alt_allele = std::string(fields[4]);
  if (!ValidAllele(record.ref_allele)) {
    return InvalidArgumentError("malformed VCF REF allele");
  }
  if (record.alt_allele.find(',') != std::string::npos) {
    return UnimplementedError("multi-allelic VCF records are not supported");
  }
  if (!ValidAllele(record.alt_allele)) {
    return InvalidArgumentError("malformed VCF ALT allele");
  }

  PERSONA_ASSIGN_OR_RETURN(record.qual, ParseVcfDouble(fields[5]));
  record.filter = std::string(fields[6]);

  for (std::string_view kv : SplitString(fields[7], ';')) {
    size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      continue;  // flag-style INFO key; none are meaningful to us
    }
    std::string_view key = kv.substr(0, eq);
    std::string_view value = kv.substr(eq + 1);
    if (key == "DP") {
      int64_t dp = ParseInt64(value);
      if (dp < 0) {
        return InvalidArgumentError("malformed VCF INFO DP");
      }
      record.depth = static_cast<int32_t>(dp);
    } else if (key == "AF") {
      PERSONA_ASSIGN_OR_RETURN(record.alt_fraction, ParseVcfDouble(value));
    } else if (key == "SB") {
      PERSONA_ASSIGN_OR_RETURN(record.strand_bias, ParseVcfDouble(value));
    }
    // Unknown keys (including TYPE, which is derivable from the alleles) are skipped.
  }

  if (fields.size() >= 10) {
    // FORMAT declares the sample-column layout; we only consume a leading GT.
    std::vector<std::string_view> format_keys = SplitString(fields[8], ':');
    std::vector<std::string_view> sample_values = SplitString(fields[9], ':');
    if (!format_keys.empty() && format_keys[0] == "GT" && !sample_values.empty()) {
      record.genotype = std::string(sample_values[0]);
    }
  }

  *out = std::move(record);
  return OkStatus();
}

std::string WriteVcf(const genome::ReferenceGenome& reference, std::string_view sample_name,
                     std::span<const VariantRecord> records) {
  std::string out = VcfHeader(reference, sample_name);
  for (const VariantRecord& record : records) {
    // Records produced by the caller are always valid; a failed append indicates a
    // programming error upstream, surfaced in the output for visibility.
    Status status = AppendVcfRecord(reference, record, &out);
    if (!status.ok()) {
      out += "#ERROR ";
      out += status.message();
      out += '\n';
    }
  }
  return out;
}

Result<std::vector<VariantRecord>> ParseVcf(const genome::ReferenceGenome& reference,
                                            std::string_view text) {
  std::vector<VariantRecord> records;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    VariantRecord record;
    Status status = ParseVcfRecord(reference, line, &record);
    if (!status.ok()) {
      return status;
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace persona::format
