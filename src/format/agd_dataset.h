// File-backed AGD dataset reader/writer.
//
// The writer accumulates reads into chunk-sized column groups and flushes each group as
// one file per column (Figure 2: test-0.bases, test-0.qual, ...), then writes
// manifest.json. The reader opens a manifest and reads/parses individual column chunks —
// the selective-column access that row-oriented FASTQ/SAM cannot offer.
//
// These classes perform plain filesystem I/O; the pipeline layer composes the same
// serialization with the storage substrates (throttled disks, object store) for the
// benchmarked configurations.

#ifndef PERSONA_SRC_FORMAT_AGD_DATASET_H_
#define PERSONA_SRC_FORMAT_AGD_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/format/agd_chunk.h"
#include "src/format/agd_manifest.h"
#include "src/genome/read.h"

namespace persona::format {

class AgdWriter {
 public:
  struct Options {
    int64_t chunk_size = 100'000;
    compress::CodecId codec = compress::CodecId::kZlib;
  };

  // Creates a dataset named `name` in directory `dir` (created if needed).
  static Result<AgdWriter> Create(const std::string& dir, const std::string& name,
                                  const Options& options);

  // Appends one read; flushes a chunk automatically when chunk_size is reached.
  Status Append(const genome::Read& read);

  // Flushes any partial chunk and writes manifest.json. Must be called exactly once.
  Status Finalize();

  const Manifest& manifest() const { return manifest_; }

 private:
  AgdWriter(std::string dir, Options options);

  Status FlushChunk();

  std::string dir_;
  Options options_;
  Manifest manifest_;
  ChunkBuilder bases_;
  ChunkBuilder qual_;
  ChunkBuilder metadata_;
  int64_t records_in_chunk_ = 0;
  int64_t next_first_record_ = 0;
  bool finalized_ = false;
};

class AgdDataset {
 public:
  // Opens a dataset directory containing manifest.json.
  static Result<AgdDataset> Open(const std::string& dir);

  const Manifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }
  size_t num_chunks() const { return manifest_.chunks.size(); }

  // Reads and parses one column chunk.
  Result<ParsedChunk> ReadChunk(size_t chunk_index, std::string_view column_name) const;

  // Convenience: load every read of the dataset (tests / small data only).
  Result<std::vector<genome::Read>> ReadAllReads() const;

  // Appends a results column: one file per chunk plus a manifest update.
  // `results_for_chunk(i)` must return the serialized chunk for chunk i.
  Status AddResultsColumn(const genome::ReferenceGenome& reference,
                          const std::vector<std::vector<align::AlignmentResult>>& results,
                          compress::CodecId codec);

  // Structural integrity check: every chunk of every column parses, record counts match
  // the manifest. Returns the number of records verified.
  Result<int64_t> Verify() const;

 private:
  AgdDataset(std::string dir, Manifest manifest)
      : dir_(std::move(dir)), manifest_(std::move(manifest)) {}

  std::string dir_;
  Manifest manifest_;
};

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_AGD_DATASET_H_
