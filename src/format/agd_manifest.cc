#include "src/format/agd_manifest.h"

#include "src/util/json.h"

namespace persona::format {

int64_t Manifest::total_records() const {
  int64_t total = 0;
  for (const ManifestChunk& chunk : chunks) {
    total += chunk.num_records;
  }
  return total;
}

Result<const ManifestColumn*> Manifest::FindColumn(std::string_view column_name) const {
  for (const ManifestColumn& column : columns) {
    if (column.name == column_name) {
      return &column;
    }
  }
  return NotFoundError("manifest has no column '" + std::string(column_name) + "'");
}

bool Manifest::HasColumn(std::string_view column_name) const {
  return FindColumn(column_name).ok();
}

std::string Manifest::ChunkFileName(size_t chunk_index, std::string_view column_name) const {
  return chunks[chunk_index].path_base + "." + std::string(column_name);
}

std::string Manifest::ToJson() const {
  json::Object root;
  root["name"] = json::Value(name);
  root["version"] = json::Value(static_cast<int64_t>(kAgdVersion));
  root["chunk_size"] = json::Value(chunk_size);

  json::Array cols;
  for (const ManifestColumn& column : columns) {
    json::Object col;
    col["name"] = json::Value(column.name);
    col["type"] = json::Value(RecordTypeName(column.type));
    col["codec"] = json::Value(compress::CodecName(column.codec));
    cols.push_back(json::Value(std::move(col)));
  }
  root["columns"] = json::Value(std::move(cols));

  json::Array records;
  for (const ManifestChunk& chunk : chunks) {
    json::Object rec;
    rec["path"] = json::Value(chunk.path_base);
    rec["first"] = json::Value(chunk.first_record);
    rec["count"] = json::Value(chunk.num_records);
    records.push_back(json::Value(std::move(rec)));
  }
  root["records"] = json::Value(std::move(records));

  if (!reference_contigs.empty()) {
    json::Array contigs;
    for (const ManifestContig& contig : reference_contigs) {
      json::Object c;
      c["name"] = json::Value(contig.name);
      c["length"] = json::Value(contig.length);
      contigs.push_back(json::Value(std::move(c)));
    }
    root["reference"] = json::Value(std::move(contigs));
  }
  return json::Value(std::move(root)).Dump(2);
}

Result<Manifest> Manifest::FromJson(std::string_view text) {
  PERSONA_ASSIGN_OR_RETURN(json::Value root, json::Parse(text));
  Manifest manifest;
  PERSONA_ASSIGN_OR_RETURN(manifest.name, root.GetString("name"));
  PERSONA_ASSIGN_OR_RETURN(manifest.chunk_size, root.GetInt("chunk_size"));

  PERSONA_ASSIGN_OR_RETURN(const json::Array* cols, root.GetArray("columns"));
  for (const json::Value& col : *cols) {
    ManifestColumn column;
    PERSONA_ASSIGN_OR_RETURN(column.name, col.GetString("name"));
    PERSONA_ASSIGN_OR_RETURN(std::string type_name, col.GetString("type"));
    PERSONA_ASSIGN_OR_RETURN(column.type, RecordTypeFromName(type_name));
    PERSONA_ASSIGN_OR_RETURN(std::string codec_name, col.GetString("codec"));
    PERSONA_ASSIGN_OR_RETURN(column.codec, compress::CodecIdFromName(codec_name));
    manifest.columns.push_back(std::move(column));
  }

  PERSONA_ASSIGN_OR_RETURN(const json::Array* records, root.GetArray("records"));
  int64_t expected_first = 0;
  for (const json::Value& rec : *records) {
    ManifestChunk chunk;
    PERSONA_ASSIGN_OR_RETURN(chunk.path_base, rec.GetString("path"));
    PERSONA_ASSIGN_OR_RETURN(chunk.first_record, rec.GetInt("first"));
    PERSONA_ASSIGN_OR_RETURN(chunk.num_records, rec.GetInt("count"));
    if (chunk.first_record != expected_first) {
      return DataLossError("manifest chunks are not contiguous");
    }
    expected_first += chunk.num_records;
    manifest.chunks.push_back(std::move(chunk));
  }

  if (root.Get("reference").ok()) {
    PERSONA_ASSIGN_OR_RETURN(const json::Array* contigs, root.GetArray("reference"));
    for (const json::Value& c : *contigs) {
      ManifestContig contig;
      PERSONA_ASSIGN_OR_RETURN(contig.name, c.GetString("name"));
      PERSONA_ASSIGN_OR_RETURN(contig.length, c.GetInt("length"));
      manifest.reference_contigs.push_back(std::move(contig));
    }
  }
  return manifest;
}

void Manifest::SetReference(const genome::ReferenceGenome& reference) {
  reference_contigs.clear();
  for (const genome::Contig& contig : reference.contigs()) {
    reference_contigs.push_back(
        ManifestContig{contig.name, static_cast<int64_t>(contig.sequence.size())});
  }
}

std::vector<ManifestColumn> StandardReadColumns(compress::CodecId codec) {
  return {
      ManifestColumn{"bases", RecordType::kBases, codec},
      ManifestColumn{"qual", RecordType::kQual, codec},
      ManifestColumn{"metadata", RecordType::kMetadata, codec},
  };
}

ManifestColumn ResultsColumn(compress::CodecId codec) {
  return ManifestColumn{"results", RecordType::kResults, codec};
}

}  // namespace persona::format
