// VCF (Variant Call Format) text reader/writer (paper §2.2: "Variant calling results use
// the standard VCF format").
//
// Persona's variant caller emits VCF so downstream tools can consume results without AGD
// support, mirroring how the SAM exporter provides compatibility for alignments. We emit
// the standard 8 fixed columns plus FORMAT/sample with a GT genotype, and the INFO keys
// the caller produces (DP, AF, TYPE). Positions are 0-based in memory and 1-based in the
// text form, as the spec requires.

#ifndef PERSONA_SRC_FORMAT_VCF_H_
#define PERSONA_SRC_FORMAT_VCF_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::format {

struct VariantRecord {
  int32_t contig_index = -1;
  int64_t position = -1;  // 0-based
  std::string id = ".";
  std::string ref_allele;
  std::string alt_allele;
  double qual = 0;             // Phred-scaled confidence that the site is variant
  std::string filter = "PASS";
  int32_t depth = 0;           // INFO DP: pileup depth used for the call
  double alt_fraction = 0;     // INFO AF: alternate allele observation fraction
  double strand_bias = 0;      // INFO SB: |alt fraction fwd - alt fraction rev|, [0,1]
  std::string genotype = "./.";  // sample GT, e.g. "0/1"

  bool snv() const { return ref_allele.size() == 1 && alt_allele.size() == 1; }
  bool insertion() const { return alt_allele.size() > ref_allele.size(); }
  bool deletion() const { return ref_allele.size() > alt_allele.size(); }

  bool operator==(const VariantRecord&) const = default;
};

// "##fileformat=VCFv4.2" + contig lines + INFO/FORMAT declarations + the #CHROM header.
std::string VcfHeader(const genome::ReferenceGenome& reference, std::string_view sample_name);

// Appends one record line (no trailing validation against the reference sequence).
Status AppendVcfRecord(const genome::ReferenceGenome& reference, const VariantRecord& record,
                       std::string* out);

// Parses one non-header line. Multi-allelic ALT lists are rejected (the caller never
// emits them); unknown INFO keys are ignored.
Status ParseVcfRecord(const genome::ReferenceGenome& reference, std::string_view line,
                      VariantRecord* out);

// Serializes a full file: header + one line per record.
std::string WriteVcf(const genome::ReferenceGenome& reference, std::string_view sample_name,
                     std::span<const VariantRecord> records);

// Parses a full file, skipping ## and # header lines.
Result<std::vector<VariantRecord>> ParseVcf(const genome::ReferenceGenome& reference,
                                            std::string_view text);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_VCF_H_
