#include "src/format/agd_index.h"

#include <algorithm>

#include "src/util/string_util.h"

namespace persona::format {

Result<RecordLocator> RecordLocator::Create(const Manifest* manifest) {
  RecordLocator locator;
  locator.chunk_ends_.reserve(manifest->chunks.size());
  int64_t expected_first = 0;
  for (size_t i = 0; i < manifest->chunks.size(); ++i) {
    const ManifestChunk& chunk = manifest->chunks[i];
    if (chunk.first_record != expected_first) {
      return FailedPreconditionError(
          StrFormat("manifest chunk %zu starts at record %lld, expected %lld "
                    "(chunks must be contiguous for random access)",
                    i, static_cast<long long>(chunk.first_record),
                    static_cast<long long>(expected_first)));
    }
    if (chunk.num_records < 0) {
      return FailedPreconditionError(
          StrFormat("manifest chunk %zu has negative record count", i));
    }
    expected_first += chunk.num_records;
    locator.chunk_ends_.push_back(expected_first);
  }
  locator.total_records_ = expected_first;
  return locator;
}

Result<RecordLocation> RecordLocator::Locate(int64_t record_id) const {
  if (record_id < 0 || record_id >= total_records_) {
    return OutOfRangeError(StrFormat("record id %lld outside [0, %lld)",
                                     static_cast<long long>(record_id),
                                     static_cast<long long>(total_records_)));
  }
  // First chunk whose end is past record_id; contiguity guarantees a hit.
  auto it = std::upper_bound(chunk_ends_.begin(), chunk_ends_.end(), record_id);
  RecordLocation loc;
  loc.chunk_index = static_cast<size_t>(it - chunk_ends_.begin());
  const int64_t chunk_first = loc.chunk_index == 0 ? 0 : chunk_ends_[loc.chunk_index - 1];
  loc.record_in_chunk = static_cast<size_t>(record_id - chunk_first);
  return loc;
}

Result<RandomAccessReader> RandomAccessReader::Open(const std::string& dir,
                                                    size_t cache_capacity) {
  if (cache_capacity == 0) {
    return InvalidArgumentError("RandomAccessReader cache capacity must be >= 1");
  }
  PERSONA_ASSIGN_OR_RETURN(AgdDataset dataset, AgdDataset::Open(dir));
  PERSONA_ASSIGN_OR_RETURN(RecordLocator locator, RecordLocator::Create(&dataset.manifest()));
  return RandomAccessReader(std::move(dataset), std::move(locator), cache_capacity);
}

Result<const ParsedChunk*> RandomAccessReader::GetChunk(size_t chunk_index,
                                                        std::string_view column_name) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->chunk_index == chunk_index && it->column == column_name) {
      ++cache_hits_;
      cache_.splice(cache_.begin(), cache_, it);  // move to front
      return &cache_.front().chunk;
    }
  }
  ++cache_misses_;
  PERSONA_ASSIGN_OR_RETURN(ParsedChunk parsed, dataset_.ReadChunk(chunk_index, column_name));
  cache_.push_front({chunk_index, std::string(column_name), std::move(parsed)});
  if (cache_.size() > cache_capacity_) {
    cache_.pop_back();
  }
  return &cache_.front().chunk;
}

Result<genome::Read> RandomAccessReader::GetRead(int64_t record_id) {
  PERSONA_ASSIGN_OR_RETURN(RecordLocation loc, locator_.Locate(record_id));
  genome::Read read;
  PERSONA_ASSIGN_OR_RETURN(const ParsedChunk* bases, GetChunk(loc.chunk_index, "bases"));
  PERSONA_ASSIGN_OR_RETURN(read.bases, bases->GetBases(loc.record_in_chunk));
  PERSONA_ASSIGN_OR_RETURN(const ParsedChunk* qual, GetChunk(loc.chunk_index, "qual"));
  PERSONA_ASSIGN_OR_RETURN(std::string_view q, qual->GetString(loc.record_in_chunk));
  read.qual = std::string(q);
  PERSONA_ASSIGN_OR_RETURN(const ParsedChunk* meta, GetChunk(loc.chunk_index, "metadata"));
  PERSONA_ASSIGN_OR_RETURN(std::string_view m, meta->GetString(loc.record_in_chunk));
  read.metadata = std::string(m);
  return read;
}

Result<align::AlignmentResult> RandomAccessReader::GetResult(int64_t record_id) {
  PERSONA_ASSIGN_OR_RETURN(RecordLocation loc, locator_.Locate(record_id));
  PERSONA_ASSIGN_OR_RETURN(const ParsedChunk* results, GetChunk(loc.chunk_index, "results"));
  return results->GetResult(loc.record_in_chunk);
}

Result<std::string> RandomAccessReader::GetField(int64_t record_id,
                                                 std::string_view column_name) {
  PERSONA_ASSIGN_OR_RETURN(RecordLocation loc, locator_.Locate(record_id));
  PERSONA_ASSIGN_OR_RETURN(const ParsedChunk* chunk, GetChunk(loc.chunk_index, column_name));
  if (chunk->type() == RecordType::kBases) {
    return chunk->GetBases(loc.record_in_chunk);
  }
  PERSONA_ASSIGN_OR_RETURN(std::string_view bytes, chunk->GetString(loc.record_in_chunk));
  return std::string(bytes);
}

Status ValidateRowGrouping(const AgdDataset& dataset) {
  const Manifest& manifest = dataset.manifest();
  // Contiguity of the chunk ranges (Create performs the check).
  PERSONA_ASSIGN_OR_RETURN([[maybe_unused]] RecordLocator locator,
                           RecordLocator::Create(&manifest));
  // Column agreement per chunk.
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    const ManifestChunk& chunk = manifest.chunks[ci];
    for (const ManifestColumn& column : manifest.columns) {
      PERSONA_ASSIGN_OR_RETURN(ParsedChunk parsed, dataset.ReadChunk(ci, column.name));
      if (static_cast<int64_t>(parsed.record_count()) != chunk.num_records) {
        return DataLossError(StrFormat(
            "row-group violation: chunk %zu column '%s' holds %zu records, manifest says "
            "%lld",
            ci, column.name.c_str(), parsed.record_count(),
            static_cast<long long>(chunk.num_records)));
      }
    }
  }
  return OkStatus();
}

}  // namespace persona::format
