// AGD chunk files (paper §3, Figure 2): header + relative index + compressed data block.
//
// A chunk holds `record_count` records of one column. The header records the record type
// (so applications know how to parse), the codec, sizes, and a CRC of the data block. The
// index is *relative* — one varint length per record — and an absolute offset table is
// generated on the fly when a chunk is parsed, exactly as the paper describes.
//
// On-disk layout (little-endian):
//   magic "AGDC" | version u8 | record_type u8 | codec u8 | reserved u8
//   record_count u32 | index_bytes u32 | data_uncompressed u32 | data_compressed u32
//   crc32(data_compressed) u32
//   [relative index: record_count varints]
//   [data block: codec-compressed]

#ifndef PERSONA_SRC_FORMAT_AGD_CHUNK_H_
#define PERSONA_SRC_FORMAT_AGD_CHUNK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/align/alignment.h"
#include "src/compress/codec.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::format {

enum class RecordType : uint8_t {
  kBases = 0,     // 3-bit packed bases; index entry = base count
  kQual = 1,      // raw Phred+33 bytes; index entry = byte count
  kMetadata = 2,  // raw bytes; index entry = byte count
  kResults = 3,   // encoded AlignmentResult; index entry = encoded byte count
  // Reference-compressed bases (refcomp.h): diffs against the reference, decodable only
  // together with the results column. Added exactly the way §3 describes extending AGD —
  // a new record-type tag plus its parsing functions.
  kRefBases = 4,  // index entry = encoded byte count
};

Result<RecordType> RecordTypeFromName(std::string_view name);
std::string_view RecordTypeName(RecordType type);

inline constexpr uint8_t kAgdVersion = 1;
inline constexpr char kAgdMagic[4] = {'A', 'G', 'D', 'C'};

// Accumulates records for one column of one chunk and serializes to the on-disk format.
class ChunkBuilder {
 public:
  ChunkBuilder(RecordType type, compress::CodecId codec);

  // Raw-byte records (qual, metadata, results).
  void AddRecord(std::string_view bytes);
  // Bases records: packs 3-bit codes; the index entry stores the base count.
  void AddBases(std::string_view bases);
  // Results records: encodes and appends.
  void AddResult(const align::AlignmentResult& result);

  size_t record_count() const { return lengths_.size(); }
  size_t data_size() const { return data_.size(); }

  // Serializes header + index + compressed data into `out` (overwrites). The builder can
  // be reused after Reset().
  Status Finalize(Buffer* out) const;

  void Reset();

 private:
  RecordType type_;
  compress::CodecId codec_;
  std::vector<uint32_t> lengths_;  // relative index entries
  Buffer data_;                    // uncompressed data block
};

// Parsed, decompressed view of a chunk with the absolute index materialized.
class ParsedChunk {
 public:
  // Empty chunk (0 records); assign from Parse() to populate.
  ParsedChunk() = default;

  // Parses and validates (magic, version, CRC, sizes, index arithmetic).
  static Result<ParsedChunk> Parse(std::span<const uint8_t> file_bytes);

  RecordType type() const { return type_; }
  compress::CodecId codec() const { return codec_; }
  size_t record_count() const { return lengths_.size(); }

  // Raw record bytes (packed for kBases). Valid while the ParsedChunk lives.
  std::string_view RecordBytes(size_t i) const;
  // Index entry for record i (base count for kBases, byte count otherwise).
  uint32_t RecordLength(size_t i) const { return lengths_[i]; }

  // Unpacks record i of a kBases chunk into ASCII bases.
  Result<std::string> GetBases(size_t i) const;
  // Record i of a kQual/kMetadata chunk as a string view.
  Result<std::string_view> GetString(size_t i) const;
  // Decodes record i of a kResults chunk.
  Result<align::AlignmentResult> GetResult(size_t i) const;

  size_t decompressed_size() const { return data_.size(); }

 private:
  RecordType type_ = RecordType::kBases;
  compress::CodecId codec_ = compress::CodecId::kIdentity;
  std::vector<uint32_t> lengths_;
  std::vector<uint64_t> offsets_;  // absolute, derived from the relative index
  Buffer data_;                    // decompressed data block
};

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_AGD_CHUNK_H_
