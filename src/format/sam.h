// SAM text format and BSAM (block-compressed binary SAM records).
//
// SAM is the de-facto row-oriented standard for aligned reads (paper §2.2). Persona
// exports SAM/BAM for compatibility with non-integrated tools (§4.4, §5.7). Here:
//   - SAM: spec-conforming 11-column text records plus @HD/@SQ headers;
//   - BSAM: our BAM equivalent — binary records framed in zlib-compressed blocks
//     (BGZF-style), exercising the same conversion + compression path as BAM export.

#ifndef PERSONA_SRC_FORMAT_SAM_H_
#define PERSONA_SRC_FORMAT_SAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/align/alignment.h"
#include "src/genome/read.h"
#include "src/genome/reference.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::format {

// "@HD...\n@SQ SN:chr1 LN:...\n..." for all contigs.
std::string SamHeader(const genome::ReferenceGenome& reference);

// Appends one SAM record line. Positions convert from global to 1-based contig-relative.
// Reverse-strand reads emit reverse-complemented bases and reversed qualities, per spec.
Status AppendSamRecord(const genome::ReferenceGenome& reference, const genome::Read& read,
                       const align::AlignmentResult& result, std::string* out);

// Parses one SAM record line (tabs, 11+ columns) back into read + result form.
Status ParseSamRecord(const genome::ReferenceGenome& reference, std::string_view line,
                      genome::Read* read, align::AlignmentResult* result);

// --- BSAM ---

// Writes binary records into zlib-framed blocks of ~block_size bytes.
class BsamWriter {
 public:
  explicit BsamWriter(size_t block_size = 64 * 1024) : block_size_(block_size) {}

  void Add(const genome::Read& read, const align::AlignmentResult& result);

  // Flushes any partial block and returns the complete file image.
  Result<Buffer> Finish();

 private:
  Status FlushBlock();

  size_t block_size_;
  Buffer current_;  // uncompressed records being accumulated
  Buffer file_;
  // First mid-stream flush failure. Add() cannot return a Status without breaking
  // the streaming call shape, so the error sticks here and Finish() reports it.
  Status status_;
};

// Reads back a BSAM file image.
class BsamReader {
 public:
  static Result<BsamReader> Open(std::span<const uint8_t> file_bytes);

  size_t size() const { return reads_.size(); }
  const genome::Read& read(size_t i) const { return reads_[i]; }
  const align::AlignmentResult& result(size_t i) const { return results_[i]; }

 private:
  std::vector<genome::Read> reads_;
  std::vector<align::AlignmentResult> results_;
};

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_SAM_H_
