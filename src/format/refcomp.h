// Reference-based compression of the AGD bases column (paper §6.1: "Novel compression
// for genomic data, such as reference-based compression [15], will likely be required").
//
// A mapped read matches the reference at almost every base, and the alignment position
// and CIGAR are already stored in the AGD results column. The bases record of a mapped
// read therefore only needs the *differences*: substituted bases, plus the bases the
// reference cannot supply (insertions and soft clips). Decoding walks the CIGAR over the
// reference to regenerate everything else. Reads that cannot be projected onto the
// reference (unmapped, CIGAR/length inconsistencies, off-contig alignments) fall back to
// the plain 3-bit packed encoding, so round-tripping is always exact.
//
// Record layout (self-delimiting, one record per AGD index entry):
//   tag varint: 0 = raw, 1 = ref-based
//   raw:        varint base_count | 3-bit packed words
//   ref-based:  varint substitution_count
//               per substitution: varint ((offset_delta << 3) | base_code)
//                 (offset_delta = gap from the previous substitution's read offset,
//                  in forward-reference read coordinates; first delta is absolute)
//               3-bit packed "extra" bases (insertions + soft clips, in CIGAR order;
//                 count is derived from the CIGAR, so it is not stored)
//
// Reverse-strand reads are projected through their reverse complement (the CIGAR always
// refers to the forward reference), matching the SAM convention.

#ifndef PERSONA_SRC_FORMAT_REFCOMP_H_
#define PERSONA_SRC_FORMAT_REFCOMP_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/align/alignment.h"
#include "src/genome/reference.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::format {

struct RefCompStats {
  int64_t records = 0;
  int64_t ref_encoded = 0;   // records stored as diffs
  int64_t raw_fallback = 0;  // records stored packed (unmapped or unprojectable)
  int64_t substitutions = 0;
  int64_t extra_bases = 0;   // insertion + soft-clip bases stored verbatim
  int64_t input_bases = 0;
  int64_t encoded_bytes = 0;

  double BitsPerBase() const {
    return input_bases == 0 ? 0 : 8.0 * static_cast<double>(encoded_bytes) /
                                       static_cast<double>(input_bases);
  }
  void Add(const RefCompStats& other);
};

// Appends the encoding of one read's bases to `out`. `result` must be the read's entry
// from the results column. Never fails: unprojectable reads use the raw fallback.
void RefEncodeRead(const genome::ReferenceGenome& reference, std::string_view bases,
                   const align::AlignmentResult& result, Buffer* out, RefCompStats* stats);

// Decodes one record produced by RefEncodeRead. `bytes` must be exactly one record (an
// AGD chunk index entry); `result` must be the same results-column entry used to encode.
Result<std::string> RefDecodeRead(const genome::ReferenceGenome& reference,
                                  std::span<const uint8_t> bytes,
                                  const align::AlignmentResult& result);

// Convenience: encodes a whole chunk of reads; records are concatenated into `out` and
// per-record byte lengths appended to `record_lengths` (the AGD relative index).
RefCompStats RefEncodeChunk(const genome::ReferenceGenome& reference,
                            std::span<const std::string> bases,
                            std::span<const align::AlignmentResult> results, Buffer* out,
                            std::vector<uint32_t>* record_lengths);

// Decodes a whole chunk back into per-read base strings.
Result<std::vector<std::string>> RefDecodeChunk(
    const genome::ReferenceGenome& reference, std::span<const uint8_t> data,
    std::span<const uint32_t> record_lengths,
    std::span<const align::AlignmentResult> results);

}  // namespace persona::format

#endif  // PERSONA_SRC_FORMAT_REFCOMP_H_
