#include "src/format/sam.h"

#include <algorithm>
#include <cstring>

#include "src/compress/base_compaction.h"
#include "src/compress/codec.h"
#include "src/util/string_util.h"
#include "src/util/varint.h"

namespace persona::format {

std::string SamHeader(const genome::ReferenceGenome& reference) {
  std::string out = "@HD\tVN:1.6\tSO:unknown\n";
  for (const genome::Contig& contig : reference.contigs()) {
    out += "@SQ\tSN:" + contig.name + "\tLN:" + std::to_string(contig.sequence.size()) + "\n";
  }
  out += "@PG\tID:persona\tPN:persona\n";
  return out;
}

Status AppendSamRecord(const genome::ReferenceGenome& reference, const genome::Read& read,
                       const align::AlignmentResult& result, std::string* out) {
  // QNAME FLAG RNAME POS MAPQ CIGAR RNEXT PNEXT TLEN SEQ QUAL
  out->append(read.metadata.empty() ? "*" : read.metadata);
  out->push_back('\t');
  out->append(std::to_string(result.flags));
  out->push_back('\t');

  if (result.mapped()) {
    PERSONA_ASSIGN_OR_RETURN(genome::ContigPosition pos,
                             reference.GlobalToLocal(result.location));
    out->append(reference.contig(static_cast<size_t>(pos.contig_index)).name);
    out->push_back('\t');
    out->append(std::to_string(pos.offset + 1));  // SAM is 1-based
  } else {
    out->append("*\t0");
  }
  out->push_back('\t');
  out->append(std::to_string(result.mapq));
  out->push_back('\t');
  out->append(result.mapped() && !result.cigar.empty() ? result.cigar : "*");
  out->push_back('\t');

  if (result.mate_location >= 0) {
    PERSONA_ASSIGN_OR_RETURN(genome::ContigPosition mate_pos,
                             reference.GlobalToLocal(result.mate_location));
    genome::ContigPosition own_pos{};
    if (result.mapped()) {
      PERSONA_ASSIGN_OR_RETURN(own_pos, reference.GlobalToLocal(result.location));
    }
    if (result.mapped() && mate_pos.contig_index == own_pos.contig_index) {
      out->push_back('=');
    } else {
      out->append(reference.contig(static_cast<size_t>(mate_pos.contig_index)).name);
    }
    out->push_back('\t');
    out->append(std::to_string(mate_pos.offset + 1));
  } else {
    out->append("*\t0");
  }
  out->push_back('\t');
  out->append(std::to_string(result.template_length));
  out->push_back('\t');

  // SEQ/QUAL are stored reverse-complemented for reverse-strand alignments.
  if (result.reverse()) {
    out->append(compress::ReverseComplement(read.bases));
    out->push_back('\t');
    std::string rq(read.qual.rbegin(), read.qual.rend());
    out->append(rq);
  } else {
    out->append(read.bases);
    out->push_back('\t');
    out->append(read.qual);
  }
  if (result.edit_distance >= 0) {
    out->append("\tNM:i:");
    out->append(std::to_string(result.edit_distance));
  }
  out->push_back('\n');
  return OkStatus();
}

Status ParseSamRecord(const genome::ReferenceGenome& reference, std::string_view line,
                      genome::Read* read, align::AlignmentResult* result) {
  std::vector<std::string_view> fields = SplitString(line, '\t');
  if (fields.size() < 11) {
    return DataLossError("SAM record has fewer than 11 fields");
  }
  read->metadata = std::string(fields[0]);
  int64_t flags = ParseInt64(fields[1]);
  if (flags < 0) {
    return DataLossError("SAM: bad FLAG");
  }
  result->flags = static_cast<uint16_t>(flags);

  if (fields[2] == "*") {
    result->location = genome::kInvalidLocation;
    result->flags |= align::kFlagUnmapped;
  } else {
    PERSONA_ASSIGN_OR_RETURN(int32_t contig, reference.FindContig(fields[2]));
    int64_t pos = ParseInt64(fields[3]);
    if (pos <= 0) {
      return DataLossError("SAM: bad POS");
    }
    PERSONA_ASSIGN_OR_RETURN(result->location, reference.LocalToGlobal(contig, pos - 1));
  }

  int64_t mapq = ParseInt64(fields[4]);
  if (mapq < 0 || mapq > 255) {
    return DataLossError("SAM: bad MAPQ");
  }
  result->mapq = static_cast<uint8_t>(mapq);
  result->cigar = fields[5] == "*" ? "" : std::string(fields[5]);

  if (fields[6] == "*") {
    result->mate_location = genome::kInvalidLocation;
  } else {
    int32_t mate_contig;
    if (fields[6] == "=") {
      auto pos = reference.GlobalToLocal(result->location);
      if (!pos.ok()) {
        return DataLossError("SAM: '=' RNEXT with unmapped read");
      }
      mate_contig = pos->contig_index;
    } else {
      PERSONA_ASSIGN_OR_RETURN(mate_contig, reference.FindContig(fields[6]));
    }
    int64_t mate_pos = ParseInt64(fields[7]);
    if (mate_pos <= 0) {
      return DataLossError("SAM: bad PNEXT");
    }
    PERSONA_ASSIGN_OR_RETURN(result->mate_location,
                             reference.LocalToGlobal(mate_contig, mate_pos - 1));
  }

  // TLEN may be negative; ParseInt64 is unsigned-only, handle the sign here.
  std::string_view tlen = fields[8];
  bool negative = !tlen.empty() && tlen[0] == '-';
  int64_t tlen_value = ParseInt64(negative ? tlen.substr(1) : tlen);
  if (tlen_value < 0) {
    return DataLossError("SAM: bad TLEN");
  }
  result->template_length = static_cast<int32_t>(negative ? -tlen_value : tlen_value);

  // Restore original read orientation.
  if (result->reverse()) {
    read->bases = compress::ReverseComplement(fields[9]);
    read->qual = std::string(fields[10].rbegin(), fields[10].rend());
  } else {
    read->bases = std::string(fields[9]);
    read->qual = std::string(fields[10]);
  }

  result->edit_distance = -1;
  for (size_t i = 11; i < fields.size(); ++i) {
    if (StartsWith(fields[i], "NM:i:")) {
      int64_t nm = ParseInt64(fields[i].substr(5));
      if (nm >= 0) {
        result->edit_distance = static_cast<int16_t>(nm);
      }
    }
  }
  result->score = 0;
  return OkStatus();
}

// --- BSAM ---

namespace {

constexpr char kBsamMagic[4] = {'B', 'S', 'A', 'M'};

void EncodeBsamRecord(const genome::Read& read, const align::AlignmentResult& result,
                      Buffer* out) {
  PutVarint(read.metadata.size(), out);
  out->Append(read.metadata);
  PutVarint(read.bases.size(), out);
  out->Append(read.bases);
  out->Append(read.qual);  // same length as bases
  align::EncodeResult(result, out);
}

Status DecodeBsamRecord(std::span<const uint8_t> bytes, size_t* offset, genome::Read* read,
                        align::AlignmentResult* result) {
  PERSONA_ASSIGN_OR_RETURN(uint64_t meta_len, GetVarint(bytes, offset));
  if (*offset + meta_len > bytes.size()) {
    return DataLossError("BSAM: truncated metadata");
  }
  read->metadata.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, meta_len);
  *offset += meta_len;
  PERSONA_ASSIGN_OR_RETURN(uint64_t base_len, GetVarint(bytes, offset));
  if (*offset + 2 * base_len > bytes.size()) {
    return DataLossError("BSAM: truncated sequence");
  }
  read->bases.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  read->qual.assign(reinterpret_cast<const char*>(bytes.data()) + *offset, base_len);
  *offset += base_len;
  return DecodeResult(bytes, offset, result);
}

}  // namespace

void BsamWriter::Add(const genome::Read& read, const align::AlignmentResult& result) {
  if (!status_.ok()) {
    return;  // stream already broken; Finish() reports the first failure
  }
  EncodeBsamRecord(read, result, &current_);
  if (current_.size() >= block_size_) {
    status_ = FlushBlock();
    if (!status_.ok()) {
      // Drop the unflushable block: a broken stream must not keep accumulating
      // records without bound while the caller streams toward Finish().
      current_.Clear();
    }
  }
}

Status BsamWriter::FlushBlock() {
  if (current_.empty()) {
    return OkStatus();
  }
  Buffer compressed;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  PERSONA_RETURN_IF_ERROR(codec.Compress(current_.span(), &compressed));
  file_.Append(kBsamMagic, sizeof(kBsamMagic));
  file_.AppendScalar<uint32_t>(static_cast<uint32_t>(current_.size()));
  file_.AppendScalar<uint32_t>(static_cast<uint32_t>(compressed.size()));
  file_.Append(compressed.span());
  current_.Clear();
  return OkStatus();
}

Result<Buffer> BsamWriter::Finish() {
  PERSONA_RETURN_IF_ERROR(status_);
  PERSONA_RETURN_IF_ERROR(FlushBlock());
  return std::move(file_);
}

Result<BsamReader> BsamReader::Open(std::span<const uint8_t> file_bytes) {
  BsamReader reader;
  size_t pos = 0;
  const compress::Codec& codec = compress::GetCodec(compress::CodecId::kZlib);
  while (pos < file_bytes.size()) {
    if (pos + 12 > file_bytes.size()) {
      return DataLossError("BSAM: truncated block header");
    }
    if (std::memcmp(file_bytes.data() + pos, kBsamMagic, sizeof(kBsamMagic)) != 0) {
      return DataLossError("BSAM: bad block magic");
    }
    uint32_t raw_size;
    uint32_t compressed_size;
    std::memcpy(&raw_size, file_bytes.data() + pos + 4, 4);
    std::memcpy(&compressed_size, file_bytes.data() + pos + 8, 4);
    pos += 12;
    if (pos + compressed_size > file_bytes.size()) {
      return DataLossError("BSAM: truncated block body");
    }
    Buffer block;
    PERSONA_RETURN_IF_ERROR(
        codec.Decompress(file_bytes.subspan(pos, compressed_size), raw_size, &block));
    pos += compressed_size;

    size_t offset = 0;
    while (offset < block.size()) {
      genome::Read read;
      align::AlignmentResult result;
      PERSONA_RETURN_IF_ERROR(DecodeBsamRecord(block.span(), &offset, &read, &result));
      reader.reads_.push_back(std::move(read));
      reader.results_.push_back(std::move(result));
    }
  }
  return reader;
}

}  // namespace persona::format
