#include "src/tco/tco_model.h"

#include "src/util/string_util.h"

namespace persona::tco {

TcoReport ComputeTco(const TcoParams& params) {
  TcoReport report;
  report.compute_capex = params.compute_server_cost * params.compute_servers;
  report.storage_capex = params.storage_server_cost * params.storage_servers;
  report.fabric_capex = params.fabric_port_cost * params.fabric_ports;
  report.total_capex = report.compute_capex + report.storage_capex + report.fabric_capex;
  report.tco_5yr = report.total_capex * params.tco_uplift;

  const double seconds_per_day = 86'400;
  const double days = 365 * params.years;
  report.alignments_per_day = params.compute_servers * seconds_per_day /
                              params.seconds_per_alignment_per_server;
  double lifetime_alignments = report.alignments_per_day * days;
  report.cost_per_alignment_cents =
      lifetime_alignments > 0 ? report.tco_5yr / lifetime_alignments * 100 : 0;

  report.genomes_stored = params.usable_capacity_tb * 1000 / params.genome_size_gb;
  report.storage_cost_per_genome =
      report.genomes_stored > 0 ? report.storage_capex / report.genomes_stored : 0;
  report.glacier_cost_per_genome_5yr =
      params.genome_size_gb * params.glacier_per_gb_month * 12 * params.years;

  report.single_server_tco = params.compute_server_cost * params.tco_uplift;
  report.single_server_alignments_per_day =
      seconds_per_day / params.seconds_per_alignment_per_server;
  double single_lifetime = report.single_server_alignments_per_day * days;
  report.single_server_cost_per_alignment_cents =
      single_lifetime > 0 ? report.single_server_tco / single_lifetime * 100 : 0;
  return report;
}

std::string FormatTcoTable(const TcoParams& params, const TcoReport& report) {
  std::string out;
  out += "Item              Unit cost   Units   Total\n";
  out += StrFormat("Compute Server    $%-9.0f %-7d $%.0fK\n", params.compute_server_cost,
                   params.compute_servers, report.compute_capex / 1000);
  out += StrFormat("Storage server    $%-9.0f %-7d $%.0fK\n", params.storage_server_cost,
                   params.storage_servers, report.storage_capex / 1000);
  out += StrFormat("Fabric ports      $%-9.0f %-7d $%.0fK\n", params.fabric_port_cost,
                   params.fabric_ports, report.fabric_capex / 1000);
  out += StrFormat("Total                                 $%.0fK\n",
                   report.total_capex / 1000);
  out += StrFormat("TCO(5yr)                              $%.0fK\n", report.tco_5yr / 1000);
  out += StrFormat("Cost/Alignment (100%% Utilization)     %.2f cents\n",
                   report.cost_per_alignment_cents);
  out += "\n";
  out += StrFormat("Cluster alignments/day: %.0f  (single server: %.0f)\n",
                   report.alignments_per_day, report.single_server_alignments_per_day);
  out += StrFormat("Single-server cost/alignment: %.2f cents\n",
                   report.single_server_cost_per_alignment_cents);
  out += StrFormat("Genomes stored at %.0f TB usable: %.0f\n", params.usable_capacity_tb,
                   report.genomes_stored);
  out += StrFormat("Storage cost/genome: $%.2f  (Glacier 5yr: $%.2f)\n",
                   report.storage_cost_per_genome, report.glacier_cost_per_genome_5yr);
  return out;
}

}  // namespace persona::tco
