// Total-cost-of-ownership model for Persona cluster architectures (paper §6.1, Table 3).
//
// Reproduces the paper's cost arithmetic: cluster capex (compute + storage + fabric
// ports), the 5-year datacenter TCO uplift (Hamilton's model [21]), cost per alignment
// at full occupancy, storage cost per genome on the cluster, and the Amazon Glacier
// comparison. All inputs default to the paper's published unit costs.

#ifndef PERSONA_SRC_TCO_TCO_MODEL_H_
#define PERSONA_SRC_TCO_TCO_MODEL_H_

#include <string>

namespace persona::tco {

struct TcoParams {
  // Table 3 unit costs and counts.
  double compute_server_cost = 8'450;
  int compute_servers = 60;
  double storage_server_cost = 7'575;
  int storage_servers = 7;
  double fabric_port_cost = 792;
  int fabric_ports = 67;

  // 5-year datacenter TCO uplift over capex: the paper's $613K -> $943K.
  double tco_uplift = 943.0 / 613.0;
  double years = 5;

  // Throughput assumptions: a single server aligns one genome in ~600 s ("a single
  // server can align ~144 full sequences per day").
  double seconds_per_alignment_per_server = 600;

  // Storage economics.
  double usable_capacity_tb = 126;       // paper: ~6000 genomes
  double genome_size_gb = 16;            // AGD half-dataset (paper §5.1); 21 for full
  double glacier_per_gb_month = 0.007;   // Amazon Glacier, 2016 pricing
};

struct TcoReport {
  double compute_capex = 0;
  double storage_capex = 0;
  double fabric_capex = 0;
  double total_capex = 0;
  double tco_5yr = 0;

  double alignments_per_day = 0;         // whole cluster at full occupancy
  double cost_per_alignment_cents = 0;

  double genomes_stored = 0;             // usable capacity / genome size
  double storage_cost_per_genome = 0;    // storage capex amortized per genome
  double glacier_cost_per_genome_5yr = 0;

  // Single-server scenario (§6.1 case 1).
  double single_server_tco = 0;
  double single_server_alignments_per_day = 0;
  double single_server_cost_per_alignment_cents = 0;
};

TcoReport ComputeTco(const TcoParams& params);

// Formats the report as the Table 3 layout plus the discussion figures.
std::string FormatTcoTable(const TcoParams& params, const TcoReport& report);

}  // namespace persona::tco

#endif  // PERSONA_SRC_TCO_TCO_MODEL_H_
