// FirstErrorCollector: thread-safe "keep the first error" accumulator.
//
// Ad-hoc worker fan-outs (standalone baselines, cluster node threads) all need the
// same reduction: many threads may fail, the caller reports the first failure. Before
// this existed each call site hand-rolled a mutex + Status pair — and one of them
// read the shared Status under the *wrong* mutex. Centralizing the pattern makes the
// locking invariant a compiler-checked contract instead of a convention.

#ifndef PERSONA_SRC_UTIL_FIRST_ERROR_H_
#define PERSONA_SRC_UTIL_FIRST_ERROR_H_

#include "src/util/mutex.h"
#include "src/util/status.h"

namespace persona {

class FirstErrorCollector {
 public:
  FirstErrorCollector() = default;
  FirstErrorCollector(const FirstErrorCollector&) = delete;
  FirstErrorCollector& operator=(const FirstErrorCollector&) = delete;

  // Records `status` if it is the first non-OK status seen. OK statuses are ignored,
  // so callers can funnel every result through unconditionally.
  void Record(const Status& status) EXCLUDES(mu_) {
    if (status.ok()) {
      return;
    }
    MutexLock lock(mu_);
    if (first_.ok()) {
      first_ = status;
    }
  }

  // The first recorded error, or OK if none was.
  [[nodiscard]] Status first() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return first_;
  }

  bool ok() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return first_.ok();
  }

 private:
  mutable Mutex mu_;
  Status first_ GUARDED_BY(mu_);
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_FIRST_ERROR_H_
