// Deterministic fast RNG (xoshiro256**) plus the small set of distributions the genome
// simulator needs. All Persona randomness is seeded so experiments reproduce exactly.

#ifndef PERSONA_SRC_UTIL_RNG_H_
#define PERSONA_SRC_UTIL_RNG_H_

#include <cstdint>
#include <cmath>

namespace persona {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into four non-zero state words.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Unbiased via rejection; bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Standard normal via Box-Muller (cheap enough for simulation volumes here).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u1 = 0;
    do {
      u1 = UniformDouble();
    } while (u1 <= 1e-300);
    double u2 = UniformDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(6.283185307179586 * u2);
    have_spare_ = true;
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  // Exponential with the given rate (events/unit-time); used by the cluster DES.
  double Exponential(double rate) {
    double u = 0;
    do {
      u = UniformDouble();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_RNG_H_
