// Small string helpers shared across modules (splitting, joining, formatting).

#ifndef PERSONA_SRC_UTIL_STRING_UTIL_H_
#define PERSONA_SRC_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace persona {

// Splits on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view text, char sep);

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-readable byte count, e.g. "3.5 MB".
std::string HumanBytes(uint64_t bytes);

// Parses a non-negative integer; returns -1 on malformed input.
int64_t ParseInt64(std::string_view text);

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_STRING_UTIL_H_
