#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace persona {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "UnknownCode";
}

bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kDeadlineExceeded;
}

bool IsTransient(const Status& status) { return IsTransient(status.code()); }

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

namespace {
Status Make(StatusCode code, std::string_view message) {
  return Status(code, std::string(message));
}
}  // namespace

Status CancelledError(std::string_view m) { return Make(StatusCode::kCancelled, m); }
Status InvalidArgumentError(std::string_view m) { return Make(StatusCode::kInvalidArgument, m); }
Status NotFoundError(std::string_view m) { return Make(StatusCode::kNotFound, m); }
Status AlreadyExistsError(std::string_view m) { return Make(StatusCode::kAlreadyExists, m); }
Status FailedPreconditionError(std::string_view m) {
  return Make(StatusCode::kFailedPrecondition, m);
}
Status OutOfRangeError(std::string_view m) { return Make(StatusCode::kOutOfRange, m); }
Status UnimplementedError(std::string_view m) { return Make(StatusCode::kUnimplemented, m); }
Status InternalError(std::string_view m) { return Make(StatusCode::kInternal, m); }
Status UnavailableError(std::string_view m) { return Make(StatusCode::kUnavailable, m); }
Status DataLossError(std::string_view m) { return Make(StatusCode::kDataLoss, m); }
Status ResourceExhaustedError(std::string_view m) {
  return Make(StatusCode::kResourceExhausted, m);
}
Status DeadlineExceededError(std::string_view m) {
  return Make(StatusCode::kDeadlineExceeded, m);
}

namespace internal_status {
void CheckOkFailed(const Status& status, const char* file, int line, const char* expr) {
  std::fprintf(stderr, "PERSONA_CHECK_OK failed at %s:%d: (%s) = %s\n", file, line, expr,
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal_status

}  // namespace persona
