#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace persona::json {

namespace {

// Recursive-descent parser over a string_view with a position cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    PERSONA_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string_view what) const {
    return InvalidArgumentError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                                std::string(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (!AtEnd() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (AtEnd()) {
      return Error("unexpected end of input");
    }
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        PERSONA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) {
          return Value(true);
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          return Value(false);
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          return Value(nullptr);
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++depth_;
    Consume('{');
    Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Error("expected object key");
      }
      PERSONA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWhitespace();
      PERSONA_ASSIGN_OR_RETURN(Value v, ParseValue());
      obj.emplace(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return Value(std::move(obj));
  }

  Result<Value> ParseArray() {
    ++depth_;
    Consume('[');
    Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      SkipWhitespace();
      PERSONA_ASSIGN_OR_RETURN(Value v, ParseValue());
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return Value(std::move(arr));
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        break;
      }
      if (c == '\\') {
        if (AtEnd()) {
          return Error("unterminated escape");
        }
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            PERSONA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Surrogate pair handling for completeness.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (!ConsumeLiteral("\\u")) {
                return Error("unpaired surrogate");
              }
              PERSONA_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
                        Peek() == 'e' || Peek() == 'E' || Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number '" + token + "'");
    }
    return Value(v);
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<const Value*> Value::Get(std::string_view key) const {
  if (!is_object()) {
    return InvalidArgumentError("JSON value is not an object");
  }
  auto it = obj_.find(std::string(key));
  if (it == obj_.end()) {
    return NotFoundError("missing JSON key '" + std::string(key) + "'");
  }
  return &it->second;
}

Result<std::string> Value::GetString(std::string_view key) const {
  PERSONA_ASSIGN_OR_RETURN(const Value* v, Get(key));
  if (!v->is_string()) {
    return InvalidArgumentError("JSON key '" + std::string(key) + "' is not a string");
  }
  return v->as_string();
}

Result<int64_t> Value::GetInt(std::string_view key) const {
  PERSONA_ASSIGN_OR_RETURN(const Value* v, Get(key));
  if (!v->is_number()) {
    return InvalidArgumentError("JSON key '" + std::string(key) + "' is not a number");
  }
  return v->as_int();
}

Result<const Array*> Value::GetArray(std::string_view key) const {
  PERSONA_ASSIGN_OR_RETURN(const Value* v, Get(key));
  if (!v->is_array()) {
    return InvalidArgumentError("JSON key '" + std::string(key) + "' is not an array");
  }
  return &v->as_array();
}

Result<const Object*> Value::GetObject(std::string_view key) const {
  PERSONA_ASSIGN_OR_RETURN(const Value* v, Get(key));
  if (!v->is_object()) {
    return InvalidArgumentError("JSON key '" + std::string(key) + "' is not an object");
  }
  return &v->as_object();
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(double num, std::string* out) {
  // Integers (the common case in manifests) print without a decimal point.
  if (std::floor(num) == num && std::fabs(num) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", num);
    *out += buf;
  }
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(num_, out);
      break;
    case Type::kString:
      *out += '"';
      *out += EscapeString(str_);
      *out += '"';
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) {
          *out += ',';
        }
        first = false;
        if (indent > 0) {
          Indent(out, indent, depth + 1);
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !arr_.empty()) {
        Indent(out, indent, depth);
      }
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, v] : obj_) {
        if (!first) {
          *out += ',';
        }
        first = false;
        if (indent > 0) {
          Indent(out, indent, depth + 1);
        }
        *out += '"';
        *out += EscapeString(key);
        *out += "\":";
        if (indent > 0) {
          *out += ' ';
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !obj_.empty()) {
        Indent(out, indent, depth);
      }
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Value> Parse(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace persona::json
