// Token-bucket rate limiter used to model storage device bandwidth (DESIGN.md §1).
//
// The storage substitution layer throttles reads/writes to a configured bytes-per-second
// rate so that single-disk / RAID0 / network-store experiments reproduce the paper's
// bandwidth ratios on one machine. Acquire() blocks the calling thread for the simulated
// transfer time; TryAcquire() supports non-blocking callers.

#ifndef PERSONA_SRC_UTIL_TOKEN_BUCKET_H_
#define PERSONA_SRC_UTIL_TOKEN_BUCKET_H_

#include <chrono>
#include <cstdint>

#include "src/util/mutex.h"

namespace persona {

class TokenBucket {
 public:
  // rate_bytes_per_sec == 0 means unlimited. burst_bytes caps accumulated credit.
  TokenBucket(uint64_t rate_bytes_per_sec, uint64_t burst_bytes);

  // Blocks until `bytes` of bandwidth credit is available, consuming it.
  void Acquire(uint64_t bytes) EXCLUDES(mu_);

  // Consumes credit if instantly available; otherwise returns false.
  bool TryAcquire(uint64_t bytes) EXCLUDES(mu_);

  uint64_t rate() const { return rate_; }

  // Total bytes ever acquired (for utilization accounting).
  uint64_t total_acquired() const EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  // Refills tokens based on elapsed time.
  void RefillLocked() REQUIRES(mu_);

  const uint64_t rate_;
  const double burst_;
  mutable Mutex mu_;
  double tokens_ GUARDED_BY(mu_);  // may go negative: outstanding debt being slept off
  Clock::time_point last_refill_ GUARDED_BY(mu_);
  uint64_t total_acquired_ GUARDED_BY(mu_) = 0;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_TOKEN_BUCKET_H_
