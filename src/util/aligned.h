// Aligned allocation for vector-kernel buffers.
//
// The SIMD alignment kernels use aligned loads/stores over their DP rows and
// interleaved sequence buffers; AlignedVector gives those buffers a 32-byte
// (AVX2-register) alignment guarantee so no kernel needs an unaligned-load
// fallback path. Alignment is a property of the allocation only — an
// AlignedVector is otherwise a std::vector and all element access is unchanged.

#ifndef PERSONA_SRC_UTIL_ALIGNED_H_
#define PERSONA_SRC_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace persona {

inline constexpr size_t kSimdAlignment = 32;  // one AVX2 register

// Minimal std-compatible allocator over std::aligned_alloc. Rebind-safe and
// stateless; equality is type-identity as required for allocator correctness.
template <typename T, size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment must satisfy the element type");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) {
      return nullptr;
    }
    // aligned_alloc requires the size to be a multiple of the alignment.
    const size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t) { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

// A std::vector whose data() is 32-byte aligned (suitable for aligned vector
// loads at any multiple-of-8 int32 offset).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_ALIGNED_H_
