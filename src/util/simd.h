// Runtime SIMD dispatch for the alignment kernels.
//
// Kernels are compiled at several x86 ISA levels in dedicated translation units
// (see src/align/*_simd_{sse4,avx2}.cc, each built with the matching -m flags);
// the level actually executed is chosen once at startup from what the CPU
// supports, overridable with the PERSONA_SIMD environment variable so every
// code path is testable on any machine:
//
//   PERSONA_SIMD=off   (or "scalar")  force the scalar reference kernels
//   PERSONA_SIMD=sse4                 force the 4-lane SSE4.1 kernels
//   PERSONA_SIMD=avx2                 force the 8-lane AVX2 kernels
//
// Forcing a level the CPU does not support is refused: ResolveSimdLevel returns
// an error, and ActiveSimdLevel logs the refusal once and falls back to the
// highest supported level (never to an illegal-instruction crash). All SIMD
// kernels are parity oracles of their scalar counterparts — every level
// produces bit-identical results, so the choice is performance-only.

#ifndef PERSONA_SRC_UTIL_SIMD_H_
#define PERSONA_SRC_UTIL_SIMD_H_

#include <string_view>

#include "src/util/result.h"

namespace persona {

// Ordered: a higher level implies the CPU also runs every lower one.
enum class SimdLevel : int {
  kScalar = 0,  // reference kernels, no vector instructions
  kSse4 = 1,    // SSE4.1, 4 x int32 lanes
  kAvx2 = 2,    // AVX2, 8 x int32 lanes
};

// Human-readable name ("off", "sse4", "avx2") — the same tokens PERSONA_SIMD accepts.
std::string_view SimdLevelName(SimdLevel level);

// Parses a PERSONA_SIMD value. Accepts "off"/"scalar", "sse4", "avx2";
// anything else is an InvalidArgument error. Does not check CPU support.
Result<SimdLevel> ParseSimdLevel(std::string_view value);

// Highest level this CPU can execute (runtime __builtin_cpu_supports probe).
SimdLevel HighestSupportedSimdLevel();

// True when the CPU can execute `level`.
bool SimdLevelSupported(SimdLevel level);

// Parses `value` and verifies the CPU supports it; unsupported or unknown
// levels are refused with a descriptive error (never a crash later).
Result<SimdLevel> ResolveSimdLevel(std::string_view value);

// The level kernels dispatch on: PERSONA_SIMD if set and valid, else the
// highest supported level. Resolved once and cached (set the environment
// variable before first use). An invalid or unsupported override is refused:
// a warning is logged once and the highest supported level is used instead.
SimdLevel ActiveSimdLevel();

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_SIMD_H_
