#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace persona {

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return StrFormat("%.2f %s", v, units[unit]);
}

int64_t ParseInt64(std::string_view text) {
  if (text.empty()) {
    return -1;
  }
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return -1;
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace persona
