// Result<T>: a value-or-Status return type (absl::StatusOr shape).

#ifndef PERSONA_SRC_UTIL_RESULT_H_
#define PERSONA_SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace persona {

// Holds either a T or a non-OK Status. Accessing the value of an errored Result is a
// programming error (asserted in debug builds). [[nodiscard]] for the same reason
// Status is: dropping a Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit, so `return MakeFoo();` and `return SomeError();` both work.
  Result(const T& value) : value_(value) {}
  Result(T&& value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without a value");
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise assigns the
// value to `lhs`. `lhs` may be a declaration, e.g.
//   PERSONA_ASSIGN_OR_RETURN(auto chunk, ReadChunk(path));
#define PERSONA_ASSIGN_OR_RETURN(lhs, rexpr) \
  PERSONA_ASSIGN_OR_RETURN_IMPL_(PERSONA_CONCAT_(persona_result_, __LINE__), lhs, rexpr)

#define PERSONA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

#define PERSONA_CONCAT_(a, b) PERSONA_CONCAT_IMPL_(a, b)
#define PERSONA_CONCAT_IMPL_(a, b) a##b

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_RESULT_H_
