// Filesystem helpers: whole-file I/O, directories, and a scoped temp directory.

#ifndef PERSONA_SRC_UTIL_FILE_UTIL_H_
#define PERSONA_SRC_UTIL_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona {

[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);
[[nodiscard]] Status ReadFileToBuffer(const std::string& path, Buffer* out);
[[nodiscard]] Status WriteStringToFile(const std::string& path, std::string_view contents);
[[nodiscard]] Status WriteBufferToFile(const std::string& path, const Buffer& buffer);

// Crash-safe whole-file replace: writes a unique temp file next to `path`, fsyncs it,
// and renames it over `path`. A crash at any point leaves either the old contents or
// the new contents — never a torn file. Manifests and job journals, whose loss turns a
// resumable job into a rerun, go through this instead of WriteStringToFile.
[[nodiscard]] Status WriteFileAtomic(const std::string& path, std::string_view contents);

bool FileExists(const std::string& path);
[[nodiscard]] Result<uint64_t> FileSize(const std::string& path);
[[nodiscard]] Status MakeDirectories(const std::string& path);
[[nodiscard]] Status RemoveFile(const std::string& path);

// Creates a unique directory under the system temp dir and removes it (recursively) on
// destruction. Used pervasively by tests and benchmarks.
class ScopedTempDir {
 public:
  // `tag` becomes part of the directory name for debuggability.
  explicit ScopedTempDir(std::string_view tag = "persona");
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string FilePath(std::string_view name) const { return path_ + "/" + std::string(name); }

 private:
  std::string path_;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_FILE_UTIL_H_
