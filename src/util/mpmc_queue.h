// Bounded multi-producer multi-consumer blocking queue with close semantics.
//
// This is the inter-kernel queue primitive of the dataflow engine (paper §4.5): bounded
// capacity provides flow control and caps memory; Close() lets upstream stages signal
// end-of-stream so downstream worker loops drain and exit.

#ifndef PERSONA_SRC_UTIL_MPMC_QUEUE_H_
#define PERSONA_SRC_UTIL_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace persona {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks until space is available. Returns false if the queue was closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    total_pushed_++;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; fails when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      total_pushed_++;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // After Close(): pushes fail, pops drain remaining items then return nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // Total items ever pushed; used by pipeline statistics.
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t total_pushed_ = 0;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_MPMC_QUEUE_H_
