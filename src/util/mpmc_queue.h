// Bounded multi-producer multi-consumer blocking queue with close semantics.
//
// This is the inter-kernel queue primitive of the dataflow engine (paper §4.5): bounded
// capacity provides flow control and caps memory; Close() lets upstream stages signal
// end-of-stream so downstream worker loops drain and exit.

#ifndef PERSONA_SRC_UTIL_MPMC_QUEUE_H_
#define PERSONA_SRC_UTIL_MPMC_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "src/util/mutex.h"

namespace persona {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks until space is available. Returns false if the queue was closed (item dropped).
  [[nodiscard]] bool Push(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (items_.size() >= capacity_ && !closed_) {
        not_full_.Wait(mu_);
      }
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
      total_pushed_++;
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; fails when full or closed.
  [[nodiscard]] bool TryPush(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      total_pushed_++;
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) {
        not_empty_.Wait(mu_);
      }
      if (items_.empty()) {
        return std::nullopt;  // closed and drained
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  // After Close(): pushes fail, pops drain remaining items then return nullopt.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // Total items ever pushed; used by pipeline statistics.
  uint64_t total_pushed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return total_pushed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  uint64_t total_pushed_ GUARDED_BY(mu_) = 0;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_MPMC_QUEUE_H_
