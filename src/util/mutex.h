// persona::Mutex / CondVar / MutexLock: the only blessed mutual-exclusion primitives.
//
// These are zero-cost wrappers over std::mutex / std::condition_variable that carry
// Clang Thread Safety Analysis annotations, so locking invariants ("field X is guarded
// by mu_", "calling F requires holding mu_") are checked at compile time under
// `clang -Wthread-safety -Werror` instead of being tribal knowledge a TSan workload
// may or may not tickle. Under GCC (which has no thread-safety analysis) every
// annotation macro expands to nothing and the wrappers inline to the std types.
//
// Project rule (enforced by scripts/check_lint.sh): std::mutex and
// std::condition_variable are not used anywhere in src/ outside this header.
//
// How to annotate new code:
//   - Declare the lock:            Mutex mu_;
//   - Tie data to it:              std::deque<T> items_ GUARDED_BY(mu_);
//   - Lock a scope:                MutexLock lock(mu_);
//   - Private must-hold helpers:   void RefillLocked() REQUIRES(mu_);
//   - Public self-locking methods: void Push(T item) EXCLUDES(mu_);
//   - Condition waits are explicit loops (the analysis cannot see through a
//     wait-predicate lambda):
//         MutexLock lock(mu_);
//         while (items_.empty() && !closed_) {
//           not_empty_.Wait(mu_);
//         }

#ifndef PERSONA_SRC_UTIL_MUTEX_H_
#define PERSONA_SRC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// --- Clang Thread Safety Analysis attribute macros (no-ops on other compilers). ---

#if defined(__clang__) && (!defined(SWIG))
#define PERSONA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PERSONA_THREAD_ANNOTATION_(x)
#endif

// Marks a class as a lockable capability (appears in diagnostics as 'mutex').
#define CAPABILITY(x) PERSONA_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY PERSONA_THREAD_ANNOTATION_(scoped_lockable)

// Data member may only be accessed while holding the given capability.
#define GUARDED_BY(x) PERSONA_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* may only be accessed while holding the capability.
#define PT_GUARDED_BY(x) PERSONA_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function requires the capability to be held on entry (and does not release it).
#define REQUIRES(...) PERSONA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function acquires the capability (must not already be held).
#define ACQUIRE(...) PERSONA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

// Function releases the capability (must be held on entry).
#define RELEASE(...) PERSONA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) PERSONA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called while holding the capability (self-deadlock guard).
#define EXCLUDES(...) PERSONA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Declares lock-acquisition ordering between capabilities (checked under
// -Wthread-safety-beta on newer clangs; documentation-grade elsewhere).
#define ACQUIRED_BEFORE(...) PERSONA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PERSONA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Asserts at runtime-trust level that the capability is held (no analysis check).
#define ASSERT_CAPABILITY(x) PERSONA_THREAD_ANNOTATION_(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) PERSONA_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Use only with a comment
// explaining why the invariant holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS PERSONA_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace persona {

class CondVar;

// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope lock over a Mutex (the clang-docs MutexLocker shape: releasable early
// via Unlock, reacquirable via Lock, released on destruction if still held).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases before scope end (e.g. to notify a condition variable unlocked; only
  // safe when no waiter can destroy the CondVar the moment the state is visible).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }

  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable bound to persona::Mutex. Wait() requires the mutex held and —
// like std::condition_variable::wait — atomically releases it while sleeping and
// reacquires it before returning. Waits must be wrapped in an explicit predicate
// loop (see the header comment); there is deliberately no lambda-predicate overload
// because the analysis cannot check guarded accesses inside one.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex so the plain (fast) std::condition_variable
    // can be used; release the guard afterwards so ownership stays with the caller.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Timed wait: returns false on timeout, true when notified (spurious wakeups
  // included — callers loop on their predicate either way). Used by periodic
  // housekeeping threads (lease sweepers, heartbeats) that must both tick on a
  // deadline and wake immediately on shutdown.
  bool WaitFor(Mutex& mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const auto result = cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return result == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_MUTEX_H_
