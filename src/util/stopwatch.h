// Wall-clock stopwatch used by benchmarks and pipeline statistics.

#ifndef PERSONA_SRC_UTIL_STOPWATCH_H_
#define PERSONA_SRC_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace persona {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_STOPWATCH_H_
