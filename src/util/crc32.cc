#include "src/util/crc32.h"

#include <array>

namespace persona {

namespace {

// Table generated at static-init time from the reflected polynomial 0xEDB88320.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  return kTable;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> bytes) {
  const auto& table = Table();
  crc = ~crc;
  for (uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(std::span<const uint8_t> bytes) { return Crc32Update(0, bytes); }

uint32_t Crc32(std::string_view bytes) {
  return Crc32(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(bytes.data()),
                                        bytes.size()));
}

}  // namespace persona
