// Minimal leveled logging. Thread-safe; writes to stderr.
//
// Usage:  PLOG(INFO) << "aligned " << n << " reads";
// Levels: DEBUG < INFO < WARN < ERROR. Default minimum level is INFO; override with
// SetMinLogLevel or the PERSONA_LOG_LEVEL environment variable (0=DEBUG..3=ERROR).

#ifndef PERSONA_SRC_UTIL_LOGGING_H_
#define PERSONA_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace persona {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_log {

// Accumulates one log line and emits it (with a timestamp and level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below the minimum.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_log

#define PLOG(severity) PLOG_##severity

#define PLOG_DEBUG                                                  \
  if (::persona::MinLogLevel() > ::persona::LogLevel::kDebug) {     \
  } else                                                            \
    ::persona::internal_log::LogMessage(::persona::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define PLOG_INFO                                                   \
  if (::persona::MinLogLevel() > ::persona::LogLevel::kInfo) {      \
  } else                                                            \
    ::persona::internal_log::LogMessage(::persona::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define PLOG_WARN                                                   \
  if (::persona::MinLogLevel() > ::persona::LogLevel::kWarn) {      \
  } else                                                            \
    ::persona::internal_log::LogMessage(::persona::LogLevel::kWarn, __FILE__, __LINE__).stream()
#define PLOG_ERROR \
  ::persona::internal_log::LogMessage(::persona::LogLevel::kError, __FILE__, __LINE__).stream()

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_LOGGING_H_
