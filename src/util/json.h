// A small self-contained JSON value model, parser, and serializer.
//
// AGD manifests (§3 of the paper) are "simple JSON files"; this module provides exactly
// the JSON subset they need: null, bool, number (stored as double, with faithful integer
// round-trip up to 2^53), string, array, object. Parsing is strict (no comments, no
// trailing commas); serialization supports compact and pretty-printed output.

#ifndef PERSONA_SRC_UTIL_JSON_H_
#define PERSONA_SRC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace persona::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps key order deterministic, which keeps manifests diff-friendly.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

// A dynamically typed JSON value.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i) {}
  Value(int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), str_(s) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Unchecked accessors; call only after checking the type.
  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  int64_t as_int() const { return static_cast<int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  Array& as_array() { return arr_; }
  const Object& as_object() const { return obj_; }
  Object& as_object() { return obj_; }

  // Object field lookup; error if not an object or key missing.
  Result<const Value*> Get(std::string_view key) const;
  // Typed field lookups used by manifest parsing.
  Result<std::string> GetString(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<const Array*> GetArray(std::string_view key) const;
  Result<const Object*> GetObject(std::string_view key) const;

  // Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  bool operator==(const Value& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Parses a complete JSON document. Trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

// Escapes a string for embedding in JSON output (without surrounding quotes).
std::string EscapeString(std::string_view s);

}  // namespace persona::json

#endif  // PERSONA_SRC_UTIL_JSON_H_
