#include "src/util/simd.h"

#include <cstdlib>
#include <string>

#include "src/util/logging.h"

namespace persona {

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "off";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<SimdLevel> ParseSimdLevel(std::string_view value) {
  if (value == "off" || value == "scalar") {
    return SimdLevel::kScalar;
  }
  if (value == "sse4") {
    return SimdLevel::kSse4;
  }
  if (value == "avx2") {
    return SimdLevel::kAvx2;
  }
  return InvalidArgumentError("unknown PERSONA_SIMD level '" + std::string(value) +
                              "' (expected off|sse4|avx2)");
}

SimdLevel HighestSupportedSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.1")) {
    return SimdLevel::kSse4;
  }
#endif
  return SimdLevel::kScalar;
}

bool SimdLevelSupported(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(HighestSupportedSimdLevel());
}

Result<SimdLevel> ResolveSimdLevel(std::string_view value) {
  Result<SimdLevel> parsed = ParseSimdLevel(value);
  if (!parsed.ok()) {
    return parsed;
  }
  if (!SimdLevelSupported(*parsed)) {
    return InvalidArgumentError("PERSONA_SIMD=" + std::string(value) +
                                " is not supported by this CPU (highest: " +
                                std::string(SimdLevelName(HighestSupportedSimdLevel())) +
                                ")");
  }
  return parsed;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = [] {
    const char* env = std::getenv("PERSONA_SIMD");
    if (env == nullptr || *env == '\0') {
      return HighestSupportedSimdLevel();
    }
    Result<SimdLevel> resolved = ResolveSimdLevel(env);
    if (resolved.ok()) {
      return *resolved;
    }
    PLOG(WARN) << "refusing SIMD override: " << resolved.status().message()
               << "; using " << SimdLevelName(HighestSupportedSimdLevel());
    return HighestSupportedSimdLevel();
  }();
  return level;
}

}  // namespace persona
