// Buffer: a growable, reusable byte buffer.
//
// Persona's zero-copy architecture (§4.5 of the paper) passes pooled Buffer objects
// between dataflow nodes instead of copying payloads. Buffers keep their capacity across
// Clear() so that pool recycling amortizes allocation.

#ifndef PERSONA_SRC_UTIL_BUFFER_H_
#define PERSONA_SRC_UTIL_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace persona {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t initial_capacity) { data_.reserve(initial_capacity); }

  // Movable, not copyable: accidental payload copies defeat the pooling design.
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;

  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }
  size_t size() const { return data_.size(); }
  size_t capacity() const { return data_.capacity(); }
  bool empty() const { return data_.empty(); }

  std::span<const uint8_t> span() const { return {data_.data(), data_.size()}; }
  std::span<uint8_t> mutable_span() { return {data_.data(), data_.size()}; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }

  // Drops contents but keeps capacity (pool-recycling friendly).
  void Clear() { data_.clear(); }

  void Reserve(size_t capacity) { data_.reserve(capacity); }
  void Resize(size_t size) { data_.resize(size); }

  void Append(const void* src, size_t n) {
    if (n == 0) {
      return;
    }
    const size_t old_size = data_.size();
    data_.resize(old_size + n);
    std::memcpy(data_.data() + old_size, src, n);
  }
  void Append(std::span<const uint8_t> bytes) { Append(bytes.data(), bytes.size()); }
  void Append(std::string_view s) { Append(s.data(), s.size()); }
  void AppendByte(uint8_t b) { data_.push_back(b); }

  // Fixed-width little-endian scalar append/read, used by chunk headers and records.
  template <typename T>
  void AppendScalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(&v, sizeof(v));
  }

  template <typename T>
  T ReadScalar(size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    std::memcpy(&v, data_.data() + offset, sizeof(v));
    return v;
  }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_BUFFER_H_
