// Buffer: a growable, reusable byte buffer.
//
// Persona's zero-copy architecture (§4.5 of the paper) passes pooled Buffer objects
// between dataflow nodes instead of copying payloads. Buffers keep their capacity across
// Clear() so that pool recycling amortizes allocation.
//
// Storage is a raw heap block rather than std::vector so that the store read paths can
// size a buffer without the vector's value-initialization pass: ResizeUninitialized
// exposes bytes that the caller promises to overwrite (a Get's memcpy, a file read, a
// codec's output), which makes one whole-object transfer a single write over the
// payload instead of a zero-fill followed by a copy. Every heap allocation is counted
// in a process-wide counter (TotalAllocations) so tests can assert that a warmed pool
// serves repeated GetBatch rounds with zero new allocations — the property the pooled
// zero-copy design exists to provide.

#ifndef PERSONA_SRC_UTIL_BUFFER_H_
#define PERSONA_SRC_UTIL_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>

namespace persona {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t initial_capacity) { Reserve(initial_capacity); }

  // Movable, not copyable: accidental payload copies defeat the pooling design.
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept
      : data_(std::move(other.data_)), size_(other.size_), capacity_(other.capacity_) {
    other.size_ = 0;
    other.capacity_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    data_ = std::move(other.data_);
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.size_ = 0;
    other.capacity_ = 0;
    return *this;
  }

  const uint8_t* data() const { return data_.get(); }
  uint8_t* data() { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  std::span<const uint8_t> span() const { return {data_.get(), size_}; }
  std::span<uint8_t> mutable_span() { return {data_.get(), size_}; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_.get()), size_};
  }

  // Drops contents but keeps capacity (pool-recycling friendly).
  void Clear() { size_ = 0; }

  void Reserve(size_t capacity) {
    if (capacity > capacity_) {
      Grow(capacity);
    }
  }

  // vector-compatible resize: bytes added beyond the current size read as zero.
  void Resize(size_t size) {
    if (size > size_) {
      EnsureCapacity(size);
      std::memset(data_.get() + size_, 0, size - size_);
    }
    size_ = size;
  }

  // Resize without initializing the added bytes: the caller promises to overwrite
  // [old_size, size) before reading it. This is the zero-copy transfer entry point —
  // a store's Get, a file read, or a codec lands the payload directly, paying one
  // write pass over the bytes instead of memset + copy.
  void ResizeUninitialized(size_t size) {
    if (size > size_) {
      EnsureCapacity(size);
    }
    size_ = size;
  }

  void Append(const void* src, size_t n) {
    if (n == 0) {
      return;
    }
    const size_t old_size = size_;
    ResizeUninitialized(old_size + n);
    std::memcpy(data_.get() + old_size, src, n);
  }
  void Append(std::span<const uint8_t> bytes) { Append(bytes.data(), bytes.size()); }
  void Append(std::string_view s) { Append(s.data(), s.size()); }
  void AppendByte(uint8_t b) {
    EnsureCapacity(size_ + 1);
    data_[size_++] = b;
  }

  // Fixed-width little-endian scalar append/read, used by chunk headers and records.
  template <typename T>
  void AppendScalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(&v, sizeof(v));
  }

  template <typename T>
  T ReadScalar(size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    std::memcpy(&v, data_.get() + offset, sizeof(v));
    return v;
  }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  // Process-wide count of heap allocations performed by any Buffer (monotonic). The
  // steady-state contract of the pooled pipelines — and the cache's warm read path —
  // is that repeated transfers through warmed buffers allocate nothing; tests take a
  // before/after delta of this counter to prove it.
  static uint64_t TotalAllocations() {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  void EnsureCapacity(size_t needed) {
    if (needed > capacity_) {
      // Amortized doubling, same policy as the vector it replaces.
      Grow(needed > capacity_ * 2 ? needed : capacity_ * 2);
    }
  }

  void Grow(size_t new_capacity) {
    // make_unique_for_overwrite: the block is sized, not value-initialized — newly
    // exposed bytes are defined by Resize (memset) or the caller's overwrite.
    auto grown = std::make_unique_for_overwrite<uint8_t[]>(new_capacity);
    allocations_.fetch_add(1, std::memory_order_relaxed);
    if (size_ > 0) {
      std::memcpy(grown.get(), data_.get(), size_);
    }
    data_ = std::move(grown);
    capacity_ = new_capacity;
  }

  static inline std::atomic<uint64_t> allocations_{0};

  std::unique_ptr<uint8_t[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_BUFFER_H_
