// CRC-32 (IEEE 802.3 polynomial), used to checksum AGD chunk data blocks.

#ifndef PERSONA_SRC_UTIL_CRC32_H_
#define PERSONA_SRC_UTIL_CRC32_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace persona {

// One-shot CRC of a byte span.
uint32_t Crc32(std::span<const uint8_t> bytes);
uint32_t Crc32(std::string_view bytes);

// Incremental form: seed with 0, feed successive spans.
uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> bytes);

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_CRC32_H_
