#include "src/util/token_bucket.h"

#include <algorithm>
#include <thread>

namespace persona {

TokenBucket::TokenBucket(uint64_t rate_bytes_per_sec, uint64_t burst_bytes)
    : rate_(rate_bytes_per_sec),
      burst_(static_cast<double>(burst_bytes == 0 ? 1 : burst_bytes)),
      tokens_(burst_),
      last_refill_(Clock::now()) {}

void TokenBucket::RefillLocked() {
  auto now = Clock::now();
  double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * static_cast<double>(rate_));
}

void TokenBucket::Acquire(uint64_t bytes) {
  if (rate_ == 0) {
    MutexLock lock(mu_);
    total_acquired_ += bytes;
    return;
  }
  // Debt model: debit the full request immediately (the balance may go negative), then
  // sleep until the balance would be non-negative again. Concurrent acquirers stack
  // debt, so aggregate throughput converges to the configured rate even for requests
  // larger than the burst.
  double wait_sec = 0;
  {
    MutexLock lock(mu_);
    RefillLocked();
    tokens_ -= static_cast<double>(bytes);
    total_acquired_ += bytes;
    if (tokens_ < 0) {
      wait_sec = -tokens_ / static_cast<double>(rate_);
    }
  }
  if (wait_sec > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_sec));
  }
}

bool TokenBucket::TryAcquire(uint64_t bytes) {
  MutexLock lock(mu_);
  if (rate_ == 0) {
    total_acquired_ += bytes;
    return true;
  }
  RefillLocked();
  double need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    tokens_ -= need;
    total_acquired_ += bytes;
    return true;
  }
  return false;
}

uint64_t TokenBucket::total_acquired() const {
  MutexLock lock(mu_);
  return total_acquired_;
}

}  // namespace persona
