#include "src/util/varint.h"

namespace persona {

void PutVarint(uint64_t value, Buffer* out) {
  while (value >= 0x80) {
    out->AppendByte(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->AppendByte(static_cast<uint8_t>(value));
}

Result<uint64_t> GetVarint(std::span<const uint8_t> bytes, size_t* offset) {
  uint64_t value = 0;
  int shift = 0;
  size_t pos = *offset;
  while (true) {
    if (pos >= bytes.size()) {
      return DataLossError("truncated varint");
    }
    uint8_t b = bytes[pos++];
    if (shift >= 63 && (b & 0x7E) != 0) {
      return DataLossError("varint overflows 64 bits");
    }
    value |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  *offset = pos;
  return value;
}

void PutSignedVarint(int64_t value, Buffer* out) {
  // Zig-zag: maps small magnitudes (either sign) to small encodings.
  uint64_t zz = (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint(zz, out);
}

Result<int64_t> GetSignedVarint(std::span<const uint8_t> bytes, size_t* offset) {
  PERSONA_ASSIGN_OR_RETURN(uint64_t zz, GetVarint(bytes, offset));
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

size_t VarintLength(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace persona
