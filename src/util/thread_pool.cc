#include "src/util/thread_pool.h"

namespace persona {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [&] { return !tasks_.empty() || shutdown_; });
      if (tasks_.empty()) {
        // Shutdown with an empty queue: exit. (Shutdown drains queued tasks first.)
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace persona
