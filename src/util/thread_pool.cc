#include "src/util/thread_pool.h"

namespace persona {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    all_done_.Wait(mu_);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (tasks_.empty() && !shutdown_) {
        task_available_.Wait(mu_);
      }
      if (tasks_.empty()) {
        // Shutdown with an empty queue: exit. (Shutdown drains queued tasks first.)
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace persona
