#include "src/util/file_util.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace persona {

namespace fs = std::filesystem;

namespace {

// stdio transfers may legitimately return short counts (EINTR on a signal-interrupted
// syscall under the hood, pipes/special files): retry the remainder and only treat a
// short count with a sticky error — or zero progress — as failure. Same discipline as
// Connection::SendAll/RecvAll on sockets.
Status ReadExactly(std::FILE* f, void* data, size_t size, const std::string& path) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const size_t rc = std::fread(p + got, 1, size - got, f);
    if (rc == 0) {
      if (std::ferror(f) != 0 && errno == EINTR) {
        std::clearerr(f);
        continue;
      }
      return DataLossError("short read from file: " + path);
    }
    got += rc;
  }
  return OkStatus();
}

Status WriteExactly(std::FILE* f, const void* data, size_t size, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    const size_t rc = std::fwrite(p + written, 1, size - written, f);
    if (rc == 0) {
      if (std::ferror(f) != 0 && errno == EINTR) {
        std::clearerr(f);
        continue;
      }
      return DataLossError("short write to file: " + path);
    }
    written += rc;
  }
  return OkStatus();
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    Status status = ReadExactly(f, out.data(), out.size(), path);
    if (!status.ok()) {
      std::fclose(f);
      return status;
    }
  }
  std::fclose(f);
  return out;
}

Status ReadFileToBuffer(const std::string& path, Buffer* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->Clear();
  if (size > 0) {
    // fread overwrites every byte; skip the zero-fill a plain Resize would pay.
    out->ResizeUninitialized(static_cast<size_t>(size));
    Status status = ReadExactly(f, out->data(), out->size(), path);
    if (!status.ok()) {
      std::fclose(f);
      return status;
    }
  }
  std::fclose(f);
  return OkStatus();
}

namespace {
Status WriteBytes(const std::string& path, const void* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot create file: " + path);
  }
  if (size > 0) {
    Status status = WriteExactly(f, data, size, path);
    if (!status.ok()) {
      std::fclose(f);
      return status;
    }
  }
  // fclose flushes the stdio buffer; a full disk surfaces here, so the result must
  // be checked for the write to be durable.
  if (std::fclose(f) != 0) {
    return DataLossError("close failed for file: " + path);
  }
  return OkStatus();
}
}  // namespace

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  return WriteBytes(path, contents.data(), contents.size());
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Unique per process + call so concurrent writers of the same path never share a
  // temp file; the rename still races, but each rename installs one complete file.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot create temp file: " + tmp);
  }
  Status status = contents.empty()
                      ? OkStatus()
                      : WriteExactly(f, contents.data(), contents.size(), tmp);
  // fflush pushes the stdio buffer to the kernel so fsync covers every byte; only
  // after fsync succeeds is the temp file durable enough to rename into place.
  if (status.ok() && std::fflush(f) != 0) {
    status = DataLossError("flush failed for temp file: " + tmp);
  }
  if (status.ok() && ::fsync(::fileno(f)) != 0) {
    status = DataLossError("fsync failed for temp file: " + tmp);
  }
  if (std::fclose(f) != 0 && status.ok()) {
    status = DataLossError("close failed for temp file: " + tmp);
  }
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = UnavailableError("rename failed: " + tmp + " -> " + path);
  }
  if (!status.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);  // best effort; the temp file is garbage either way
  }
  return status;
}

Status WriteBufferToFile(const std::string& path, const Buffer& buffer) {
  return WriteBytes(path, buffer.data(), buffer.size());
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return NotFoundError("file_size failed: " + path + ": " + ec.message());
  }
  return size;
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return UnavailableError("create_directories failed: " + path + ": " + ec.message());
  }
  return OkStatus();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return NotFoundError("remove failed: " + path);
  }
  return OkStatus();
}

ScopedTempDir::ScopedTempDir(std::string_view tag) {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1);
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    base = "/tmp";
  }
  path_ = (base / (std::string(tag) + "-" + std::to_string(::getpid()) + "-" +
                   std::to_string(id)))
              .string();
  fs::create_directories(path_, ec);
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);
}

}  // namespace persona
