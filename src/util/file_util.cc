#include "src/util/file_util.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace persona {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    size_t read = std::fread(out.data(), 1, out.size(), f);
    if (read != out.size()) {
      std::fclose(f);
      return DataLossError("short read from file: " + path);
    }
  }
  std::fclose(f);
  return out;
}

Status ReadFileToBuffer(const std::string& path, Buffer* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open file: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->Clear();
  if (size > 0) {
    out->Resize(static_cast<size_t>(size));
    size_t read = std::fread(out->data(), 1, out->size(), f);
    if (read != out->size()) {
      std::fclose(f);
      return DataLossError("short read from file: " + path);
    }
  }
  std::fclose(f);
  return OkStatus();
}

namespace {
Status WriteBytes(const std::string& path, const void* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot create file: " + path);
  }
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::fclose(f);
    return DataLossError("short write to file: " + path);
  }
  if (std::fclose(f) != 0) {
    return DataLossError("close failed for file: " + path);
  }
  return OkStatus();
}
}  // namespace

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  return WriteBytes(path, contents.data(), contents.size());
}

Status WriteBufferToFile(const std::string& path, const Buffer& buffer) {
  return WriteBytes(path, buffer.data(), buffer.size());
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) {
    return NotFoundError("file_size failed: " + path + ": " + ec.message());
  }
  return size;
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return UnavailableError("create_directories failed: " + path + ": " + ec.message());
  }
  return OkStatus();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return NotFoundError("remove failed: " + path);
  }
  return OkStatus();
}

ScopedTempDir::ScopedTempDir(std::string_view tag) {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = counter.fetch_add(1);
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    base = "/tmp";
  }
  path_ = (base / (std::string(tag) + "-" + std::to_string(::getpid()) + "-" +
                   std::to_string(id)))
              .string();
  fs::create_directories(path_, ec);
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);
}

}  // namespace persona
