// Status: lightweight error propagation for Persona.
//
// Library code in this repository does not throw exceptions; fallible functions return
// Status (or Result<T>, see result.h). The design follows the widely used absl::Status
// shape so that downstream users find familiar idioms.

#ifndef PERSONA_SRC_UTIL_STATUS_H_
#define PERSONA_SRC_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace persona {

// Canonical error space, mirroring the common RPC code set.
enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kUnavailable = 9,
  kDataLoss = 10,
  kResourceExhausted = 11,
  kDeadlineExceeded = 12,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Whether an error of this code is worth retrying: the operation failed for a reason
// that can clear on its own (a node rebooting, a deadline lost to a transient stall).
// Permanent data/usage errors — kNotFound, kDataLoss, kInvalidArgument, ... — must
// surface immediately; retrying them only hides bugs and burns the retry budget.
bool IsTransient(StatusCode code);

// Value type carrying a code plus an optional message. OK statuses allocate nothing.
// [[nodiscard]]: a dropped Status is a swallowed error; every producer must be checked
// or explicitly routed (e.g. into a FirstErrorCollector or a log line).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // shared_ptr keeps Status cheaply copyable; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

inline Status OkStatus() { return Status(); }

// Constructor helpers for each canonical code.
Status CancelledError(std::string_view message);
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status InternalError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DataLossError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status DeadlineExceededError(std::string_view message);

// IsTransient over a whole Status; an OK status is not transient (there is nothing to
// retry).
bool IsTransient(const Status& status);

// Propagates a non-OK Status to the caller.
#define PERSONA_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::persona::Status persona_status_tmp_ = (expr);     \
    if (!persona_status_tmp_.ok()) {                    \
      return persona_status_tmp_;                       \
    }                                                   \
  } while (0)

// Aborts the process if `expr` is a non-OK Status. For use in tests, examples, and
// benchmark drivers where failure is unrecoverable.
#define PERSONA_CHECK_OK(expr)                                        \
  do {                                                                \
    ::persona::Status persona_status_tmp_ = (expr);                   \
    if (!persona_status_tmp_.ok()) {                                  \
      ::persona::internal_status::CheckOkFailed(                      \
          persona_status_tmp_, __FILE__, __LINE__, #expr);            \
    }                                                                 \
  } while (0)

namespace internal_status {
[[noreturn]] void CheckOkFailed(const Status& status, const char* file, int line,
                                const char* expr);
}  // namespace internal_status

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_STATUS_H_
