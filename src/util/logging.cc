#include "src/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace persona {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

void InitFromEnv() {
  if (const char* env = std::getenv("PERSONA_LOG_LEVEL"); env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) {
      g_min_level.store(v, std::memory_order_relaxed);
    }
  }
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory part for readability.
  std::string_view path(file);
  if (auto pos = path.rfind('/'); pos != std::string_view::npos) {
    path.remove_prefix(pos + 1);
  }
  stream_ << "[" << LevelTag(level) << " " << path << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  // A single fprintf keeps concurrent log lines from interleaving.
  std::fprintf(stderr, "%lld.%03lld %s\n", static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), stream_.str().c_str());
}

}  // namespace internal_log

}  // namespace persona
