// Fixed-size thread pool with a blocking task queue.
//
// Used by the dataflow engine for node worker loops and by the fine-grain executor
// resource (paper §4.3). Tasks are type-erased std::function<void()>.

#ifndef PERSONA_SRC_UTIL_THREAD_POOL_H_
#define PERSONA_SRC_UTIL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/mutex.h"

namespace persona {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false if the pool is shutting down.
  [[nodiscard]] bool Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until every submitted task has finished executing.
  void Wait() EXCLUDES(mu_);

  // Stops accepting tasks, drains the queue, joins all threads. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + executing
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_THREAD_POOL_H_
