// Fixed-size thread pool with a blocking task queue.
//
// Used by the dataflow engine for node worker loops and by the fine-grain executor
// resource (paper §4.3). Tasks are type-erased std::function<void()>.

#ifndef PERSONA_SRC_UTIL_THREAD_POOL_H_
#define PERSONA_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace persona {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Stops accepting tasks, drains the queue, joins all threads. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  size_t in_flight_ = 0;  // queued + executing
  bool shutdown_ = false;
};

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_THREAD_POOL_H_
