// LEB128 variable-length integer coding, used by the AGD relative index (§3).

#ifndef PERSONA_SRC_UTIL_VARINT_H_
#define PERSONA_SRC_UTIL_VARINT_H_

#include <cstdint>
#include <span>

#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona {

// Appends an unsigned LEB128 encoding of `value` to `out`.
void PutVarint(uint64_t value, Buffer* out);

// Decodes one varint starting at `*offset`, advancing it past the encoding.
Result<uint64_t> GetVarint(std::span<const uint8_t> bytes, size_t* offset);

// Zig-zag signed wrappers (used for relative genome-location deltas in results columns).
void PutSignedVarint(int64_t value, Buffer* out);
Result<int64_t> GetSignedVarint(std::span<const uint8_t> bytes, size_t* offset);

// Number of bytes PutVarint would emit.
size_t VarintLength(uint64_t value);

}  // namespace persona

#endif  // PERSONA_SRC_UTIL_VARINT_H_
