// LocalStore: directory-backed ObjectStore routed through a ThrottledDevice.
//
// Models the paper's local-disk configurations: the same files land on the real
// filesystem (so AGD tooling can inspect them), but every transfer pays the simulated
// device's bandwidth/latency, reproducing single-disk vs RAID0 behaviour. Keys may
// contain '/' — they map to nested directories (created on write) and List walks the
// tree recursively, returning the '/'-separated relative path as the key. Metadata ops
// (Size, Delete, Exists) pay the device's per-op latency and are counted in stats, so
// metadata-heavy workloads are not free.

#ifndef PERSONA_SRC_STORAGE_LOCAL_STORE_H_
#define PERSONA_SRC_STORAGE_LOCAL_STORE_H_

#include <memory>
#include <string>

#include "src/storage/object_store.h"
#include "src/storage/throttled_device.h"

namespace persona::storage {

class LocalStore final : public ObjectStore {
 public:
  // `root` is created if missing. `device` may be null for unthrottled access.
  static Result<std::unique_ptr<LocalStore>> Create(const std::string& root,
                                                    std::shared_ptr<ThrottledDevice> device);

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  StoreStats stats() const override;

  const std::string& root() const { return root_; }

 private:
  LocalStore(std::string root, std::shared_ptr<ThrottledDevice> device)
      : root_(std::move(root)), device_(std::move(device)) {}

  std::string PathFor(const std::string& key) const { return root_ + "/" + key; }
  // Pays the device's per-op latency for a zero-byte metadata round-trip.
  void ChargeMetadataRead();
  void ChargeMetadataWrite();

  std::string root_;
  std::shared_ptr<ThrottledDevice> device_;
  AtomicStoreStats stats_;
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_LOCAL_STORE_H_
