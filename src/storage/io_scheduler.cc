#include "src/storage/io_scheduler.h"

#include <cstdio>
#include <cstdlib>

#include "src/storage/object_store.h"
#include "src/storage/retry.h"

namespace persona::storage {

uint64_t ShardHash(std::string_view key) {
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void IoTicket::Wait() const {
  if (state_ == nullptr) {
    return;
  }
  State& state = *state_;
  MutexLock lock(state.mu);
  while (state.pending != 0) {
    state.cv.Wait(state.mu);
  }
}

Status IoTicket::Await() const {
  Wait();
  if (state_ == nullptr) {
    return OkStatus();
  }
  State& state = *state_;
  MutexLock lock(state.mu);
  return state.first_error;
}

bool IoTicket::done() const {
  if (state_ == nullptr) {
    return true;
  }
  State& state = *state_;
  MutexLock lock(state.mu);
  return state.pending == 0;
}

Status WaitAll(std::span<IoTicket> tickets) {
  Status first_error;
  for (IoTicket& ticket : tickets) {
    Status status = ticket.Await();
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

IoScheduler::IoScheduler(std::vector<ObjectStore*> targets, const IoSchedulerOptions& options,
                         ShardFn shard_of)
    : targets_(std::move(targets)),
      shard_of_(std::move(shard_of)),
      retry_(options.retry),
      retry_counters_(options.retry_counters) {
  if (targets_.empty()) {
    // Construction-time contract violation; failing loudly here beats a null-deref on
    // a worker thread far from the misuse.
    std::fprintf(stderr, "IoScheduler requires at least one target shard\n");
    std::abort();
  }
  const size_t num_shards = targets_.size();
  queues_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    queues_.push_back(std::make_unique<MpmcQueue<Task>>(options.queue_depth));
  }
  const int workers = std::max(1, options.workers_per_shard);
  workers_.reserve(num_shards * static_cast<size_t>(workers));
  for (size_t s = 0; s < num_shards; ++s) {
    for (int w = 0; w < workers; ++w) {
      workers_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

IoScheduler::~IoScheduler() {
  for (auto& queue : queues_) {
    queue->Close();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t IoScheduler::ShardOf(std::string_view key) const {
  if (shard_of_) {
    return shard_of_(key) % queues_.size();
  }
  return static_cast<size_t>(ShardHash(key) % queues_.size());
}

void IoScheduler::WorkerLoop(size_t shard) {
  ObjectStore* store = targets_[shard];
  // Transient failures retry here, at the execution site, so every batched/async
  // entry point of the owning store gets the same behaviour and no layer above
  // double-retries. The policy is per-op: one flaky key backs off on this worker
  // while other shards keep transferring.
  static const RetryPolicy kNoRetry;
  const RetryPolicy& policy = retry_ != nullptr ? *retry_ : kNoRetry;
  while (true) {
    std::optional<Task> task = queues_[shard]->Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    Status status;
    if (task->put != nullptr) {
      status = RunWithRetry(policy, retry_counters_, task->put->key, [&] {
        return store->Put(task->put->key, task->put->data);
      });
      task->put->status = status;
    } else if (task->get != nullptr) {
      status = RunWithRetry(policy, retry_counters_, task->get->key, [&] {
        return store->Get(task->get->key, task->get->out);
      });
      task->get->status = status;
    } else if (task->del != nullptr) {
      status = RunWithRetry(policy, retry_counters_, task->del->key, [&] {
        return store->Delete(task->del->key);
      });
      task->del->status = status;
    }
    CompleteOne(task->completion, status);
  }
}

void IoScheduler::CompleteOne(const std::shared_ptr<IoTicket::State>& state,
                              const Status& status) {
  bool last = false;
  IoTicket::State& s = *state;
  {
    MutexLock lock(s.mu);
    if (!status.ok() && s.first_error.ok()) {
      s.first_error = status;
    }
    last = --s.pending == 0;
  }
  if (last) {
    // The shared_ptr argument keeps the State alive across this call, so notifying
    // after the unlock cannot race its destruction.
    s.cv.NotifyAll();
  }
}

IoTicket IoScheduler::Submit(std::span<PutOp> puts, std::span<GetOp> gets,
                             std::span<DeleteOp> deletes) {
  IoTicket ticket;
  ticket.state_ = std::make_shared<IoTicket::State>();
  {
    // Not yet visible to any worker; the lock just states the invariant.
    IoTicket::State& state = *ticket.state_;
    MutexLock lock(state.mu);
    state.pending = puts.size() + gets.size() + deletes.size();
    if (state.pending == 0) {
      return ticket;
    }
  }
  // Push only fails after Close(), i.e. when submitting races the scheduler's
  // destruction; complete the dropped op with an error so the ticket still resolves
  // instead of hanging its waiters.
  for (PutOp& op : puts) {
    Task task;
    task.put = &op;
    task.completion = ticket.state_;
    if (!queues_[ShardOf(op.key)]->Push(std::move(task))) {
      op.status = UnavailableError("io scheduler shut down during submit: " + op.key);
      CompleteOne(ticket.state_, op.status);
    }
  }
  for (GetOp& op : gets) {
    Task task;
    task.get = &op;
    task.completion = ticket.state_;
    if (!queues_[ShardOf(op.key)]->Push(std::move(task))) {
      op.status = UnavailableError("io scheduler shut down during submit: " + op.key);
      CompleteOne(ticket.state_, op.status);
    }
  }
  for (DeleteOp& op : deletes) {
    Task task;
    task.del = &op;
    task.completion = ticket.state_;
    if (!queues_[ShardOf(op.key)]->Push(std::move(task))) {
      op.status = UnavailableError("io scheduler shut down during submit: " + op.key);
      CompleteOne(ticket.state_, op.status);
    }
  }
  return ticket;
}

Status IoScheduler::RunBatch(std::span<PutOp> puts, std::span<GetOp> gets,
                             std::span<DeleteOp> deletes) {
  return Submit(puts, gets, deletes).Await();
}

}  // namespace persona::storage
