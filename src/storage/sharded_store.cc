#include "src/storage/sharded_store.h"

#include <algorithm>

namespace persona::storage {

namespace {

std::vector<ObjectStore*> RawPointers(
    const std::vector<std::unique_ptr<ObjectStore>>& shards) {
  std::vector<ObjectStore*> raw;
  raw.reserve(shards.size());
  for (const auto& shard : shards) {
    raw.push_back(shard.get());
  }
  return raw;
}

IoSchedulerOptions SchedulerOptions(const ShardedStore::Options& options,
                                    const RetryPolicy* retry,
                                    RetryCounters* retry_counters) {
  IoSchedulerOptions scheduler_options;
  scheduler_options.workers_per_shard = options.workers_per_shard;
  scheduler_options.queue_depth = options.queue_depth;
  scheduler_options.retry = retry;
  scheduler_options.retry_counters = retry_counters;
  return scheduler_options;
}

}  // namespace

ShardedStore::ShardedStore(std::vector<std::unique_ptr<ObjectStore>> shards,
                           const Options& options)
    : shards_(std::move(shards)),
      // Retries run on this store's scheduler workers (one layer of retries for the
      // whole stack); the base members exist before the scheduler starts.
      scheduler_(RawPointers(shards_),
                 SchedulerOptions(options, &retry_policy_, &base_retry_counters_)) {}

std::unique_ptr<ShardedStore> ShardedStore::Create(
    size_t num_shards, const std::function<std::unique_ptr<ObjectStore>(size_t)>& factory,
    const Options& options) {
  std::vector<std::unique_ptr<ObjectStore>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards.push_back(factory(i));
  }
  return std::make_unique<ShardedStore>(std::move(shards), options);
}

Status ShardedStore::Put(const std::string& key, std::span<const uint8_t> data) {
  return shards_[ShardOf(key)]->Put(key, data);
}

Status ShardedStore::Get(const std::string& key, Buffer* out) {
  return shards_[ShardOf(key)]->Get(key, out);
}

Result<uint64_t> ShardedStore::Size(const std::string& key) {
  return shards_[ShardOf(key)]->Size(key);
}

Status ShardedStore::Delete(const std::string& key) {
  return shards_[ShardOf(key)]->Delete(key);
}

bool ShardedStore::Exists(const std::string& key) {
  return shards_[ShardOf(key)]->Exists(key);
}

Result<std::vector<std::string>> ShardedStore::List(std::string_view prefix) {
  // Keys are unique across shards (one home shard per key): merge and sort.
  std::vector<std::string> merged;
  for (const auto& shard : shards_) {
    PERSONA_ASSIGN_OR_RETURN(std::vector<std::string> keys, shard->List(prefix));
    merged.insert(merged.end(), std::make_move_iterator(keys.begin()),
                  std::make_move_iterator(keys.end()));
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

Status ShardedStore::PutBatch(std::span<PutOp> ops) {
  return scheduler_.RunBatch(ops, {});
}

Status ShardedStore::GetBatch(std::span<GetOp> ops) {
  return scheduler_.RunBatch({}, ops);
}

Status ShardedStore::DeleteBatch(std::span<DeleteOp> ops) {
  return scheduler_.RunBatch({}, {}, ops);
}

IoTicket ShardedStore::SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) {
  return scheduler_.Submit(puts, gets);
}

StoreStats ShardedStore::stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    StoreStats s = shard->stats();
    total.bytes_read += s.bytes_read;
    total.bytes_written += s.bytes_written;
    total.read_ops += s.read_ops;
    total.write_ops += s.write_ops;
    total.retries += s.retries;
    total.give_ups += s.give_ups;
  }
  AddRetryStats(&total);  // retries performed by this store's own scheduler
  return total;
}

}  // namespace persona::storage
