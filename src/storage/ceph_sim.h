// CephSimStore: a simulated scale-out object store (the paper's 7-node Ceph cluster).
//
// Objects are placed on a primary OSD node by key hash, with `replication`-way copies on
// the following nodes in the ring (CRUSH reduced to its observable behaviour). Reads pay
// the primary node's bandwidth; writes pay bandwidth on every replica. Each OSD node is
// a ThrottledDevice with its own submission queue: the batched/async entry points route
// every op to its primary node's queue, so transfers on distinct nodes proceed in
// parallel and aggregate read throughput actually scales to num_nodes * per-node
// bandwidth — 6 GB/s for the paper's measured configuration — saturating when enough
// compute nodes pull chunks concurrently (the Fig. 7 knee). Scalar calls execute inline
// on the caller's thread (one op in flight, as before); there is no store-wide mutex,
// so concurrent callers only contend on the nodes they actually touch.

#ifndef PERSONA_SRC_STORAGE_CEPH_SIM_H_
#define PERSONA_SRC_STORAGE_CEPH_SIM_H_

#include <memory>

#include "src/storage/io_scheduler.h"
#include "src/storage/memory_store.h"
#include "src/storage/object_store.h"
#include "src/storage/throttled_device.h"

namespace persona::storage {

struct CephSimConfig {
  int num_osd_nodes = 7;
  int replication = 3;
  // Per-node bandwidth; the paper's cluster measures ~6 GB/s aggregate over 7 nodes.
  uint64_t per_node_bandwidth = 857'000'000;
  double op_latency_sec = 0.0005;
  // Capacity of each OSD node's submission queue (async/batched ops).
  size_t queue_depth = 128;

  // Scales bandwidth for scaled-down datasets (see DeviceProfile).
  static CephSimConfig Scaled(double scale);
};

class CephSimStore final : public ObjectStore {
 public:
  explicit CephSimStore(const CephSimConfig& config);

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  // Metadata ops pay the primary node's per-op latency (an OSD round-trip) and are
  // counted in stats — metadata-heavy workloads are not free.
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  // Batched/async ops fan out over the per-OSD-node submission queues.
  Status PutBatch(std::span<PutOp> ops) override;
  Status GetBatch(std::span<GetOp> ops) override;
  Status DeleteBatch(std::span<DeleteOp> ops) override;
  IoTicket SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) override;

  StoreStats stats() const override;

  const CephSimConfig& config() const { return config_; }
  // Total bytes transferred per OSD node (for balance reporting).
  std::vector<uint64_t> PerNodeBytes() const;

 private:
  size_t PrimaryNode(std::string_view key) const;

  CephSimConfig config_;
  std::vector<std::unique_ptr<ThrottledDevice>> nodes_;
  MemoryStore backing_;  // unthrottled data plane
  AtomicStoreStats stats_;
  // Declared last: its per-node workers execute ops against this store, so they must
  // join before any other member is destroyed.
  std::unique_ptr<IoScheduler> scheduler_;
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_CEPH_SIM_H_
