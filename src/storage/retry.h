// Retry with exponential backoff for transient store failures (cluster storage loses
// nodes and drops connections; a multi-hour pipeline must not die on one kUnavailable).
//
// The policy lives on the ObjectStore and is applied at the op-execution sites — the
// IoScheduler worker loop for stores with internal parallelism, the base-class
// sequential batch loops for everything else — so a batched GetBatch/PutBatch/
// SubmitAsync retries each op independently and exactly one layer performs retries.
// Scalar Put/Get/Delete calls on plain backends never retry: callers using them
// directly own their own failure handling. The one exception is FaultInjectingStore,
// whose scalar ops retry internally — injection happens in that layer, so its retry is
// what makes injected transients recoverable from any entry point (its batch loops are
// correspondingly retry-free to keep the single-retry-layer rule).
//
// Only IsTransient statuses (kUnavailable, kDeadlineExceeded) are retried; permanent
// errors (kNotFound, kDataLoss, ...) surface immediately. Backoff jitter is
// deterministic — seeded from the op's key and attempt number — so failure-injection
// runs reproduce exactly.

#ifndef PERSONA_SRC_STORAGE_RETRY_H_
#define PERSONA_SRC_STORAGE_RETRY_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "src/util/status.h"

namespace persona::storage {

struct RetryPolicy {
  // Total tries per op, including the first; <= 1 disables retries entirely.
  int max_attempts = 1;
  double initial_backoff_sec = 0.0005;
  double backoff_multiplier = 2.0;
  double max_backoff_sec = 0.05;
  // Each sleep is scaled by a deterministic factor in [1 - jitter, 1 + jitter] so
  // retries of many ops against one recovering node do not arrive in lockstep.
  double jitter = 0.25;
  // Wall-clock budget across all attempts of one op; 0 = unlimited. Once spent, the
  // op gives up with its last transient error.
  double deadline_sec = 0;

  bool enabled() const { return max_attempts > 1; }

  // A sensible default for tests and services: a handful of quick attempts.
  static RetryPolicy Default() {
    RetryPolicy policy;
    policy.max_attempts = 4;
    return policy;
  }
};

// Retry accounting, shared by concurrent op executors.
//   retries  — re-attempts actually performed (attempt 2 of an op counts 1)
//   give_ups — ops abandoned with a transient error after exhausting the budget
// Permanent failures count as neither; they were never retry candidates.
struct RetryCounters {
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> give_ups{0};
};

namespace retry_internal {
// Backoff for the sleep before attempt `next_attempt` (2-based), jittered
// deterministically by key.
double BackoffSec(const RetryPolicy& policy, int next_attempt, std::string_view key);
void SleepSec(double seconds);
double NowSec();
}  // namespace retry_internal

// Runs `op` under `policy`: transient failures are retried with jittered exponential
// backoff until the attempt or deadline budget runs out. `counters` may be null.
template <typename Fn>
[[nodiscard]] Status RunWithRetry(const RetryPolicy& policy, RetryCounters* counters,
                                  std::string_view key, Fn&& op) {
  Status status = op();
  if (status.ok() || !IsTransient(status) || !policy.enabled()) {
    return status;
  }
  const double start = retry_internal::NowSec();
  for (int attempt = 2; attempt <= policy.max_attempts; ++attempt) {
    const double backoff = retry_internal::BackoffSec(policy, attempt, key);
    if (policy.deadline_sec > 0 &&
        retry_internal::NowSec() - start + backoff > policy.deadline_sec) {
      break;  // sleeping would blow the budget; give up with the last error
    }
    retry_internal::SleepSec(backoff);
    if (counters != nullptr) {
      counters->retries.fetch_add(1, std::memory_order_relaxed);
    }
    status = op();
    if (status.ok() || !IsTransient(status)) {
      return status;
    }
  }
  if (counters != nullptr) {
    counters->give_ups.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_RETRY_H_
