// ThrottledDevice: models one storage device's bandwidth and per-op latency.
//
// Stands in for the paper's physical disks and RAID arrays (DESIGN.md §1): callers
// "transfer" bytes through a token bucket shared by reads and writes (a spinning disk's
// head is one resource), so heavy writeback traffic starves concurrent reads — the
// mechanism behind the cyclic stalls of Fig. 5a.

#ifndef PERSONA_SRC_STORAGE_THROTTLED_DEVICE_H_
#define PERSONA_SRC_STORAGE_THROTTLED_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/util/token_bucket.h"

namespace persona::storage {

struct DeviceProfile {
  uint64_t bandwidth_bytes_per_sec = 0;  // 0 = unlimited
  double op_latency_sec = 0;             // fixed per-operation latency (seek / RPC)
  std::string name = "device";

  // The paper's storage configurations (§5.1), scaled by `scale` so that scaled-down
  // benchmark datasets hit the same compute-to-I/O ratios as the full-size originals.
  static DeviceProfile SingleDisk(double scale = 1.0);   // 1 SATA disk: ~160 MB/s
  static DeviceProfile Raid0(double scale = 1.0);        // 6-disk RAID0: ~960 MB/s
  static DeviceProfile TenGbeNic(double scale = 1.0);    // 10 GbE: ~1.25 GB/s
  static DeviceProfile Unlimited();
};

class ThrottledDevice {
 public:
  explicit ThrottledDevice(const DeviceProfile& profile);

  // Blocks for the simulated transfer time of `bytes`: per-op latency, plus at least
  // bytes/bandwidth of wall time (single-stream floor), plus any token-bucket debt
  // from concurrent streams sharing the device.
  void Read(uint64_t bytes);
  void Write(uint64_t bytes);

  const DeviceProfile& profile() const { return profile_; }
  uint64_t bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }

 private:
  void Transfer(uint64_t bytes);

  DeviceProfile profile_;
  TokenBucket bucket_;
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_THROTTLED_DEVICE_H_
