#include "src/storage/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/storage/io_scheduler.h"
#include "src/util/rng.h"

namespace persona::storage::retry_internal {

double BackoffSec(const RetryPolicy& policy, int next_attempt, std::string_view key) {
  double backoff = policy.initial_backoff_sec;
  for (int i = 2; i < next_attempt; ++i) {
    backoff *= policy.backoff_multiplier;
  }
  backoff = std::min(backoff, policy.max_backoff_sec);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0) {
    // Seeded by (key, attempt): every run of the same workload sleeps the same
    // schedule, which keeps failure-injection tests exactly reproducible.
    Rng rng(ShardHash(key) ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(next_attempt)));
    backoff *= 1.0 - jitter + 2.0 * jitter * rng.UniformDouble();
  }
  return std::max(backoff, 0.0);
}

void SleepSec(double seconds) {
  if (seconds <= 0) {
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace persona::storage::retry_internal
