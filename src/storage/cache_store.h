// CacheStore: a memory-budgeted LRU read cache above any ObjectStore.
//
// Persona's balanced-system argument (paper §3, §4.2) needs the storage tier to feed
// compute at device speed; a reread — a region query re-scanning the same chunks, a
// sort merge revisiting its spill files, filter's ordered stage fetching the columns
// the prefetcher already pulled — should cost memory bandwidth, not a second trip
// through the simulated OSDs. This decorator keeps whole chunk/column objects in an
// LRU map under a byte budget and serves repeated Gets from memory.
//
// Invalidation contract (also documented in README "Storage"):
//   - Put (scalar or PutBatch) is write-through: the backend write lands first, then
//     the cache is repopulated with the new bytes (or just invalidated when
//     cache_writes is off). A Get issued after a Put returns never sees the old value.
//   - Delete / DeleteBatch erase the entry before any later Get can re-fill it with
//     the deleted bytes.
//   - SubmitAsync puts invalidate their keys at submission and keep them uncacheable
//     until the submission's ticket completes — a miss-fill racing an in-flight async
//     write can observe the pre-write bytes, and caching those would serve stale data
//     after the ticket completes. The ticket itself is the backend's (asynchrony is
//     preserved); async gets bypass the cache entirely.
//   - Miss-fills are version-guarded: a fill only populates the cache if no Put/Delete
//     of that key happened between the lookup and the backend read completing, so a
//     racing writer can never be overwritten by a stale in-flight read.
//   - Coherence is per-decorator: mutations that bypass this CacheStore (writing to
//     the backend directly) are invisible to it. Share one CacheStore across every
//     pipeline touching a store — it is thread-safe and built for that.
//
// Hits count in StoreStats::cache_hits/cache_hit_bytes, not read_ops/bytes_read:
// a report's byte counters remain true device traffic, so the cache's effect is
// visible instead of laundered into impossible device throughput.
//
// Batched ops forward to the backend for the miss subset only, so the backend's
// internal parallelism (and its retry policy) still applies to real transfers.

#ifndef PERSONA_SRC_STORAGE_CACHE_STORE_H_
#define PERSONA_SRC_STORAGE_CACHE_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/object_store.h"
#include "src/util/mutex.h"

namespace persona::storage {

struct CacheStoreOptions {
  // Total bytes of cached payload. Objects larger than the budget are never cached.
  size_t budget_bytes = 256ull << 20;
  // Write-through population: a successful synchronous Put installs the new bytes in
  // the cache (a write-then-reread workload hits without a device round trip). Off =
  // Put only invalidates; use for write-mostly streams that would churn the budget.
  bool cache_writes = true;
};

class CacheStore final : public ObjectStore {
 public:
  // `base` is borrowed and must outlive this store.
  CacheStore(ObjectStore* base, CacheStoreOptions options = {});

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  Status PutBatch(std::span<PutOp> ops) override;
  Status GetBatch(std::span<GetOp> ops) override;
  Status DeleteBatch(std::span<DeleteOp> ops) override;
  IoTicket SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) override;

  bool CachesReads() const override { return true; }
  // Fetches the not-yet-cached subset of `keys` from the backend with one batched Get
  // directly into cache entries (no caller buffer, no extra copy). Best-effort: a key
  // that fails to fetch is simply left uncached.
  void Prefetch(std::span<const std::string> keys) override;

  // Backend stats plus this tier's hit/miss/eviction counters.
  StoreStats stats() const override;

  struct Usage {
    size_t bytes = 0;
    size_t entries = 0;
  };
  Usage usage() const;

 private:
  struct Entry {
    std::shared_ptr<const Buffer> data;
    std::list<std::string>::iterator lru_it;  // position in lru_ (front = MRU)
  };

  // Snapshot taken before a backend miss-read; the fill installs only if the key's
  // version (and the global epoch, bumped when the version map is pruned) is
  // unchanged — i.e. no Put/Delete raced the read.
  struct FillGuard {
    uint64_t epoch = 0;
    uint64_t version = 0;
    bool cacheable = false;  // false: pending async write, do not install
  };

  void TouchLocked(std::unordered_map<std::string, Entry>::iterator it) REQUIRES(mu_);
  void EraseLocked(const std::string& key) REQUIRES(mu_);
  void BumpVersionLocked(const std::string& key) REQUIRES(mu_);
  FillGuard CaptureGuardLocked(const std::string& key) REQUIRES(mu_);
  bool GuardHoldsLocked(const std::string& key, const FillGuard& guard) REQUIRES(mu_);
  // Installs `data` (evicting LRU entries past the budget); replaces any existing
  // entry for the key.
  void InstallLocked(const std::string& key, std::shared_ptr<const Buffer> data)
      REQUIRES(mu_);
  // Post-write bookkeeping shared by Put/PutBatch: bump the version and either
  // repopulate (write-through, op succeeded) or just invalidate.
  void AfterPut(const std::string& key, std::span<const uint8_t> data, bool ok)
      EXCLUDES(mu_);
  void PopulateIfUnchanged(const std::string& key, std::span<const uint8_t> data,
                           const FillGuard& guard) EXCLUDES(mu_);
  void RecordHit(size_t bytes) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  ObjectStore* base_;
  const CacheStoreOptions options_;

  mutable Mutex mu_;
  std::list<std::string> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  size_t bytes_cached_ GUARDED_BY(mu_) = 0;
  // Per-key mutation counters backing FillGuard. Pruned wholesale (epoch bump) when
  // the map outgrows the cache itself, so a long run's write-only keys cannot grow it
  // without bound; a prune conservatively skips the fills in flight across it.
  std::unordered_map<std::string, uint64_t> versions_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  // Keys with an async write in flight (SubmitAsync puts): uncacheable until the
  // submission's ticket reports done, then swept lazily on the next touch.
  std::unordered_map<std::string, IoTicket> pending_writes_ GUARDED_BY(mu_);

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> hit_bytes_{0};
};

// Cache budget for tools that create their own CacheStore: PERSONA_CACHE_MB from the
// environment when set (0 disables caching at the call sites that check), else
// `default_bytes`.
size_t CacheBudgetFromEnv(size_t default_bytes);

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_CACHE_STORE_H_
