#include "src/storage/throttled_device.h"

#include <algorithm>
#include <thread>

namespace persona::storage {

DeviceProfile DeviceProfile::SingleDisk(double scale) {
  return DeviceProfile{static_cast<uint64_t>(160e6 * scale), 0.004, "single-disk"};
}

DeviceProfile DeviceProfile::Raid0(double scale) {
  return DeviceProfile{static_cast<uint64_t>(960e6 * scale), 0.004, "raid0"};
}

DeviceProfile DeviceProfile::TenGbeNic(double scale) {
  return DeviceProfile{static_cast<uint64_t>(1.25e9 * scale), 0.0005, "10gbe"};
}

DeviceProfile DeviceProfile::Unlimited() { return DeviceProfile{0, 0, "unlimited"}; }

ThrottledDevice::ThrottledDevice(const DeviceProfile& profile)
    : profile_(profile),
      // Burst of ~64 ms of bandwidth keeps small transfers cheap while holding the
      // sustained rate at the configured value (floor keeps tiny devices functional).
      bucket_(profile.bandwidth_bytes_per_sec,
              std::max<uint64_t>(profile.bandwidth_bytes_per_sec / 16, 64 << 10)) {}

void ThrottledDevice::Transfer(uint64_t bytes) {
  if (profile_.op_latency_sec > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(profile_.op_latency_sec));
  }
  if (profile_.bandwidth_bytes_per_sec == 0) {
    bucket_.Acquire(bytes);  // unlimited: count only
    return;
  }
  // Two constraints on a synchronous transfer:
  //   1. Contention: concurrent streams share the device rate (token-bucket debt).
  //   2. Single-stream floor: one caller's transfer occupies it for bytes/rate of wall
  //      time — a sequential caller cannot bank an idle device's refill credit and
  //      must not finish faster than the wire. Without this floor a one-op-at-a-time
  //      loop over several devices (e.g. OSD nodes) would observe their aggregate
  //      bandwidth, hiding exactly the serialization that batched I/O removes.
  const auto start = std::chrono::steady_clock::now();
  bucket_.Acquire(bytes);
  const double min_sec = static_cast<double>(bytes) /
                         static_cast<double>(profile_.bandwidth_bytes_per_sec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (elapsed < min_sec) {
    std::this_thread::sleep_for(std::chrono::duration<double>(min_sec - elapsed));
  }
}

void ThrottledDevice::Read(uint64_t bytes) {
  Transfer(bytes);
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
}

void ThrottledDevice::Write(uint64_t bytes) {
  Transfer(bytes);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace persona::storage
