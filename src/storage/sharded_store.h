// ShardedStore: hash-partitions the object namespace over N backend stores.
//
// Each key lives on exactly one backend (ShardHash(key) % N, stable across runs), so
// shards never contend on one another's locks or devices, and the batched/async entry
// points overlap transfers across shards through per-shard submission queues — the
// object-store analogue of the paper's parallel reader nodes. Backends are arbitrary
// ObjectStores: ShardedStore over MemoryStores models a striped RAM store, over
// LocalStores a multi-volume spill directory.

#ifndef PERSONA_SRC_STORAGE_SHARDED_STORE_H_
#define PERSONA_SRC_STORAGE_SHARDED_STORE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/storage/io_scheduler.h"
#include "src/storage/object_store.h"

namespace persona::storage {

struct ShardedStoreOptions {
  int workers_per_shard = 1;
  size_t queue_depth = 128;
};

class ShardedStore final : public ObjectStore {
 public:
  using Options = ShardedStoreOptions;

  // Takes ownership of the backends; `shards` must be non-empty.
  explicit ShardedStore(std::vector<std::unique_ptr<ObjectStore>> shards,
                        const Options& options = Options());

  // Builds `num_shards` backends with `factory(shard_index)`.
  static std::unique_ptr<ShardedStore> Create(
      size_t num_shards, const std::function<std::unique_ptr<ObjectStore>(size_t)>& factory,
      const Options& options = Options());

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  Status PutBatch(std::span<PutOp> ops) override;
  Status GetBatch(std::span<GetOp> ops) override;
  Status DeleteBatch(std::span<DeleteOp> ops) override;
  IoTicket SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) override;

  // Aggregated over all shards.
  StoreStats stats() const override;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(std::string_view key) const {
    return static_cast<size_t>(ShardHash(key) % shards_.size());
  }
  ObjectStore* shard(size_t i) { return shards_[i].get(); }

 private:
  std::vector<std::unique_ptr<ObjectStore>> shards_;
  IoScheduler scheduler_;  // declared after shards_: joins its workers first
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_SHARDED_STORE_H_
