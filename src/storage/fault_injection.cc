#include "src/storage/fault_injection.h"

#include <cstdlib>

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace persona::storage {

FaultRule FaultRule::TransientTimes(int times, uint32_t ops, std::string key_substring) {
  FaultRule rule;
  rule.ops = ops;
  rule.key_substring = std::move(key_substring);
  rule.fail_times = times;
  return rule;
}

FaultRule FaultRule::TransientWithProbability(double probability, uint32_t ops,
                                              std::string key_substring) {
  FaultRule rule;
  rule.ops = ops;
  rule.key_substring = std::move(key_substring);
  rule.probability = probability;
  return rule;
}

FaultRule FaultRule::PermanentOn(std::string key_substring, uint32_t ops,
                                 StatusCode code) {
  FaultRule rule;
  rule.ops = ops;
  rule.key_substring = std::move(key_substring);
  rule.fail_times = 1 << 30;  // effectively forever: never heals
  rule.code = code;
  return rule;
}

FaultInjectingStore::FaultInjectingStore(ObjectStore* base,
                                         FaultInjectingStoreOptions options)
    : base_(base), options_(std::move(options)) {
  MutexLock lock(mu_);
  attempts_.resize(options_.rules.size());
}

Status FaultInjectingStore::MaybeInject(uint32_t op, const std::string& key,
                                        bool* corrupt) {
  ops_seen_.fetch_add(1, std::memory_order_relaxed);
  for (size_t r = 0; r < options_.rules.size(); ++r) {
    const FaultRule& rule = options_.rules[r];
    if ((rule.ops & op) == 0) {
      continue;
    }
    if (!rule.key_substring.empty() &&
        key.find(rule.key_substring) == std::string::npos) {
      continue;
    }
    uint64_t attempt = 0;
    {
      MutexLock lock(mu_);
      attempt = attempts_[r][key]++;
    }
    bool fires = false;
    if (rule.fail_times > 0) {
      fires = attempt < static_cast<uint64_t>(rule.fail_times);
    } else if (rule.probability > 0) {
      // Pure function of (seed, rule, key, attempt): the same run always injects the
      // same faults, independent of thread interleaving.
      Rng rng(options_.seed ^ (0x9E3779B97F4A7C15ull * (r + 1)) ^
              (ShardHash(key) + attempt));
      fires = rng.UniformDouble() < rule.probability;
    }
    if (!fires) {
      continue;
    }
    switch (rule.outcome) {
      case FaultRule::Outcome::kFail:
        failures_.fetch_add(1, std::memory_order_relaxed);
        return Status(rule.code,
                      StrFormat("injected %s failure: %s",
                                std::string(StatusCodeName(rule.code)).c_str(),
                                key.c_str()));
      case FaultRule::Outcome::kCorrupt:
        if (corrupt != nullptr) {
          *corrupt = true;
        }
        break;
      case FaultRule::Outcome::kLatency:
        latencies_.fetch_add(1, std::memory_order_relaxed);
        retry_internal::SleepSec(rule.latency_sec);
        break;
    }
  }
  return OkStatus();
}

void FaultInjectingStore::CorruptByte(const std::string& key, Buffer* out) {
  if (out->size() == 0) {
    return;
  }
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  const size_t pos = static_cast<size_t>((ShardHash(key) ^ options_.seed) % out->size());
  out->data()[pos] ^= 0xFF;
}

// Scalar ops run under the decorator's retry policy too (unlike plain backends,
// whose scalar calls are single-shot): injection happens at this layer, so this
// layer's retry is what makes an injected transient fault recoverable no matter
// which entry point — scalar, batched, or async — the caller used.

Status FaultInjectingStore::Put(const std::string& key, std::span<const uint8_t> data) {
  return RunOpWithRetry(key, [&]() -> Status {
    PERSONA_RETURN_IF_ERROR(MaybeInject(kFaultPut, key, nullptr));
    return base_->Put(key, data);
  });
}

Status FaultInjectingStore::Get(const std::string& key, Buffer* out) {
  return RunOpWithRetry(key, [&]() -> Status {
    bool corrupt = false;
    PERSONA_RETURN_IF_ERROR(MaybeInject(kFaultGet, key, &corrupt));
    out->Clear();  // a retried attempt must not append to a failed one's bytes
    PERSONA_RETURN_IF_ERROR(base_->Get(key, out));
    if (corrupt) {
      CorruptByte(key, out);
    }
    return OkStatus();
  });
}

Result<uint64_t> FaultInjectingStore::Size(const std::string& key) {
  uint64_t size = 0;
  PERSONA_RETURN_IF_ERROR(RunOpWithRetry(key, [&]() -> Status {
    PERSONA_RETURN_IF_ERROR(MaybeInject(kFaultMetadata, key, nullptr));
    PERSONA_ASSIGN_OR_RETURN(size, base_->Size(key));
    return OkStatus();
  }));
  return size;
}

Status FaultInjectingStore::Delete(const std::string& key) {
  return RunOpWithRetry(key, [&]() -> Status {
    PERSONA_RETURN_IF_ERROR(MaybeInject(kFaultDelete, key, nullptr));
    return base_->Delete(key);
  });
}

bool FaultInjectingStore::Exists(const std::string& key) { return base_->Exists(key); }

Status FaultInjectingStore::PutBatch(std::span<PutOp> ops) {
  Status first_error;
  for (PutOp& op : ops) {
    op.status = Put(op.key, op.data);
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

Status FaultInjectingStore::GetBatch(std::span<GetOp> ops) {
  Status first_error;
  for (GetOp& op : ops) {
    op.status = Get(op.key, op.out);
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

Status FaultInjectingStore::DeleteBatch(std::span<DeleteOp> ops) {
  Status first_error;
  for (DeleteOp& op : ops) {
    op.status = Delete(op.key);
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

Result<std::vector<std::string>> FaultInjectingStore::List(std::string_view prefix) {
  return base_->List(prefix);
}

StoreStats FaultInjectingStore::stats() const {
  StoreStats stats = base_->stats();
  AddRetryStats(&stats);
  return stats;
}

FaultInjectionStats FaultInjectingStore::injection_stats() const {
  FaultInjectionStats stats;
  stats.ops_seen = ops_seen_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.corruptions = corruptions_.load(std::memory_order_relaxed);
  stats.latencies = latencies_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t FaultSeedFromEnv(uint64_t default_seed) {
  const char* env = std::getenv("PERSONA_FAULT_SEED");
  if (env == nullptr || *env == '\0') {
    return default_seed;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<uint64_t>(parsed) : default_seed;
}

}  // namespace persona::storage
