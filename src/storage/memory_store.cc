#include "src/storage/memory_store.h"

#include "src/util/string_util.h"

namespace persona::storage {

Status MemoryStore::Put(const std::string& key, std::span<const uint8_t> data) {
  if (device_ != nullptr) {
    device_->Write(data.size());
  }
  {
    MutexLock lock(mu_);
    objects_[key].assign(data.begin(), data.end());
  }
  stats_.RecordWrite(data.size());
  return OkStatus();
}

Status MemoryStore::Get(const std::string& key, Buffer* out) {
  size_t size = 0;
  {
    MutexLock lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      return NotFoundError("no such object: " + key);
    }
    size = it->second.size();
  }
  // Throttle outside the lock so slow transfers do not serialize the store.
  if (device_ != nullptr) {
    device_->Read(size);
  }
  {
    MutexLock lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      return NotFoundError("object deleted during read: " + key);
    }
    // Zero-copy fill: size the buffer without initializing, then land the payload in
    // one write pass (the simulated device's DMA) instead of memset + copy.
    size = it->second.size();
    out->Clear();
    out->ResizeUninitialized(size);
    std::memcpy(out->data(), it->second.data(), size);
  }
  stats_.RecordRead(size);
  return OkStatus();
}

Result<uint64_t> MemoryStore::Size(const std::string& key) {
  if (device_ != nullptr) {
    device_->Read(0);  // metadata round-trip: latency only
  }
  stats_.RecordMetadataRead();
  MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("no such object: " + key);
  }
  return static_cast<uint64_t>(it->second.size());
}

Status MemoryStore::Delete(const std::string& key) {
  if (device_ != nullptr) {
    device_->Write(0);
  }
  stats_.RecordMetadataWrite();
  MutexLock lock(mu_);
  if (objects_.erase(key) == 0) {
    return NotFoundError("no such object: " + key);
  }
  return OkStatus();
}

bool MemoryStore::Exists(const std::string& key) {
  if (device_ != nullptr) {
    device_->Read(0);
  }
  stats_.RecordMetadataRead();
  MutexLock lock(mu_);
  return objects_.contains(key);
}

Result<std::vector<std::string>> MemoryStore::List(std::string_view prefix) {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(std::string(prefix)); it != objects_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) {
      break;
    }
    keys.push_back(it->first);
  }
  return keys;
}

StoreStats MemoryStore::stats() const {
  StoreStats stats = stats_.Snapshot();
  AddRetryStats(&stats);  // retries from the inherited sequential batch loops
  return stats;
}

}  // namespace persona::storage
