// FaultInjectingStore: a deterministic chaos decorator for any ObjectStore.
//
// Real cluster storage loses nodes, drops connections, corrupts payloads, and stalls;
// this wrapper makes those failures reproducible so the retry/resume machinery can be
// tested and benchmarked instead of trusted. It forwards every op to a backend store
// and, per configured rule, injects transient or permanent failures
// (fail-N-times-then-succeed per key, or a seeded per-attempt probability), payload
// corruption on reads, and latency spikes — filtered by op type and key substring.
//
// All decisions are pure functions of (seed, rule, key, attempt number), so a run with
// the same seed injects exactly the same faults regardless of thread interleaving —
// the property the CI chaos matrix (PERSONA_FAULT_SEED) relies on.
//
// Every entry point — scalar, batched, async — funnels through the scalar ops here,
// which run under this store's retry policy, so injection and recovery apply uniformly
// no matter which backend is wrapped (MemoryStore, LocalStore, CephSimStore,
// ShardedStore). Set the retry policy on this decorator — the outermost layer — and
// the injected transient failures exercise it.

#ifndef PERSONA_SRC_STORAGE_FAULT_INJECTION_H_
#define PERSONA_SRC_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/object_store.h"
#include "src/util/mutex.h"

namespace persona::storage {

// Op-type filter bits for FaultRule::ops.
enum StoreOpMask : uint32_t {
  kFaultGet = 1u << 0,
  kFaultPut = 1u << 1,
  kFaultDelete = 1u << 2,
  kFaultMetadata = 1u << 3,  // Size (Exists and List are never failed: no Status path)
  kFaultAnyOp = 0xFFFFFFFFu,
};

struct FaultRule {
  enum class Outcome {
    kFail,     // return `code` instead of executing the op
    kCorrupt,  // execute the op, then flip one payload byte (reads only)
    kLatency,  // sleep `latency_sec`, then execute normally
  };

  uint32_t ops = kFaultAnyOp;
  // Rule applies only to keys containing this substring; empty matches every key.
  std::string key_substring;
  // Trigger: fail_times > 0 — the first `fail_times` matching attempts per key fire,
  // later attempts pass (the fail-N-times-then-succeed shape retries recover from).
  // fail_times == 0 — each attempt fires independently with `probability`, decided by
  // a hash of (seed, rule, key, attempt).
  int fail_times = 0;
  double probability = 0;

  Outcome outcome = Outcome::kFail;
  StatusCode code = StatusCode::kUnavailable;  // kFail only; default is transient
  double latency_sec = 0;                      // kLatency only

  // Common shapes.
  static FaultRule TransientTimes(int times, uint32_t ops = kFaultAnyOp,
                                  std::string key_substring = "");
  static FaultRule TransientWithProbability(double probability,
                                            uint32_t ops = kFaultAnyOp,
                                            std::string key_substring = "");
  static FaultRule PermanentOn(std::string key_substring, uint32_t ops = kFaultAnyOp,
                               StatusCode code = StatusCode::kDataLoss);
};

struct FaultInjectingStoreOptions {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

// Injection accounting (distinct from StoreStats: these are faults *caused*, not ops
// served).
struct FaultInjectionStats {
  uint64_t ops_seen = 0;
  uint64_t failures = 0;
  uint64_t corruptions = 0;
  uint64_t latencies = 0;
};

class FaultInjectingStore final : public ObjectStore {
 public:
  // `base` is borrowed and must outlive this store.
  FaultInjectingStore(ObjectStore* base, FaultInjectingStoreOptions options);

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  // The scalar ops above already run under the retry policy (injection and retry
  // live in the same layer), so the batch loops here are retry-free — the inherited
  // ones would nest a second retry budget around each op.
  Status PutBatch(std::span<PutOp> ops) override;
  Status GetBatch(std::span<GetOp> ops) override;
  Status DeleteBatch(std::span<DeleteOp> ops) override;

  // Cache-tier passthrough: chaos runs over a cached store keep the cache visible.
  // Prefetch is advisory (its failures are invisible by contract), so faults are not
  // injected on it — the authoritative reads that follow still get them.
  bool CachesReads() const override { return base_->CachesReads(); }
  void Prefetch(std::span<const std::string> keys) override { base_->Prefetch(keys); }

  // Backend stats plus this decorator's retry counters (batch ops run through the
  // inherited loops, so retries — driven by the faults injected here — count here).
  StoreStats stats() const override;

  FaultInjectionStats injection_stats() const;

 private:
  // Returns the injected failure for this attempt (OK = execute normally), applying
  // latency/corruption side channels. `corrupt` is set when a kCorrupt rule fired.
  Status MaybeInject(uint32_t op, const std::string& key, bool* corrupt);
  void CorruptByte(const std::string& key, Buffer* out);

  ObjectStore* base_;
  FaultInjectingStoreOptions options_;

  mutable Mutex mu_;
  // attempts_[rule][key]: matching attempts seen, for fail-N-times and for the
  // deterministic per-attempt probability hash.
  std::vector<std::unordered_map<std::string, uint64_t>> attempts_ GUARDED_BY(mu_);

  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> corruptions_{0};
  std::atomic<uint64_t> latencies_{0};
};

// Seed for failure-injection runs: PERSONA_FAULT_SEED from the environment when set
// (the CI chaos matrix sweeps it), else `default_seed`.
uint64_t FaultSeedFromEnv(uint64_t default_seed);

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_FAULT_INJECTION_H_
