#include "src/storage/cache_store.h"

#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "src/util/logging.h"

namespace persona::storage {

namespace {
// Version map prune threshold: far above any cached working set, so pruning (which
// conservatively aborts the fills in flight across it) is a safety valve, not a
// steady-state event.
constexpr size_t kMaxVersionEntries = 1u << 16;
// Completed async-write markers are swept lazily; this caps how many can linger.
constexpr size_t kPendingSweepThreshold = 1024;
}  // namespace

CacheStore::CacheStore(ObjectStore* base, CacheStoreOptions options)
    : base_(base), options_(options) {}

void CacheStore::TouchLocked(std::unordered_map<std::string, Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void CacheStore::EraseLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  bytes_cached_ -= it->second.data->size();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void CacheStore::BumpVersionLocked(const std::string& key) {
  ++versions_[key];
  if (versions_.size() > kMaxVersionEntries) {
    // Prune wholesale; the epoch bump invalidates every guard captured before it.
    versions_.clear();
    ++epoch_;
  }
}

CacheStore::FillGuard CacheStore::CaptureGuardLocked(const std::string& key) {
  FillGuard guard;
  auto pending = pending_writes_.find(key);
  if (pending != pending_writes_.end()) {
    if (!pending->second.done()) {
      return guard;  // async write in flight: reads of this key stay uncacheable
    }
    // The async write landed: retire the marker and invalidate guards captured while
    // it was pending, then allow this (post-completion) read to fill.
    pending_writes_.erase(pending);
    BumpVersionLocked(key);
  }
  guard.cacheable = true;
  guard.epoch = epoch_;
  auto it = versions_.find(key);
  guard.version = it == versions_.end() ? 0 : it->second;
  return guard;
}

bool CacheStore::GuardHoldsLocked(const std::string& key, const FillGuard& guard) {
  if (!guard.cacheable || guard.epoch != epoch_) {
    return false;
  }
  if (pending_writes_.contains(key)) {
    return false;  // an async write raced in after the guard was captured
  }
  auto it = versions_.find(key);
  const uint64_t current = it == versions_.end() ? 0 : it->second;
  return current == guard.version;
}

void CacheStore::InstallLocked(const std::string& key,
                               std::shared_ptr<const Buffer> data) {
  EraseLocked(key);  // replace, never duplicate
  const size_t size = data->size();
  if (size > options_.budget_bytes) {
    return;  // larger than the whole budget: never cached
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(data), lru_.begin()});
  bytes_cached_ += size;
  // Evict from the cold tail until back under budget. The fresh entry is at the
  // front and fits by itself (checked above), so the loop always terminates first.
  while (bytes_cached_ > options_.budget_bytes) {
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_cached_ -= it->second.data->size();
    lru_.pop_back();
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CacheStore::PopulateIfUnchanged(const std::string& key,
                                     std::span<const uint8_t> data,
                                     const FillGuard& guard) {
  if (!guard.cacheable || data.size() > options_.budget_bytes) {
    return;
  }
  auto copy = std::make_shared<Buffer>();
  copy->Append(data);
  MutexLock lock(mu_);
  if (!GuardHoldsLocked(key, guard)) {
    return;  // a Put/Delete raced the backend read: its bytes may be stale
  }
  InstallLocked(key, std::move(copy));
}

void CacheStore::AfterPut(const std::string& key, std::span<const uint8_t> data,
                          bool ok) {
  std::shared_ptr<const Buffer> copy;
  if (ok && options_.cache_writes && data.size() <= options_.budget_bytes) {
    auto populated = std::make_shared<Buffer>();
    populated->Append(data);
    copy = std::move(populated);
  }
  MutexLock lock(mu_);
  // The bump must come after the backend write: it cuts off miss-fills that read the
  // pre-write bytes, and (write-through) the install below replaces the entry.
  BumpVersionLocked(key);
  if (copy != nullptr) {
    InstallLocked(key, std::move(copy));
  } else {
    EraseLocked(key);
  }
}

Status CacheStore::Put(const std::string& key, std::span<const uint8_t> data) {
  Status status = base_->Put(key, data);
  AfterPut(key, data, status.ok());
  return status;
}

Status CacheStore::Get(const std::string& key, Buffer* out) {
  std::shared_ptr<const Buffer> hit;
  FillGuard guard;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      TouchLocked(it);
      hit = it->second.data;  // copy happens outside the lock
    } else {
      guard = CaptureGuardLocked(key);
    }
  }
  if (hit != nullptr) {
    RecordHit(hit->size());
    out->Clear();
    out->Append(hit->span());
    return OkStatus();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  PERSONA_RETURN_IF_ERROR(base_->Get(key, out));
  PopulateIfUnchanged(key, out->span(), guard);
  return OkStatus();
}

Result<uint64_t> CacheStore::Size(const std::string& key) {
  {
    MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Metadata served from the cache; hit/miss counters track payload reads only.
      return static_cast<uint64_t>(it->second.data->size());
    }
  }
  return base_->Size(key);
}

Status CacheStore::Delete(const std::string& key) {
  Status status = base_->Delete(key);
  MutexLock lock(mu_);
  BumpVersionLocked(key);
  EraseLocked(key);
  return status;
}

bool CacheStore::Exists(const std::string& key) {
  {
    MutexLock lock(mu_);
    if (entries_.contains(key)) {
      return true;
    }
  }
  return base_->Exists(key);
}

Result<std::vector<std::string>> CacheStore::List(std::string_view prefix) {
  return base_->List(prefix);
}

Status CacheStore::PutBatch(std::span<PutOp> ops) {
  // Forward whole: the backend overlaps the writes across its shards. Cache
  // bookkeeping happens after, per op outcome.
  Status first_error = base_->PutBatch(ops);
  for (PutOp& op : ops) {
    AfterPut(op.key, op.data, op.status.ok());
  }
  return first_error;
}

Status CacheStore::GetBatch(std::span<GetOp> ops) {
  struct Miss {
    size_t index = 0;
    FillGuard guard;
  };
  std::vector<std::pair<size_t, std::shared_ptr<const Buffer>>> hits;
  std::vector<Miss> misses;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < ops.size(); ++i) {
      auto it = entries_.find(ops[i].key);
      if (it != entries_.end()) {
        TouchLocked(it);
        hits.emplace_back(i, it->second.data);
      } else {
        misses.push_back({i, CaptureGuardLocked(ops[i].key)});
      }
    }
  }
  // Hits copy at memory speed, outside the lock.
  for (auto& [index, data] : hits) {
    RecordHit(data->size());
    ops[index].out->Clear();
    ops[index].out->Append(data->span());
    ops[index].status = OkStatus();
  }
  if (misses.empty()) {
    return OkStatus();
  }
  misses_.fetch_add(misses.size(), std::memory_order_relaxed);
  // One backend batch for the miss subset: its internal parallelism (and retry
  // policy) applies to the real transfers only.
  std::vector<GetOp> backend_ops;
  backend_ops.reserve(misses.size());
  for (const Miss& miss : misses) {
    backend_ops.push_back({ops[miss.index].key, ops[miss.index].out, {}});
  }
  Status first_error = base_->GetBatch(backend_ops);
  for (size_t j = 0; j < misses.size(); ++j) {
    GetOp& op = ops[misses[j].index];
    op.status = backend_ops[j].status;
    if (op.status.ok()) {
      PopulateIfUnchanged(op.key, op.out->span(), misses[j].guard);
    }
  }
  return first_error;
}

Status CacheStore::DeleteBatch(std::span<DeleteOp> ops) {
  Status first_error = base_->DeleteBatch(ops);
  MutexLock lock(mu_);
  for (const DeleteOp& op : ops) {
    BumpVersionLocked(op.key);
    EraseLocked(op.key);
  }
  return first_error;
}

IoTicket CacheStore::SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) {
  // Async gets bypass the cache (op memory is caller-owned and a cache-served subset
  // could not share the backend's ticket); async puts make their keys uncacheable
  // until the ticket completes — see the invalidation contract in the header.
  IoTicket ticket = base_->SubmitAsync(puts, gets);
  if (!puts.empty()) {
    MutexLock lock(mu_);
    for (const PutOp& op : puts) {
      BumpVersionLocked(op.key);
      EraseLocked(op.key);
      pending_writes_[op.key] = ticket;
    }
    if (pending_writes_.size() > kPendingSweepThreshold) {
      for (auto it = pending_writes_.begin(); it != pending_writes_.end();) {
        if (it->second.done()) {
          BumpVersionLocked(it->first);
          it = pending_writes_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return ticket;
}

void CacheStore::Prefetch(std::span<const std::string> keys) {
  struct Fetch {
    std::string key;
    FillGuard guard;
    std::shared_ptr<Buffer> buffer;  // the future cache entry, filled directly
  };
  std::vector<Fetch> fetches;
  {
    std::unordered_set<std::string_view> seen;
    MutexLock lock(mu_);
    for (const std::string& key : keys) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        TouchLocked(it);  // about to be read: keep it hot
        continue;
      }
      if (!seen.insert(key).second) {
        continue;
      }
      FillGuard guard = CaptureGuardLocked(key);
      if (!guard.cacheable) {
        continue;
      }
      fetches.push_back({key, guard, std::make_shared<Buffer>()});
    }
  }
  if (fetches.empty()) {
    return;
  }
  std::vector<GetOp> ops;
  ops.reserve(fetches.size());
  for (Fetch& fetch : fetches) {
    ops.push_back({fetch.key, fetch.buffer.get(), {}});
  }
  Status status = base_->GetBatch(ops);
  if (!status.ok()) {
    // Best-effort contract: the authoritative Get that follows surfaces errors with
    // proper retry/quarantine handling; a failed warm-up only costs a later miss.
    PLOG(DEBUG) << "cache prefetch: " << status.ToString();
  }
  for (size_t i = 0; i < fetches.size(); ++i) {
    if (!ops[i].status.ok()) {
      continue;
    }
    MutexLock lock(mu_);
    if (GuardHoldsLocked(fetches[i].key, fetches[i].guard)) {
      InstallLocked(fetches[i].key, std::move(fetches[i].buffer));
    }
  }
}

StoreStats CacheStore::stats() const {
  StoreStats stats = base_->stats();
  AddRetryStats(&stats);
  stats.cache_hits += hits_.load(std::memory_order_relaxed);
  stats.cache_misses += misses_.load(std::memory_order_relaxed);
  stats.cache_evictions += evictions_.load(std::memory_order_relaxed);
  stats.cache_hit_bytes += hit_bytes_.load(std::memory_order_relaxed);
  return stats;
}

CacheStore::Usage CacheStore::usage() const {
  MutexLock lock(mu_);
  return {bytes_cached_, entries_.size()};
}

size_t CacheBudgetFromEnv(size_t default_bytes) {
  const char* env = std::getenv("PERSONA_CACHE_MB");
  if (env == nullptr || *env == '\0') {
    return default_bytes;
  }
  char* end = nullptr;
  const unsigned long long mb = std::strtoull(env, &end, 10);
  if (end == env) {
    return default_bytes;
  }
  return static_cast<size_t>(mb) << 20;
}

}  // namespace persona::storage
