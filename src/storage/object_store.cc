#include "src/storage/object_store.h"

namespace persona::storage {

StoreStats StatsDelta(const StoreStats& before, const StoreStats& after) {
  StoreStats delta;
  delta.bytes_read = after.bytes_read - before.bytes_read;
  delta.bytes_written = after.bytes_written - before.bytes_written;
  delta.read_ops = after.read_ops - before.read_ops;
  delta.write_ops = after.write_ops - before.write_ops;
  delta.retries = after.retries - before.retries;
  delta.give_ups = after.give_ups - before.give_ups;
  delta.cache_hits = after.cache_hits - before.cache_hits;
  delta.cache_misses = after.cache_misses - before.cache_misses;
  delta.cache_evictions = after.cache_evictions - before.cache_evictions;
  delta.cache_hit_bytes = after.cache_hit_bytes - before.cache_hit_bytes;
  return delta;
}

Status ObjectStore::PutBatch(std::span<PutOp> ops) {
  Status first_error;
  for (PutOp& op : ops) {
    op.status = RunOpWithRetry(op.key, [&] { return Put(op.key, op.data); });
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

Status ObjectStore::GetBatch(std::span<GetOp> ops) {
  Status first_error;
  for (GetOp& op : ops) {
    op.status = RunOpWithRetry(op.key, [&] { return Get(op.key, op.out); });
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

Status ObjectStore::DeleteBatch(std::span<DeleteOp> ops) {
  Status first_error;
  for (DeleteOp& op : ops) {
    op.status = RunOpWithRetry(op.key, [&] { return Delete(op.key); });
    if (!op.status.ok() && first_error.ok()) {
      first_error = op.status;
    }
  }
  return first_error;
}

IoTicket ObjectStore::SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) {
  Status put_status = PutBatch(puts);
  Status get_status = GetBatch(gets);
  return CompletedTicket(!put_status.ok() ? put_status : get_status);
}

IoTicket ObjectStore::CompletedTicket(Status status) {
  IoTicket ticket;
  if (!status.ok()) {
    ticket.state_ = std::make_shared<IoTicket::State>();
    ticket.state_->pending = 0;
    ticket.state_->first_error = std::move(status);
  }
  return ticket;
}

}  // namespace persona::storage
