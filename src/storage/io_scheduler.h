// Asynchronous, sharded object I/O (paper §4.2, §4.4).
//
// The paper saturates storage by keeping many whole-object transfers in flight at once:
// compute nodes pull AGD chunks from independent OSDs concurrently instead of paying one
// round-trip at a time. This module provides that machinery for every ObjectStore:
//
//   PutOp / GetOp    — one whole-object operation, with a per-op completion Status
//   IoTicket         — completion handle for a submitted batch (Wait / Await / WaitAll)
//   IoScheduler      — per-shard submission queues (MpmcQueue) drained by a worker
//                      pool; each shard targets one backend store, so transfers on
//                      different shards overlap even from a single-threaded caller
//
// Stores with internal parallelism (CephSimStore's OSD nodes, ShardedStore's backends)
// own an IoScheduler and override ObjectStore::{PutBatch,GetBatch,SubmitAsync} with it;
// everything else inherits sequential base-class loops with identical semantics.

#ifndef PERSONA_SRC_STORAGE_IO_SCHEDULER_H_
#define PERSONA_SRC_STORAGE_IO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/mpmc_queue.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace persona::storage {

class ObjectStore;
struct RetryPolicy;
struct RetryCounters;

// One whole-object write. `data` is caller-owned and must stay alive (and unmodified)
// until the batch call returns or the submission's ticket completes.
struct PutOp {
  std::string key;
  std::span<const uint8_t> data;
  Status status;  // per-op outcome, written on completion
};

// One whole-object read into the caller-owned `out` buffer, which must stay alive until
// the batch call returns or the submission's ticket completes.
struct GetOp {
  std::string key;
  Buffer* out = nullptr;
  Status status;  // per-op outcome, written on completion
};

// One whole-object delete (namespace metadata op). Used for bulk temporary cleanup —
// e.g. the sort pipeline's superchunk spill files — where paying one metadata
// round-trip at a time serializes on op latency.
struct DeleteOp {
  std::string key;
  Status status;  // per-op outcome, written on completion
};

// FNV-1a over a key: the stable placement hash shared by CephSimStore's CRUSH stand-in
// and ShardedStore's namespace partitioning.
uint64_t ShardHash(std::string_view key);

// Completion handle for one asynchronous submission. Copyable (shared state); a
// default-constructed ticket is already complete with OK status. [[nodiscard]]:
// dropping a ticket on the floor silently decouples the caller from completion *and*
// from the batch's first error — exactly the swallowed-error shape this repo bans.
class [[nodiscard]] IoTicket {
 public:
  IoTicket() = default;

  // Blocks until every op in the submission has executed.
  void Wait() const;

  // Wait(), then return the first per-op error (OK if all ops succeeded).
  [[nodiscard]] Status Await() const;

  bool done() const;

 private:
  friend class IoScheduler;
  friend class ObjectStore;

  struct State {
    Mutex mu;
    CondVar cv;
    size_t pending GUARDED_BY(mu) = 0;
    Status first_error GUARDED_BY(mu);
  };

  std::shared_ptr<State> state_;
};

// Waits for every ticket; returns the first error across them (submission order).
[[nodiscard]] Status WaitAll(std::span<IoTicket> tickets);

struct IoSchedulerOptions {
  // Worker threads draining each shard's submission queue. 1 preserves per-shard FIFO
  // execution order (a simulated OSD services its queue serially); raise it for real
  // backends that overlap well (e.g. filesystem shards).
  int workers_per_shard = 1;
  // Capacity of each shard's submission queue; Submit blocks (backpressure) when full.
  size_t queue_depth = 128;
  // When set, each worker runs its ops under this retry policy (see retry.h),
  // recording into `retry_counters`. Both must outlive the scheduler; the owning store
  // points them at its own policy/stats members. Read unlocked by workers, so the
  // policy must not change while ops are in flight.
  const RetryPolicy* retry = nullptr;
  RetryCounters* retry_counters = nullptr;
};

// A multi-queue I/O engine: one bounded submission queue + worker pool per shard.
// `targets[i]` is the store that executes shard i's ops (the same store may back several
// shards); `shard_of` maps keys to shards (default: ShardHash(key) % num_shards).
// Submission never reorders ops of the same shard relative to each other.
class IoScheduler {
 public:
  using ShardFn = std::function<size_t(std::string_view key)>;

  explicit IoScheduler(std::vector<ObjectStore*> targets,
                       const IoSchedulerOptions& options = {}, ShardFn shard_of = nullptr);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Enqueues every op onto its shard's queue and returns the batch's completion ticket.
  // The spans' underlying ops must stay alive until the ticket completes.
  [[nodiscard]] IoTicket Submit(std::span<PutOp> puts, std::span<GetOp> gets,
                                std::span<DeleteOp> deletes = {});

  // Submit + Await: the synchronous batched entry point.
  [[nodiscard]] Status RunBatch(std::span<PutOp> puts, std::span<GetOp> gets,
                  std::span<DeleteOp> deletes = {});

  size_t num_shards() const { return queues_.size(); }

 private:
  // A queued op: exactly one of put/get/del is set. Op memory is caller-owned.
  struct Task {
    PutOp* put = nullptr;
    GetOp* get = nullptr;
    DeleteOp* del = nullptr;
    std::shared_ptr<IoTicket::State> completion;
  };

  void WorkerLoop(size_t shard);
  size_t ShardOf(std::string_view key) const;
  // Marks one op of `state` finished with `status`, notifying waiters on the last one.
  static void CompleteOne(const std::shared_ptr<IoTicket::State>& state,
                          const Status& status);

  std::vector<ObjectStore*> targets_;
  ShardFn shard_of_;
  const RetryPolicy* retry_ = nullptr;
  RetryCounters* retry_counters_ = nullptr;
  std::vector<std::unique_ptr<MpmcQueue<Task>>> queues_;
  std::vector<std::thread> workers_;
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_IO_SCHEDULER_H_
