// MemoryStore: a thread-safe in-memory ObjectStore, optionally throttled.
//
// Used directly by tests and as the backing plane of the simulated distributed store.
// With a ThrottledDevice attached it behaves like a bandwidth-limited medium while
// avoiding real filesystem effects. The mutex guards only the object map; throttling
// and stats are lock-free, so concurrent transfers overlap (per-shard batch workers
// must not serialize here).

#ifndef PERSONA_SRC_STORAGE_MEMORY_STORE_H_
#define PERSONA_SRC_STORAGE_MEMORY_STORE_H_

#include <map>
#include <memory>

#include "src/storage/object_store.h"
#include "src/storage/throttled_device.h"
#include "src/util/mutex.h"

namespace persona::storage {

class MemoryStore final : public ObjectStore {
 public:
  // `device` may be null (no throttling); if set it is shared with the caller.
  explicit MemoryStore(std::shared_ptr<ThrottledDevice> device = nullptr)
      : device_(std::move(device)) {}

  using ObjectStore::Put;
  Status Put(const std::string& key, std::span<const uint8_t> data) override;
  Status Get(const std::string& key, Buffer* out) override;
  Result<uint64_t> Size(const std::string& key) override;
  Status Delete(const std::string& key) override;
  bool Exists(const std::string& key) override;
  Result<std::vector<std::string>> List(std::string_view prefix) override;

  StoreStats stats() const override;

 private:
  std::shared_ptr<ThrottledDevice> device_;
  mutable Mutex mu_;
  std::map<std::string, std::vector<uint8_t>> objects_ GUARDED_BY(mu_);
  AtomicStoreStats stats_;
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_MEMORY_STORE_H_
