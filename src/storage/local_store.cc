#include "src/storage/local_store.h"

#include <algorithm>
#include <filesystem>
#include <mutex>

#include "src/util/file_util.h"
#include "src/util/string_util.h"

namespace persona::storage {

namespace fs = std::filesystem;

Result<std::unique_ptr<LocalStore>> LocalStore::Create(
    const std::string& root, std::shared_ptr<ThrottledDevice> device) {
  PERSONA_RETURN_IF_ERROR(MakeDirectories(root));
  return std::unique_ptr<LocalStore>(new LocalStore(root, std::move(device)));
}

Status LocalStore::Put(const std::string& key, std::span<const uint8_t> data) {
  if (device_ != nullptr) {
    device_->Write(data.size());
  }
  Status status = WriteStringToFile(
      PathFor(key),
      std::string_view(reinterpret_cast<const char*>(data.data()), data.size()));
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_written += data.size();
    ++stats_.write_ops;
  }
  return status;
}

Status LocalStore::Get(const std::string& key, Buffer* out) {
  out->Clear();
  PERSONA_RETURN_IF_ERROR(ReadFileToBuffer(PathFor(key), out));
  if (device_ != nullptr) {
    device_->Read(out->size());
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_read += out->size();
  ++stats_.read_ops;
  return OkStatus();
}

Result<uint64_t> LocalStore::Size(const std::string& key) { return FileSize(PathFor(key)); }

Status LocalStore::Delete(const std::string& key) { return RemoveFile(PathFor(key)); }

bool LocalStore::Exists(const std::string& key) { return FileExists(PathFor(key)); }

Result<std::vector<std::string>> LocalStore::List(std::string_view prefix) {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string name = entry.path().filename().string();
    if (StartsWith(name, prefix)) {
      keys.push_back(std::move(name));
    }
  }
  if (ec) {
    return UnavailableError("directory iteration failed: " + ec.message());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StoreStats LocalStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace persona::storage
