#include "src/storage/local_store.h"

#include <algorithm>
#include <filesystem>

#include "src/util/file_util.h"
#include "src/util/string_util.h"

namespace persona::storage {

namespace fs = std::filesystem;

Result<std::unique_ptr<LocalStore>> LocalStore::Create(
    const std::string& root, std::shared_ptr<ThrottledDevice> device) {
  PERSONA_RETURN_IF_ERROR(MakeDirectories(root));
  return std::unique_ptr<LocalStore>(new LocalStore(root, std::move(device)));
}

void LocalStore::ChargeMetadataRead() {
  if (device_ != nullptr) {
    device_->Read(0);
  }
  stats_.RecordMetadataRead();
}

void LocalStore::ChargeMetadataWrite() {
  if (device_ != nullptr) {
    device_->Write(0);
  }
  stats_.RecordMetadataWrite();
}

Status LocalStore::Put(const std::string& key, std::span<const uint8_t> data) {
  if (device_ != nullptr) {
    device_->Write(data.size());
  }
  // Keys may address nested namespaces ("dataset/chunk-0.bases"): materialize the
  // parent directories before the write instead of failing on the open.
  if (key.find('/') != std::string::npos) {
    PERSONA_RETURN_IF_ERROR(
        MakeDirectories(fs::path(PathFor(key)).parent_path().string()));
  }
  // Atomic replace: a Put observed by a concurrent reader (or interrupted by a crash)
  // is either absent or complete — never torn. Journals and manifests written through
  // the store rely on this for their write-then-rename checkpoint semantics.
  Status status = WriteFileAtomic(
      PathFor(key),
      std::string_view(reinterpret_cast<const char*>(data.data()), data.size()));
  if (status.ok()) {
    stats_.RecordWrite(data.size());
  }
  return status;
}

Status LocalStore::Get(const std::string& key, Buffer* out) {
  out->Clear();
  PERSONA_RETURN_IF_ERROR(ReadFileToBuffer(PathFor(key), out));
  if (device_ != nullptr) {
    device_->Read(out->size());
  }
  stats_.RecordRead(out->size());
  return OkStatus();
}

Result<uint64_t> LocalStore::Size(const std::string& key) {
  ChargeMetadataRead();
  return FileSize(PathFor(key));
}

Status LocalStore::Delete(const std::string& key) {
  ChargeMetadataWrite();
  return RemoveFile(PathFor(key));
}

bool LocalStore::Exists(const std::string& key) {
  ChargeMetadataRead();
  return FileExists(PathFor(key));
}

Result<std::vector<std::string>> LocalStore::List(std::string_view prefix) {
  std::vector<std::string> keys;
  std::error_code ec;
  // Recursive walk: nested keys ("a/b/c.bases") list as their '/'-separated relative
  // path, matching what Put accepted.
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) {
      continue;
    }
    std::string key = fs::relative(it->path(), root_, ec).generic_string();
    if (ec) {
      break;
    }
    if (StartsWith(key, prefix)) {
      keys.push_back(std::move(key));
    }
  }
  if (ec) {
    return UnavailableError("directory iteration failed: " + ec.message());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StoreStats LocalStore::stats() const {
  StoreStats stats = stats_.Snapshot();
  AddRetryStats(&stats);  // retries from the inherited sequential batch loops
  return stats;
}

}  // namespace persona::storage
