#include "src/storage/ceph_sim.h"

#include <algorithm>

namespace persona::storage {

CephSimConfig CephSimConfig::Scaled(double scale) {
  CephSimConfig config;
  config.per_node_bandwidth = static_cast<uint64_t>(857e6 * scale);
  return config;
}

CephSimStore::CephSimStore(const CephSimConfig& config) : config_(config) {
  nodes_.reserve(static_cast<size_t>(config.num_osd_nodes));
  for (int i = 0; i < config.num_osd_nodes; ++i) {
    DeviceProfile profile;
    profile.bandwidth_bytes_per_sec = config.per_node_bandwidth;
    profile.op_latency_sec = config.op_latency_sec;
    profile.name = "osd-" + std::to_string(i);
    nodes_.push_back(std::make_unique<ThrottledDevice>(profile));
  }
  // One submission queue + worker per OSD node, all executing this store's scalar ops:
  // each node drains its queue serially (a device services one transfer at a time)
  // while distinct nodes transfer in parallel.
  IoSchedulerOptions scheduler_options;
  scheduler_options.workers_per_shard = 1;
  scheduler_options.queue_depth = config.queue_depth;
  // Batched/async ops retry transient failures on the node workers (see retry.h);
  // the policy defaults to disabled until SetRetryPolicy.
  scheduler_options.retry = &retry_policy_;
  scheduler_options.retry_counters = &stats_.retry;
  std::vector<ObjectStore*> targets(nodes_.size(), this);
  scheduler_ = std::make_unique<IoScheduler>(
      std::move(targets), scheduler_options,
      [this](std::string_view key) { return PrimaryNode(key); });
}

size_t CephSimStore::PrimaryNode(std::string_view key) const {
  // FNV-1a over the key: stable placement across runs.
  return static_cast<size_t>(ShardHash(key) % nodes_.size());
}

Status CephSimStore::Put(const std::string& key, std::span<const uint8_t> data) {
  size_t primary = PrimaryNode(key);
  int replicas = std::min<int>(config_.replication, static_cast<int>(nodes_.size()));
  // Replication: the write consumes bandwidth on every replica's node.
  for (int r = 0; r < replicas; ++r) {
    nodes_[(primary + static_cast<size_t>(r)) % nodes_.size()]->Write(data.size());
  }
  PERSONA_RETURN_IF_ERROR(backing_.Put(key, data));
  stats_.RecordWrite(data.size());
  return OkStatus();
}

Status CephSimStore::Get(const std::string& key, Buffer* out) {
  PERSONA_RETURN_IF_ERROR(backing_.Get(key, out));
  nodes_[PrimaryNode(key)]->Read(out->size());
  stats_.RecordRead(out->size());
  return OkStatus();
}

Result<uint64_t> CephSimStore::Size(const std::string& key) {
  nodes_[PrimaryNode(key)]->Read(0);  // metadata round-trip: latency only
  stats_.RecordMetadataRead();
  return backing_.Size(key);
}

Status CephSimStore::Delete(const std::string& key) {
  nodes_[PrimaryNode(key)]->Write(0);
  stats_.RecordMetadataWrite();
  return backing_.Delete(key);
}

bool CephSimStore::Exists(const std::string& key) {
  nodes_[PrimaryNode(key)]->Read(0);
  stats_.RecordMetadataRead();
  return backing_.Exists(key);
}

Result<std::vector<std::string>> CephSimStore::List(std::string_view prefix) {
  return backing_.List(prefix);
}

Status CephSimStore::PutBatch(std::span<PutOp> ops) {
  return scheduler_->RunBatch(ops, {});
}

Status CephSimStore::GetBatch(std::span<GetOp> ops) {
  return scheduler_->RunBatch({}, ops);
}

Status CephSimStore::DeleteBatch(std::span<DeleteOp> ops) {
  return scheduler_->RunBatch({}, {}, ops);
}

IoTicket CephSimStore::SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets) {
  return scheduler_->Submit(puts, gets);
}

StoreStats CephSimStore::stats() const {
  StoreStats stats = stats_.Snapshot();
  AddRetryStats(&stats);
  return stats;
}

std::vector<uint64_t> CephSimStore::PerNodeBytes() const {
  std::vector<uint64_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node->bytes_read() + node->bytes_written());
  }
  return out;
}

}  // namespace persona::storage
