#include "src/storage/ceph_sim.h"

namespace persona::storage {

CephSimConfig CephSimConfig::Scaled(double scale) {
  CephSimConfig config;
  config.per_node_bandwidth = static_cast<uint64_t>(857e6 * scale);
  return config;
}

CephSimStore::CephSimStore(const CephSimConfig& config) : config_(config) {
  nodes_.reserve(static_cast<size_t>(config.num_osd_nodes));
  for (int i = 0; i < config.num_osd_nodes; ++i) {
    DeviceProfile profile;
    profile.bandwidth_bytes_per_sec = config.per_node_bandwidth;
    profile.op_latency_sec = config.op_latency_sec;
    profile.name = "osd-" + std::to_string(i);
    nodes_.push_back(std::make_unique<ThrottledDevice>(profile));
  }
}

size_t CephSimStore::PrimaryNode(const std::string& key) const {
  // FNV-1a over the key: stable placement across runs.
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % nodes_.size());
}

Status CephSimStore::Put(const std::string& key, std::span<const uint8_t> data) {
  size_t primary = PrimaryNode(key);
  int replicas = std::min<int>(config_.replication, static_cast<int>(nodes_.size()));
  // Replication: the write consumes bandwidth on every replica's node.
  for (int r = 0; r < replicas; ++r) {
    nodes_[(primary + static_cast<size_t>(r)) % nodes_.size()]->Write(data.size());
  }
  PERSONA_RETURN_IF_ERROR(backing_.Put(key, data));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += data.size();
  ++stats_.write_ops;
  return OkStatus();
}

Status CephSimStore::Get(const std::string& key, Buffer* out) {
  PERSONA_RETURN_IF_ERROR(backing_.Get(key, out));
  nodes_[PrimaryNode(key)]->Read(out->size());
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_read += out->size();
  ++stats_.read_ops;
  return OkStatus();
}

Result<uint64_t> CephSimStore::Size(const std::string& key) { return backing_.Size(key); }

Status CephSimStore::Delete(const std::string& key) { return backing_.Delete(key); }

bool CephSimStore::Exists(const std::string& key) { return backing_.Exists(key); }

Result<std::vector<std::string>> CephSimStore::List(std::string_view prefix) {
  return backing_.List(prefix);
}

StoreStats CephSimStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<uint64_t> CephSimStore::PerNodeBytes() const {
  std::vector<uint64_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node->bytes_read() + node->bytes_written());
  }
  return out;
}

}  // namespace persona::storage
