// Storage abstraction for Persona reader/writer nodes (paper §4.2, §4.4).
//
// Persona supports local disk and the Ceph object store behind one interface; "other
// storage systems can be supported simply by writing the interface into a new Reader
// node". This module provides that interface plus three implementations:
//   MemoryStore   — plain in-memory map (tests, cluster simulation backing)
//   LocalStore    — directory-backed files routed through a ThrottledDevice
//   CephSimStore  — simulated distributed object store (see ceph_sim.h)

#ifndef PERSONA_SRC_STORAGE_OBJECT_STORE_H_
#define PERSONA_SRC_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::storage {

struct StoreStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual Status Put(const std::string& key, std::span<const uint8_t> data) = 0;
  virtual Status Get(const std::string& key, Buffer* out) = 0;
  virtual Result<uint64_t> Size(const std::string& key) = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual bool Exists(const std::string& key) = 0;
  virtual Result<std::vector<std::string>> List(std::string_view prefix) = 0;

  virtual StoreStats stats() const = 0;

  // Convenience overloads.
  Status Put(const std::string& key, const Buffer& data) { return Put(key, data.span()); }
  Status Put(const std::string& key, std::string_view data) {
    return Put(key, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                             data.size()));
  }
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_OBJECT_STORE_H_
