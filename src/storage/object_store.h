// Storage abstraction for Persona reader/writer nodes (paper §4.2, §4.4).
//
// Persona supports local disk and the Ceph object store behind one interface; "other
// storage systems can be supported simply by writing the interface into a new Reader
// node". This module provides that interface plus four implementations:
//   MemoryStore   — plain in-memory map (tests, cluster simulation backing)
//   LocalStore    — directory-backed files routed through a ThrottledDevice
//   CephSimStore  — simulated distributed object store (see ceph_sim.h)
//   ShardedStore  — hash-partitions the namespace over N backend stores
//
// Besides the scalar one-op-at-a-time calls, every store speaks a batched/asynchronous
// protocol (PutBatch / GetBatch / SubmitAsync, see io_scheduler.h): pipelines submit all
// of a chunk's column objects at once and the store overlaps the transfers across its
// internal parallelism (OSD nodes, namespace shards). The base class provides sequential
// defaults that loop the scalar ops — mirroring Aligner::AlignBatch — so batch semantics
// are identical everywhere and backends opt into real concurrency.

#ifndef PERSONA_SRC_STORAGE_OBJECT_STORE_H_
#define PERSONA_SRC_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/storage/io_scheduler.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::storage {

struct StoreStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;   // Get + metadata reads (Size, Exists)
  uint64_t write_ops = 0;  // Put + Delete
};

// Lock-free StoreStats accumulator for stores whose ops execute concurrently on many
// worker threads (per-shard queues must not serialize on a stats mutex).
class AtomicStoreStats {
 public:
  void RecordRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  // Zero-byte namespace/metadata operations still cost a round-trip.
  void RecordMetadataRead() { read_ops_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMetadataWrite() { write_ops_.fetch_add(1, std::memory_order_relaxed); }

  StoreStats Snapshot() const {
    StoreStats stats;
    stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    stats.read_ops = read_ops_.load(std::memory_order_relaxed);
    stats.write_ops = write_ops_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  [[nodiscard]] virtual Status Put(const std::string& key,
                                   std::span<const uint8_t> data) = 0;
  [[nodiscard]] virtual Status Get(const std::string& key, Buffer* out) = 0;
  [[nodiscard]] virtual Result<uint64_t> Size(const std::string& key) = 0;
  [[nodiscard]] virtual Status Delete(const std::string& key) = 0;
  virtual bool Exists(const std::string& key) = 0;
  [[nodiscard]] virtual Result<std::vector<std::string>> List(std::string_view prefix) = 0;

  virtual StoreStats stats() const = 0;

  // --- Batched / asynchronous protocol (see io_scheduler.h). ---
  //
  // Every op executes (a failed op never aborts the rest of the batch); each op's
  // outcome lands in its `status` field and the call returns the first error.
  // Defaults loop the scalar ops sequentially; stores with internal parallelism
  // (CephSimStore, ShardedStore) override to overlap transfers across shards.
  [[nodiscard]] virtual Status PutBatch(std::span<PutOp> ops);
  [[nodiscard]] virtual Status GetBatch(std::span<GetOp> ops);
  // Bulk delete (e.g. temporary-object cleanup): per-op latency overlaps across the
  // store's shards instead of paying one metadata round-trip at a time.
  [[nodiscard]] virtual Status DeleteBatch(std::span<DeleteOp> ops);

  // Asynchronous submission: returns a ticket that completes when every op has
  // executed. Op memory (keys, data spans, output buffers) is caller-owned and must
  // outlive the ticket. The default executes inline and returns a completed ticket.
  [[nodiscard]] virtual IoTicket SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets);

  // Convenience overloads.
  [[nodiscard]] Status Put(const std::string& key, const Buffer& data) {
    return Put(key, data.span());
  }
  [[nodiscard]] Status Put(const std::string& key, std::string_view data) {
    return Put(key, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                             data.size()));
  }

 protected:
  // An already-complete ticket carrying `status` as the batch outcome, for synchronous
  // SubmitAsync implementations.
  static IoTicket CompletedTicket(Status status);
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_OBJECT_STORE_H_
