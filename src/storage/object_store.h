// Storage abstraction for Persona reader/writer nodes (paper §4.2, §4.4).
//
// Persona supports local disk and the Ceph object store behind one interface; "other
// storage systems can be supported simply by writing the interface into a new Reader
// node". This module provides that interface plus four implementations:
//   MemoryStore   — plain in-memory map (tests, cluster simulation backing)
//   LocalStore    — directory-backed files routed through a ThrottledDevice
//   CephSimStore  — simulated distributed object store (see ceph_sim.h)
//   ShardedStore  — hash-partitions the namespace over N backend stores
//
// Besides the scalar one-op-at-a-time calls, every store speaks a batched/asynchronous
// protocol (PutBatch / GetBatch / SubmitAsync, see io_scheduler.h): pipelines submit all
// of a chunk's column objects at once and the store overlaps the transfers across its
// internal parallelism (OSD nodes, namespace shards). The base class provides sequential
// defaults that loop the scalar ops — mirroring Aligner::AlignBatch — so batch semantics
// are identical everywhere and backends opt into real concurrency.

#ifndef PERSONA_SRC_STORAGE_OBJECT_STORE_H_
#define PERSONA_SRC_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/storage/io_scheduler.h"
#include "src/storage/retry.h"
#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::storage {

struct StoreStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;   // Get + metadata reads (Size, Exists)
  uint64_t write_ops = 0;  // Put + Delete
  // Retry accounting for the batched/async paths (see retry.h): transient-failure
  // re-attempts performed, and ops abandoned after exhausting the retry budget.
  uint64_t retries = 0;
  uint64_t give_ups = 0;
  // Cache-tier accounting (see cache_store.h). Hits are served from memory and do NOT
  // count toward read_ops/bytes_read — those remain device traffic, so a warm run
  // reads as "few device ops, many hits" instead of hiding the cache's effect.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_hit_bytes = 0;

  // Field-wise sum: merges another delta into this one. Used to combine the deltas of
  // a multi-phase run, and by the cluster work service to aggregate the per-lease
  // deltas its workers report into a cluster-wide total.
  void Accumulate(const StoreStats& other) {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    read_ops += other.read_ops;
    write_ops += other.write_ops;
    retries += other.retries;
    give_ups += other.give_ups;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    cache_hit_bytes += other.cache_hit_bytes;
  }
};

// after - before, field-wise. Every counter is monotonic, so this is the per-run delta
// used by pipeline reports.
StoreStats StatsDelta(const StoreStats& before, const StoreStats& after);

// Lock-free StoreStats accumulator for stores whose ops execute concurrently on many
// worker threads (per-shard queues must not serialize on a stats mutex).
class AtomicStoreStats {
 public:
  void RecordRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  // Zero-byte namespace/metadata operations still cost a round-trip.
  void RecordMetadataRead() { read_ops_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMetadataWrite() { write_ops_.fetch_add(1, std::memory_order_relaxed); }

  StoreStats Snapshot() const {
    StoreStats stats;
    stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    stats.read_ops = read_ops_.load(std::memory_order_relaxed);
    stats.write_ops = write_ops_.load(std::memory_order_relaxed);
    stats.retries = retry.retries.load(std::memory_order_relaxed);
    stats.give_ups = retry.give_ups.load(std::memory_order_relaxed);
    return stats;
  }

  // Retry accounting sink for this store's op executors (an IoScheduler records here
  // when the store wires it up; see IoSchedulerOptions::retry_counters).
  RetryCounters retry;

 private:
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  [[nodiscard]] virtual Status Put(const std::string& key,
                                   std::span<const uint8_t> data) = 0;
  [[nodiscard]] virtual Status Get(const std::string& key, Buffer* out) = 0;
  [[nodiscard]] virtual Result<uint64_t> Size(const std::string& key) = 0;
  [[nodiscard]] virtual Status Delete(const std::string& key) = 0;
  virtual bool Exists(const std::string& key) = 0;
  [[nodiscard]] virtual Result<std::vector<std::string>> List(std::string_view prefix) = 0;

  virtual StoreStats stats() const = 0;

  // --- Batched / asynchronous protocol (see io_scheduler.h). ---
  //
  // Every op executes (a failed op never aborts the rest of the batch); each op's
  // outcome lands in its `status` field and the call returns the first error.
  // Defaults loop the scalar ops sequentially; stores with internal parallelism
  // (CephSimStore, ShardedStore) override to overlap transfers across shards.
  [[nodiscard]] virtual Status PutBatch(std::span<PutOp> ops);
  [[nodiscard]] virtual Status GetBatch(std::span<GetOp> ops);
  // Bulk delete (e.g. temporary-object cleanup): per-op latency overlaps across the
  // store's shards instead of paying one metadata round-trip at a time.
  [[nodiscard]] virtual Status DeleteBatch(std::span<DeleteOp> ops);

  // Asynchronous submission: returns a ticket that completes when every op has
  // executed. Op memory (keys, data spans, output buffers) is caller-owned and must
  // outlive the ticket. The default executes inline and returns a completed ticket.
  [[nodiscard]] virtual IoTicket SubmitAsync(std::span<PutOp> puts, std::span<GetOp> gets);

  // --- Cache tier (see cache_store.h). ---
  //
  // True when repeated Gets of the same key are served from memory (a CacheStore
  // anywhere in the decorator stack). Pipelines use this to decide whether source-side
  // read-ahead is worth issuing: prefetching into a store that caches nothing would
  // just fetch every object twice.
  virtual bool CachesReads() const { return false; }

  // Best-effort cache warm-up: fetch `keys` so that near-future Gets hit memory.
  // Advisory by contract — failures are swallowed (the authoritative Get that follows
  // surfaces them with proper retry/error handling) and stores without a cache treat
  // it as a no-op rather than paying device traffic twice.
  virtual void Prefetch(std::span<const std::string> /*keys*/) {}

  // Convenience overloads.
  [[nodiscard]] Status Put(const std::string& key, const Buffer& data) {
    return Put(key, data.span());
  }
  [[nodiscard]] Status Put(const std::string& key, std::string_view data) {
    return Put(key, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                             data.size()));
  }

  // --- Transient-failure retry (see retry.h). ---
  //
  // Applied per op by the batched/async entry points — base-class loops here, the
  // IoScheduler worker loop for stores that own one. Scalar calls never retry. Must be
  // set before the store is used concurrently: op executors read the policy unlocked.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

 protected:
  // An already-complete ticket carrying `status` as the batch outcome, for synchronous
  // SubmitAsync implementations.
  static IoTicket CompletedTicket(Status status);

  // Runs one scalar op under the retry policy, recording into base_retry_counters_.
  // Used by the sequential batch defaults; stores routing ops through an IoScheduler
  // pass the policy and a counter sink to the scheduler instead.
  [[nodiscard]] Status RunOpWithRetry(std::string_view key,
                                      const std::function<Status()>& op) {
    return RunWithRetry(retry_policy_, &base_retry_counters_, key, op);
  }

  // Folds base_retry_counters_ into a stats snapshot; every stats() implementation
  // calls this so retries performed by the base-class batch loops are never dropped.
  void AddRetryStats(StoreStats* stats) const {
    stats->retries += base_retry_counters_.retries.load(std::memory_order_relaxed);
    stats->give_ups += base_retry_counters_.give_ups.load(std::memory_order_relaxed);
  }

  RetryPolicy retry_policy_;
  RetryCounters base_retry_counters_;
};

}  // namespace persona::storage

#endif  // PERSONA_SRC_STORAGE_OBJECT_STORE_H_
