// DEFLATE compression via the system zlib. This is the codec the paper used ("gzip, as it
// has a good compression ratio without being too compute-intensive").

#ifndef PERSONA_SRC_COMPRESS_ZLIB_CODEC_H_
#define PERSONA_SRC_COMPRESS_ZLIB_CODEC_H_

#include "src/compress/codec.h"

namespace persona::compress {

class ZlibCodec final : public Codec {
 public:
  // level follows zlib conventions (1 = fastest .. 9 = best); 6 is zlib's default.
  explicit ZlibCodec(int level = 6) : level_(level) {}

  CodecId id() const override { return CodecId::kZlib; }
  Status Compress(std::span<const uint8_t> input, Buffer* out) const override;
  Status Decompress(std::span<const uint8_t> input, size_t expected_size,
                    Buffer* out) const override;

 private:
  int level_;
};

}  // namespace persona::compress

#endif  // PERSONA_SRC_COMPRESS_ZLIB_CODEC_H_
