#include "src/compress/codec.h"

#include "src/compress/lzss_codec.h"
#include "src/compress/zlib_codec.h"

namespace persona::compress {

namespace {

// Identity codec: memcpy in both directions.
class IdentityCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kIdentity; }

  Status Compress(std::span<const uint8_t> input, Buffer* out) const override {
    out->Append(input);
    return OkStatus();
  }

  Status Decompress(std::span<const uint8_t> input, size_t expected_size,
                    Buffer* out) const override {
    if (input.size() != expected_size) {
      return DataLossError("identity codec: size mismatch");
    }
    out->Append(input);
    return OkStatus();
  }
};

}  // namespace

Result<CodecId> CodecIdFromName(std::string_view name) {
  if (name == "identity" || name == "none") {
    return CodecId::kIdentity;
  }
  if (name == "zlib" || name == "gzip") {
    return CodecId::kZlib;
  }
  if (name == "lzss") {
    return CodecId::kLzss;
  }
  return InvalidArgumentError("unknown codec name: " + std::string(name));
}

std::string_view CodecName(CodecId id) {
  switch (id) {
    case CodecId::kIdentity:
      return "identity";
    case CodecId::kZlib:
      return "zlib";
    case CodecId::kLzss:
      return "lzss";
  }
  return "unknown";
}

const Codec& GetCodec(CodecId id) {
  static const IdentityCodec kIdentity;
  static const ZlibCodec kZlib;
  static const LzssCodec kLzss;
  switch (id) {
    case CodecId::kZlib:
      return kZlib;
    case CodecId::kLzss:
      return kLzss;
    case CodecId::kIdentity:
    default:
      return kIdentity;
  }
}

}  // namespace persona::compress
