// Base compaction: 3 bits per base, 21 bases per 64-bit word (paper §3).
//
// The AGD bases column stores reads as packed 3-bit codes (A,C,G,T,N) rather than ASCII,
// a ~2.6x size reduction before block compression. The top bit of each word is unused;
// incomplete trailing words are padded with the reserved code 7.

#ifndef PERSONA_SRC_COMPRESS_BASE_COMPACTION_H_
#define PERSONA_SRC_COMPRESS_BASE_COMPACTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::compress {

inline constexpr int kBasesPerWord = 21;
inline constexpr uint8_t kBaseCodeA = 0;
inline constexpr uint8_t kBaseCodeC = 1;
inline constexpr uint8_t kBaseCodeG = 2;
inline constexpr uint8_t kBaseCodeT = 3;
inline constexpr uint8_t kBaseCodeN = 4;
inline constexpr uint8_t kBaseCodePad = 7;

// Returns the 3-bit code for an IUPAC base character (case-insensitive; any ambiguity
// code other than ACGT maps to N). Returns kBaseCodePad for characters outside [A-Za-z].
uint8_t BaseToCode(char base);
char CodeToBase(uint8_t code);

// 'A' <-> 'T', 'C' <-> 'G', 'N' -> 'N'.
char ComplementBase(char base);
std::string ReverseComplement(std::string_view bases);
// Allocation-reusing variant for hot paths: writes into *out (capacity kept across
// calls). `out` must not alias `bases`.
void ReverseComplementInto(std::string_view bases, std::string* out);

// Packs `bases` (ASCII) into little-endian 64-bit words appended to `out`.
// Emits ceil(len/21) words; the caller records the base count separately.
void PackBases(std::string_view bases, Buffer* out);

// Unpacks `count` bases from packed words. Fails if `packed` is too short.
Status UnpackBases(std::span<const uint8_t> packed, size_t count, std::string* out);

// Size in bytes of the packed representation of `count` bases.
size_t PackedBasesSize(size_t count);

}  // namespace persona::compress

#endif  // PERSONA_SRC_COMPRESS_BASE_COMPACTION_H_
