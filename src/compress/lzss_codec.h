// From-scratch LZSS block codec.
//
// Dependency-free alternative to zlib demonstrating AGD's per-column codec selection.
// Encoding: the stream is a sequence of groups, each led by a flag byte whose bits (LSB
// first) say literal (0) or match (1) for the next 8 tokens.
//   literal: 1 raw byte
//   match:   3 bytes = 16-bit little-endian distance (1..65535) + 1 byte length-4 (4..259)
// Matching uses a hash table over 4-byte prefixes with bounded-depth chains, the classic
// LZ77 hash-chain construction.

#ifndef PERSONA_SRC_COMPRESS_LZSS_CODEC_H_
#define PERSONA_SRC_COMPRESS_LZSS_CODEC_H_

#include "src/compress/codec.h"

namespace persona::compress {

class LzssCodec final : public Codec {
 public:
  CodecId id() const override { return CodecId::kLzss; }
  Status Compress(std::span<const uint8_t> input, Buffer* out) const override;
  Status Decompress(std::span<const uint8_t> input, size_t expected_size,
                    Buffer* out) const override;

  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxMatch = 259;       // kMinMatch + 255
  static constexpr size_t kWindowSize = 65535;   // max representable distance
  static constexpr int kMaxChainDepth = 32;      // match-search effort bound
};

}  // namespace persona::compress

#endif  // PERSONA_SRC_COMPRESS_LZSS_CODEC_H_
