#include "src/compress/zlib_codec.h"

#include <zlib.h>

namespace persona::compress {

Status ZlibCodec::Compress(std::span<const uint8_t> input, Buffer* out) const {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  size_t base = out->size();
  // compress2 overwrites [base, base + written); the final Resize trims to it.
  out->ResizeUninitialized(base + bound);
  int rc = compress2(out->data() + base, &bound, input.data(),
                     static_cast<uLong>(input.size()), level_);
  if (rc != Z_OK) {
    out->Resize(base);
    return InternalError("zlib compress2 failed: rc=" + std::to_string(rc));
  }
  out->Resize(base + bound);
  return OkStatus();
}

Status ZlibCodec::Decompress(std::span<const uint8_t> input, size_t expected_size,
                             Buffer* out) const {
  size_t base = out->size();
  // uncompress must fill the region exactly (checked below), so no zero-fill pass.
  out->ResizeUninitialized(base + expected_size);
  uLongf dest_len = static_cast<uLongf>(expected_size);
  int rc = uncompress(out->data() + base, &dest_len, input.data(),
                      static_cast<uLong>(input.size()));
  if (rc != Z_OK) {
    out->Resize(base);
    return DataLossError("zlib uncompress failed: rc=" + std::to_string(rc));
  }
  if (dest_len != expected_size) {
    out->Resize(base);
    return DataLossError("zlib uncompress produced unexpected size");
  }
  return OkStatus();
}

}  // namespace persona::compress
