// Block-compression codec interface for AGD data blocks (paper §3).
//
// AGD selects the compression type per column: e.g. gzip for bases, a cheaper codec for a
// frequently accessed column. This module provides three codecs behind one interface:
//   kIdentity — no compression (fastest access),
//   kZlib     — gzip/DEFLATE via the system zlib (the paper's choice),
//   kLzss     — a from-scratch LZSS with hash-chain matching (dependency-free fallback,
//               also the subject of the codec ablation bench).

#ifndef PERSONA_SRC_COMPRESS_CODEC_H_
#define PERSONA_SRC_COMPRESS_CODEC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "src/util/buffer.h"
#include "src/util/result.h"

namespace persona::compress {

enum class CodecId : uint8_t {
  kIdentity = 0,
  kZlib = 1,
  kLzss = 2,
};

Result<CodecId> CodecIdFromName(std::string_view name);
std::string_view CodecName(CodecId id);

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const = 0;

  // Appends the compressed form of `input` to `out` (does not clear `out`).
  virtual Status Compress(std::span<const uint8_t> input, Buffer* out) const = 0;

  // Appends the decompressed form to `out`. `expected_size` is the exact uncompressed
  // size recorded in the chunk header; codecs use it to size buffers and to validate.
  virtual Status Decompress(std::span<const uint8_t> input, size_t expected_size,
                            Buffer* out) const = 0;
};

// Returns the process-wide codec instance for `id` (codecs are stateless and shared).
const Codec& GetCodec(CodecId id);

}  // namespace persona::compress

#endif  // PERSONA_SRC_COMPRESS_CODEC_H_
