#include "src/compress/lzss_codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace persona::compress {

namespace {

constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr uint32_t kNoPos = 0xFFFFFFFFu;

inline uint32_t HashPrefix(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of a and b, up to max_len.
inline size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t n = 0;
  while (n < max_len && a[n] == b[n]) {
    ++n;
  }
  return n;
}

}  // namespace

Status LzssCodec::Compress(std::span<const uint8_t> input, Buffer* out) const {
  const uint8_t* data = input.data();
  const size_t size = input.size();

  // head[h] = most recent position with hash h; prev[i] = previous position in i's chain.
  std::vector<uint32_t> head(kHashSize, kNoPos);
  std::vector<uint32_t> prev(size, kNoPos);

  // Token group staging: up to 8 tokens per flag byte.
  uint8_t flags = 0;
  int group_count = 0;
  Buffer group;
  group.Reserve(8 * 3);

  auto flush_group = [&] {
    if (group_count > 0) {
      out->AppendByte(flags);
      out->Append(group.span());
      flags = 0;
      group_count = 0;
      group.Clear();
    }
  };

  size_t pos = 0;
  while (pos < size) {
    size_t best_len = 0;
    size_t best_dist = 0;

    if (pos + kMinMatch <= size) {
      uint32_t h = HashPrefix(data + pos);
      uint32_t candidate = head[h];
      int depth = 0;
      size_t window_start = pos > kWindowSize ? pos - kWindowSize : 0;
      size_t max_len = std::min(kMaxMatch, size - pos);
      while (candidate != kNoPos && candidate >= window_start && depth < kMaxChainDepth) {
        size_t len = MatchLength(data + candidate, data + pos, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - candidate;
          if (len >= max_len) {
            break;
          }
        }
        candidate = prev[candidate];
        ++depth;
      }
      // Insert current position into the chain.
      prev[pos] = head[h];
      head[h] = static_cast<uint32_t>(pos);
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<uint8_t>(1u << group_count);
      group.AppendByte(static_cast<uint8_t>(best_dist & 0xFF));
      group.AppendByte(static_cast<uint8_t>((best_dist >> 8) & 0xFF));
      group.AppendByte(static_cast<uint8_t>(best_len - kMinMatch));
      // Index the skipped positions so later matches can reference them.
      size_t end = std::min(pos + best_len, size >= kMinMatch ? size - kMinMatch + 1 : 0);
      for (size_t i = pos + 1; i < end; ++i) {
        uint32_t h = HashPrefix(data + i);
        prev[i] = head[h];
        head[h] = static_cast<uint32_t>(i);
      }
      pos += best_len;
    } else {
      group.AppendByte(data[pos]);
      ++pos;
    }

    ++group_count;
    if (group_count == 8) {
      flush_group();
    }
  }
  flush_group();
  return OkStatus();
}

Status LzssCodec::Decompress(std::span<const uint8_t> input, size_t expected_size,
                             Buffer* out) const {
  size_t base = out->size();
  out->Reserve(base + expected_size);

  size_t in_pos = 0;
  size_t produced = 0;
  while (produced < expected_size) {
    if (in_pos >= input.size()) {
      return DataLossError("lzss: truncated stream (missing flag byte)");
    }
    uint8_t flags = input[in_pos++];
    for (int bit = 0; bit < 8 && produced < expected_size; ++bit) {
      if (flags & (1u << bit)) {
        if (in_pos + 3 > input.size()) {
          return DataLossError("lzss: truncated match token");
        }
        size_t dist = static_cast<size_t>(input[in_pos]) |
                      (static_cast<size_t>(input[in_pos + 1]) << 8);
        size_t len = static_cast<size_t>(input[in_pos + 2]) + kMinMatch;
        in_pos += 3;
        size_t out_size = out->size() - base;
        if (dist == 0 || dist > out_size) {
          return DataLossError("lzss: match distance out of range");
        }
        if (produced + len > expected_size) {
          return DataLossError("lzss: match overruns expected size");
        }
        // Byte-by-byte copy: overlapping matches (dist < len) are legal and common.
        size_t src = out->size() - dist;
        for (size_t i = 0; i < len; ++i) {
          out->AppendByte((*out)[src + i]);
        }
        produced += len;
      } else {
        if (in_pos >= input.size()) {
          return DataLossError("lzss: truncated literal token");
        }
        out->AppendByte(input[in_pos++]);
        ++produced;
      }
    }
  }
  if (in_pos != input.size()) {
    return DataLossError("lzss: trailing bytes after stream end");
  }
  return OkStatus();
}

}  // namespace persona::compress
