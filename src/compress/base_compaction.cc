#include "src/compress/base_compaction.h"

#include <algorithm>
#include <cstring>

namespace persona::compress {

uint8_t BaseToCode(char base) {
  switch (base) {
    case 'A':
    case 'a':
      return kBaseCodeA;
    case 'C':
    case 'c':
      return kBaseCodeC;
    case 'G':
    case 'g':
      return kBaseCodeG;
    case 'T':
    case 't':
      return kBaseCodeT;
    default:
      if ((base >= 'A' && base <= 'Z') || (base >= 'a' && base <= 'z')) {
        return kBaseCodeN;  // IUPAC ambiguity codes collapse to N
      }
      return kBaseCodePad;
  }
}

char CodeToBase(uint8_t code) {
  switch (code) {
    case kBaseCodeA:
      return 'A';
    case kBaseCodeC:
      return 'C';
    case kBaseCodeG:
      return 'G';
    case kBaseCodeT:
      return 'T';
    case kBaseCodeN:
      return 'N';
    default:
      return '?';
  }
}

char ComplementBase(char base) {
  switch (base) {
    case 'A':
    case 'a':
      return 'T';
    case 'C':
    case 'c':
      return 'G';
    case 'G':
    case 'g':
      return 'C';
    case 'T':
    case 't':
      return 'A';
    default:
      return 'N';
  }
}

std::string ReverseComplement(std::string_view bases) {
  std::string out;
  ReverseComplementInto(bases, &out);
  return out;
}

void ReverseComplementInto(std::string_view bases, std::string* out) {
  out->resize(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    (*out)[i] = ComplementBase(bases[bases.size() - 1 - i]);
  }
}

size_t PackedBasesSize(size_t count) {
  size_t words = (count + kBasesPerWord - 1) / kBasesPerWord;
  return words * sizeof(uint64_t);
}

void PackBases(std::string_view bases, Buffer* out) {
  size_t i = 0;
  while (i < bases.size()) {
    uint64_t word = 0;
    for (int slot = 0; slot < kBasesPerWord; ++slot) {
      uint8_t code = kBaseCodePad;
      if (i + static_cast<size_t>(slot) < bases.size()) {
        code = BaseToCode(bases[i + static_cast<size_t>(slot)]);
        if (code == kBaseCodePad) {
          code = kBaseCodeN;  // never store pad for a real position
        }
      }
      word |= static_cast<uint64_t>(code) << (3 * slot);
    }
    out->AppendScalar<uint64_t>(word);
    i += kBasesPerWord;
  }
}

Status UnpackBases(std::span<const uint8_t> packed, size_t count, std::string* out) {
  size_t needed = PackedBasesSize(count);
  if (packed.size() < needed) {
    return DataLossError("packed bases block too short");
  }
  out->reserve(out->size() + count);
  size_t remaining = count;
  for (size_t w = 0; w * sizeof(uint64_t) < needed; ++w) {
    uint64_t word;
    std::memcpy(&word, packed.data() + w * sizeof(uint64_t), sizeof(word));
    int slots = static_cast<int>(std::min<size_t>(kBasesPerWord, remaining));
    for (int slot = 0; slot < slots; ++slot) {
      uint8_t code = static_cast<uint8_t>((word >> (3 * slot)) & 0x7);
      if (code > kBaseCodeN) {
        return DataLossError("invalid base code in packed block");
      }
      out->push_back(CodeToBase(code));
    }
    remaining -= static_cast<size_t>(slots);
  }
  return OkStatus();
}

}  // namespace persona::compress
