#include "src/variant/normalize.h"

namespace persona::variant {

Status NormalizeVariant(const genome::ReferenceGenome& reference,
                        format::VariantRecord* record) {
  if (record->contig_index < 0 ||
      record->contig_index >= static_cast<int32_t>(reference.num_contigs())) {
    return InvalidArgumentError("normalize: contig index out of range");
  }
  if (record->ref_allele.empty() || record->alt_allele.empty()) {
    return InvalidArgumentError("normalize: empty allele");
  }
  const std::string& contig =
      reference.contig(static_cast<size_t>(record->contig_index)).sequence;
  if (record->position < 0 ||
      record->position + static_cast<int64_t>(record->ref_allele.size()) >
          static_cast<int64_t>(contig.size())) {
    return InvalidArgumentError("normalize: position out of contig range");
  }
  if (contig.compare(static_cast<size_t>(record->position), record->ref_allele.size(),
                     record->ref_allele) != 0) {
    return FailedPreconditionError(
        "normalize: REF allele does not match the reference sequence");
  }

  std::string ref = record->ref_allele;
  std::string alt = record->alt_allele;
  int64_t pos = record->position;

  // vt-style loop: trim shared suffixes; when the variant is a pure indel that still
  // ends with a shared base, shift one base left and re-trim. Terminates because each
  // shift strictly decreases `pos`.
  while (true) {
    while (ref.size() > 1 && alt.size() > 1 && ref.back() == alt.back()) {
      ref.pop_back();
      alt.pop_back();
    }
    if ((ref.size() == 1 || alt.size() == 1) && ref.back() == alt.back() && pos > 0) {
      const char previous = contig[static_cast<size_t>(pos - 1)];
      ref.insert(ref.begin(), previous);
      alt.insert(alt.begin(), previous);
      ref.pop_back();
      alt.pop_back();
      --pos;
      continue;
    }
    break;
  }
  // Trim shared prefixes, keeping one anchor base on each side.
  while (ref.size() > 1 && alt.size() > 1 && ref.front() == alt.front()) {
    ref.erase(ref.begin());
    alt.erase(alt.begin());
    ++pos;
  }

  record->ref_allele = std::move(ref);
  record->alt_allele = std::move(alt);
  record->position = pos;
  return OkStatus();
}

int64_t NormalizeVariants(const genome::ReferenceGenome& reference,
                          std::span<format::VariantRecord> records) {
  int64_t changed = 0;
  for (format::VariantRecord& record : records) {
    format::VariantRecord before = record;
    if (NormalizeVariant(reference, &record).ok() &&
        (record.position != before.position || record.ref_allele != before.ref_allele ||
         record.alt_allele != before.alt_allele)) {
      ++changed;
    }
  }
  return changed;
}

}  // namespace persona::variant
