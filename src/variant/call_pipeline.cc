#include "src/variant/call_pipeline.h"

#include <algorithm>

#include "src/format/agd_chunk.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"
#include "src/variant/normalize.h"

namespace persona::variant {

Result<CallPipelineReport> CallVariantsAgd(storage::ObjectStore* store,
                                           const format::Manifest& manifest,
                                           const genome::ReferenceGenome& reference,
                                           const CallPipelineOptions& options) {
  for (const char* column : {"bases", "qual", "results"}) {
    if (!manifest.HasColumn(column)) {
      return FailedPreconditionError(
          StrFormat("variant calling requires the '%s' column", column));
    }
  }

  Stopwatch timer;
  const storage::StoreStats stats_before = store->stats();

  PileupEngine engine(&reference, options.pileup);
  GenotypeCaller caller(&reference, options.caller);
  CoverageAccumulator coverage(reference.total_length(), {});
  CallPipelineReport report;
  std::vector<PileupColumn> flushed;

  auto call_flushed = [&] {
    for (const PileupColumn& column : flushed) {
      ++report.columns_piled;
      coverage.Add(column);
      std::vector<format::VariantRecord> records = caller.CallSite(column);
      report.records.insert(report.records.end(),
                            std::make_move_iterator(records.begin()),
                            std::make_move_iterator(records.end()));
    }
    flushed.clear();
  };

  Buffer bases_file;
  Buffer qual_file;
  Buffer results_file;
  for (size_t ci = 0; ci < manifest.chunks.size(); ++ci) {
    PERSONA_RETURN_IF_ERROR(store->Get(manifest.ChunkFileName(ci, "bases"), &bases_file));
    PERSONA_RETURN_IF_ERROR(store->Get(manifest.ChunkFileName(ci, "qual"), &qual_file));
    PERSONA_RETURN_IF_ERROR(
        store->Get(manifest.ChunkFileName(ci, "results"), &results_file));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk bases,
                             format::ParsedChunk::Parse(bases_file.span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk quals,
                             format::ParsedChunk::Parse(qual_file.span()));
    PERSONA_ASSIGN_OR_RETURN(format::ParsedChunk results,
                             format::ParsedChunk::Parse(results_file.span()));
    if (bases.record_count() != results.record_count() ||
        quals.record_count() != results.record_count()) {
      return DataLossError(StrFormat("chunk %zu: column record counts disagree", ci));
    }

    for (size_t i = 0; i < results.record_count(); ++i) {
      PERSONA_ASSIGN_OR_RETURN(align::AlignmentResult result, results.GetResult(i));
      PERSONA_ASSIGN_OR_RETURN(std::string read_bases, bases.GetBases(i));
      PERSONA_ASSIGN_OR_RETURN(std::string_view read_qual, quals.GetString(i));
      PERSONA_RETURN_IF_ERROR(engine.AddRead(read_bases, read_qual, result));
    }
    // Columns behind the frontier are final: call them now and release the memory.
    engine.FlushBefore(engine.flush_frontier(), &flushed);
    call_flushed();
  }
  engine.FlushAll(&flushed);
  call_flushed();

  report.reads_used = engine.reads_used();
  report.reads_skipped = engine.reads_skipped();
  report.records_called = report.records.size();
  report.coverage = coverage.report();

  // Canonicalize indel placement (normalize.h) and restore genome order — left shifts
  // can reorder records that started at the same pileup column region.
  NormalizeVariants(reference, report.records);
  std::stable_sort(report.records.begin(), report.records.end(),
                   [](const format::VariantRecord& a, const format::VariantRecord& b) {
                     return std::tie(a.contig_index, a.position) <
                            std::tie(b.contig_index, b.position);
                   });

  VariantFilterSummary filter_summary =
      ApplyVariantFilters(report.records, options.filter);
  report.records_passing = static_cast<uint64_t>(filter_summary.passed);

  report.vcf_text = format::WriteVcf(reference, options.sample_name, report.records);
  if (options.store_vcf) {
    PERSONA_RETURN_IF_ERROR(store->Put(manifest.name + ".vcf", report.vcf_text));
  }

  report.seconds = timer.ElapsedSeconds();
  report.store_stats = storage::StatsDelta(stats_before, store->stats());
  return report;
}

}  // namespace persona::variant
