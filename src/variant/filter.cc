#include "src/variant/filter.h"

namespace persona::variant {

VariantFilterSummary ApplyVariantFilters(std::span<format::VariantRecord> records,
                                         const VariantFilterSpec& spec) {
  VariantFilterSummary summary;
  summary.total = static_cast<int64_t>(records.size());
  for (format::VariantRecord& record : records) {
    std::string reasons;
    auto fail = [&reasons](const char* reason) {
      if (!reasons.empty()) {
        reasons += ';';
      }
      reasons += reason;
    };
    if (spec.min_qual > 0 && record.qual < spec.min_qual) {
      fail("LowQual");
      ++summary.failed_qual;
    }
    if ((spec.min_depth > 0 && record.depth < spec.min_depth) ||
        (spec.max_depth > 0 && record.depth > spec.max_depth)) {
      fail("BadDepth");
      ++summary.failed_depth;
    }
    if (spec.min_alt_fraction > 0 && record.alt_fraction < spec.min_alt_fraction) {
      fail("LowAltFraction");
      ++summary.failed_alt_fraction;
    }
    if (spec.max_strand_bias < 1.0 && record.strand_bias > spec.max_strand_bias) {
      fail("StrandBias");
      ++summary.failed_strand_bias;
    }
    if (reasons.empty()) {
      record.filter = "PASS";
      ++summary.passed;
    } else {
      record.filter = std::move(reasons);
    }
  }
  return summary;
}

std::vector<format::VariantRecord> PassingOnly(
    std::span<const format::VariantRecord> records) {
  std::vector<format::VariantRecord> passing;
  for (const format::VariantRecord& record : records) {
    if (record.filter == "PASS") {
      passing.push_back(record);
    }
  }
  return passing;
}

}  // namespace persona::variant
