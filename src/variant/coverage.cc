#include "src/variant/coverage.h"

#include <algorithm>

namespace persona::variant {

double CoverageReport::Breadth(int32_t threshold) const {
  if (genome_length == 0) {
    return 0;
  }
  if (threshold <= 0) {
    return 1.0;
  }
  int64_t at_least = 0;
  for (size_t d = static_cast<size_t>(
           std::min<int64_t>(threshold, static_cast<int64_t>(histogram.size()) - 1));
       d < histogram.size(); ++d) {
    at_least += histogram[d];
  }
  // The histogram's last bucket absorbs depths above the cap, so thresholds beyond the
  // cap cannot be distinguished; clamping to the cap keeps the answer conservative.
  return static_cast<double>(at_least) / static_cast<double>(genome_length);
}

CoverageAccumulator::CoverageAccumulator(int64_t genome_length,
                                         const CoverageOptions& options)
    : options_(options) {
  report_.genome_length = genome_length;
  report_.histogram.assign(static_cast<size_t>(options.histogram_cap) + 1, 0);
  report_.histogram[0] = genome_length;  // start all-uncovered; Add() moves positions up
}

void CoverageAccumulator::Add(const PileupColumn& column) {
  const int32_t depth = column.spanning_reads;
  if (depth <= 0) {
    return;
  }
  ++report_.covered_positions;
  report_.total_depth += depth;
  report_.max_depth = std::max(report_.max_depth, depth);
  const size_t bucket = static_cast<size_t>(std::min(depth, options_.histogram_cap));
  --report_.histogram[0];
  ++report_.histogram[bucket];
}

void CoverageAccumulator::AddAll(std::span<const PileupColumn> columns) {
  for (const PileupColumn& column : columns) {
    Add(column);
  }
}

CoverageReport ComputeCoverage(const genome::ReferenceGenome& reference,
                               std::span<const PileupColumn> columns,
                               const CoverageOptions& options) {
  CoverageAccumulator accumulator(reference.total_length(), options);
  accumulator.AddAll(columns);
  return accumulator.report();
}

}  // namespace persona::variant
