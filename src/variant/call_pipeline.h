// Whole-dataset variant calling over a sorted AGD dataset in an ObjectStore.
//
// This is the integration the paper names as Persona's next step (§8). It follows the
// same selective-column discipline as sort and dedup: only the bases, qual, and results
// columns are transferred, chunk by chunk, in order. Chunks stream through the pileup
// engine; columns behind the engine's flush frontier are called and appended to the VCF
// incrementally, so memory stays bounded by the active pileup window regardless of
// dataset size.
//
// The input dataset must be location-sorted (run pipeline::SortAgdDataset first) and
// should be duplicate-marked (run pipeline::DedupAgdResults) since the pileup skips
// duplicate reads by default.

#ifndef PERSONA_SRC_VARIANT_CALL_PIPELINE_H_
#define PERSONA_SRC_VARIANT_CALL_PIPELINE_H_

#include <string>
#include <vector>

#include "src/format/agd_manifest.h"
#include "src/format/vcf.h"
#include "src/storage/object_store.h"
#include "src/variant/caller.h"
#include "src/variant/coverage.h"
#include "src/variant/filter.h"
#include "src/variant/pileup.h"

namespace persona::variant {

struct CallPipelineOptions {
  PileupOptions pileup;
  CallerOptions caller;
  VariantFilterSpec filter;
  std::string sample_name = "sample";
  // When set, the VCF text is also written back to the store as "<name>.vcf".
  bool store_vcf = true;
};

struct CallPipelineReport {
  double seconds = 0;
  uint64_t reads_used = 0;
  uint64_t reads_skipped = 0;
  uint64_t columns_piled = 0;
  uint64_t records_called = 0;    // before filtering
  uint64_t records_passing = 0;   // FILTER == PASS
  CoverageReport coverage;          // depth statistics over the piled columns
  storage::StoreStats store_stats;  // deltas for this run
  std::vector<format::VariantRecord> records;  // filtered-annotated, genome order
  std::string vcf_text;
};

// Runs pileup + genotyping + filtering over the dataset described by `manifest`.
// `reference` must be the genome the results column was aligned against.
Result<CallPipelineReport> CallVariantsAgd(storage::ObjectStore* store,
                                           const format::Manifest& manifest,
                                           const genome::ReferenceGenome& reference,
                                           const CallPipelineOptions& options);

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_CALL_PIPELINE_H_
