// Hard filters over called variants (GATK-style "hard filtering").
//
// The caller emits every site whose posterior clears min_qual; this pass annotates the
// FILTER column with the reasons a record is untrustworthy (low depth, extreme depth,
// strand bias, low allele fraction) so downstream consumers can keep or drop them.
// Records that pass keep FILTER=PASS, mirroring VCF convention.

#ifndef PERSONA_SRC_VARIANT_FILTER_H_
#define PERSONA_SRC_VARIANT_FILTER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/format/vcf.h"

namespace persona::variant {

struct VariantFilterSpec {
  double min_qual = 0;          // 0 disables
  int32_t min_depth = 0;        // 0 disables
  int32_t max_depth = 0;        // 0 disables (catches collapsed-repeat pileups)
  double min_alt_fraction = 0;  // 0 disables
  double max_strand_bias = 1.0; // 1 disables
};

struct VariantFilterSummary {
  int64_t total = 0;
  int64_t passed = 0;
  int64_t failed_qual = 0;
  int64_t failed_depth = 0;
  int64_t failed_alt_fraction = 0;
  int64_t failed_strand_bias = 0;
};

// Annotates each record's FILTER field in place ("PASS" or a ';'-joined reason list).
VariantFilterSummary ApplyVariantFilters(std::span<format::VariantRecord> records,
                                         const VariantFilterSpec& spec);

// Returns only the records whose FILTER field is "PASS".
std::vector<format::VariantRecord> PassingOnly(std::span<const format::VariantRecord> records);

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_FILTER_H_
