#include "src/variant/caller.h"

#include <algorithm>
#include <cmath>

#include "src/compress/base_compaction.h"

namespace persona::variant {
namespace {

// Error probability from a Phred score, clamped away from 0 and from "worse than
// random" (a 2-bit quality still carries a little information).
double PhredToError(uint8_t qual) {
  double e = std::pow(10.0, -static_cast<double>(qual) / 10.0);
  return std::clamp(e, 1e-6, 0.75);
}

// Normalizes three log-likelihood + log-prior sums into posteriors.
GenotypePosteriors Normalize(double log_rr, double log_ra, double log_aa) {
  const double max_log = std::max({log_rr, log_ra, log_aa});
  const double w_rr = std::exp(log_rr - max_log);
  const double w_ra = std::exp(log_ra - max_log);
  const double w_aa = std::exp(log_aa - max_log);
  const double total = w_rr + w_ra + w_aa;
  return {w_rr / total, w_ra / total, w_aa / total};
}

// Phred-scaled probability that the site is homozygous reference.
double QualFromHomRefPosterior(double hom_ref_posterior) {
  return -10.0 * std::log10(std::max(hom_ref_posterior, 1e-30));
}

}  // namespace

GenotypeCaller::GenotypeCaller(const genome::ReferenceGenome* reference,
                               const CallerOptions& options)
    : reference_(reference), options_(options) {}

std::optional<genome::ContigPosition> GenotypeCaller::Locate(
    genome::GenomeLocation location) const {
  auto position = reference_->GlobalToLocal(location);
  if (!position.ok()) {
    return std::nullopt;
  }
  return *position;
}

std::optional<GenotypePosteriors> GenotypeCaller::SnvPosteriors(const PileupColumn& column,
                                                                uint8_t alt_code) const {
  const uint8_t ref_code = compress::BaseToCode(column.ref_base);
  if (ref_code > compress::kBaseCodeT || alt_code > compress::kBaseCodeT) {
    return std::nullopt;  // N reference or N alt: no defined genotype model
  }
  double log_rr = 0;
  double log_ra = 0;
  double log_aa = 0;
  for (const BaseObservation& obs : column.observations) {
    if (obs.base_code > compress::kBaseCodeT) {
      continue;  // 'N' observations are uninformative
    }
    const double e = PhredToError(obs.qual);
    const double p_ref = obs.base_code == ref_code ? 1.0 - e : e / 3.0;
    const double p_alt = obs.base_code == alt_code ? 1.0 - e : e / 3.0;
    log_rr += std::log(p_ref);
    log_ra += std::log(0.5 * (p_ref + p_alt));
    log_aa += std::log(p_alt);
  }
  const double theta = options_.heterozygosity;
  log_rr += std::log(1.0 - 1.5 * theta);
  log_ra += std::log(theta);
  log_aa += std::log(theta / 2.0);
  return Normalize(log_rr, log_ra, log_aa);
}

std::optional<format::VariantRecord> GenotypeCaller::CallSnv(
    const PileupColumn& column) const {
  const uint8_t ref_code = compress::BaseToCode(column.ref_base);
  if (ref_code > compress::kBaseCodeT) {
    return std::nullopt;
  }
  const std::array<int32_t, 5> counts = column.BaseCounts();
  int32_t depth = 0;
  for (uint8_t code = 0; code <= compress::kBaseCodeT; ++code) {
    depth += counts[code];
  }
  if (depth < options_.min_depth) {
    return std::nullopt;
  }

  uint8_t alt_code = ref_code;
  int32_t alt_count = 0;
  for (uint8_t code = 0; code <= compress::kBaseCodeT; ++code) {
    if (code != ref_code && counts[code] > alt_count) {
      alt_code = code;
      alt_count = counts[code];
    }
  }
  if (alt_count == 0) {
    return std::nullopt;
  }
  const double alt_fraction = static_cast<double>(alt_count) / depth;
  if (alt_fraction < options_.min_alt_fraction) {
    return std::nullopt;
  }

  auto posteriors = SnvPosteriors(column, alt_code);
  if (!posteriors) {
    return std::nullopt;
  }
  if (posteriors->hom_ref >= posteriors->het && posteriors->hom_ref >= posteriors->hom_alt) {
    return std::nullopt;
  }
  const double qual = QualFromHomRefPosterior(posteriors->hom_ref);
  if (qual < options_.min_qual) {
    return std::nullopt;
  }
  auto position = Locate(column.location);
  if (!position) {
    return std::nullopt;
  }

  format::VariantRecord record;
  record.contig_index = position->contig_index;
  record.position = position->offset;
  record.ref_allele.assign(1, column.ref_base);
  record.alt_allele.assign(1, compress::CodeToBase(alt_code));
  record.qual = qual;
  record.depth = depth;
  record.alt_fraction = alt_fraction;
  record.genotype = posteriors->het >= posteriors->hom_alt ? "0/1" : "1/1";

  // Strand bias: difference between the alt fraction seen on each strand.
  int32_t fwd_total = 0;
  int32_t rev_total = 0;
  for (const BaseObservation& obs : column.observations) {
    ++(obs.reverse ? rev_total : fwd_total);
  }
  const std::array<int32_t, 2> alt_by_strand = column.StrandCounts(alt_code);
  if (fwd_total > 0 && rev_total > 0) {
    record.strand_bias =
        std::abs(static_cast<double>(alt_by_strand[0]) / fwd_total -
                 static_cast<double>(alt_by_strand[1]) / rev_total);
  }
  return record;
}

std::optional<format::VariantRecord> GenotypeCaller::CallIndel(
    const PileupColumn& column) const {
  const int32_t spanning = column.spanning_reads;
  if (spanning < options_.min_depth) {
    return std::nullopt;
  }

  // Strongest indel signal at this anchor: most-observed insertion sequence vs
  // most-observed deletion length.
  const std::string* best_insertion = nullptr;
  int32_t insertion_count = 0;
  for (const auto& [sequence, count] : column.insertions) {
    if (count > insertion_count) {
      best_insertion = &sequence;
      insertion_count = count;
    }
  }
  int64_t best_deletion = 0;
  int32_t deletion_count = 0;
  for (const auto& [length, count] : column.deletions) {
    if (count > deletion_count) {
      best_deletion = length;
      deletion_count = count;
    }
  }
  const bool is_insertion = insertion_count >= deletion_count;
  const int32_t support = is_insertion ? insertion_count : deletion_count;
  if (support < options_.min_indel_observations) {
    return std::nullopt;
  }
  const double fraction = static_cast<double>(support) / spanning;
  if (fraction < options_.min_alt_fraction) {
    return std::nullopt;
  }

  // Binary-allele posterior: k of n spanning reads show the indel.
  const double e = options_.indel_error_rate;
  const double k = support;
  const double n_minus_k = std::max(0, spanning - support);
  const double log_rr = k * std::log(e) + n_minus_k * std::log(1.0 - e);
  const double log_ra = (k + n_minus_k) * std::log(0.5);
  const double log_aa = k * std::log(1.0 - e) + n_minus_k * std::log(e);
  const double theta = options_.indel_heterozygosity;
  GenotypePosteriors posteriors =
      Normalize(log_rr + std::log(1.0 - 1.5 * theta), log_ra + std::log(theta),
                log_aa + std::log(theta / 2.0));
  if (posteriors.hom_ref >= posteriors.het && posteriors.hom_ref >= posteriors.hom_alt) {
    return std::nullopt;
  }
  const double qual = QualFromHomRefPosterior(posteriors.hom_ref);
  if (qual < options_.min_qual) {
    return std::nullopt;
  }
  auto position = Locate(column.location);
  if (!position) {
    return std::nullopt;
  }

  format::VariantRecord record;
  record.contig_index = position->contig_index;
  record.position = position->offset;
  if (is_insertion) {
    record.ref_allele.assign(1, column.ref_base);
    record.alt_allele = record.ref_allele + *best_insertion;
  } else {
    auto deleted = reference_->Slice(column.location, static_cast<size_t>(best_deletion) + 1);
    if (!deleted.ok()) {
      return std::nullopt;  // deletion runs off the contig: evidence is inconsistent
    }
    record.ref_allele = std::string(*deleted);
    record.alt_allele.assign(1, column.ref_base);
  }
  record.qual = qual;
  record.depth = spanning;
  record.alt_fraction = fraction;
  record.genotype = posteriors.het >= posteriors.hom_alt ? "0/1" : "1/1";
  return record;
}

std::vector<format::VariantRecord> GenotypeCaller::CallSite(
    const PileupColumn& column) const {
  std::vector<format::VariantRecord> records;
  if (auto snv = CallSnv(column)) {
    records.push_back(std::move(*snv));
  }
  if (auto indel = CallIndel(column)) {
    records.push_back(std::move(*indel));
  }
  return records;
}

std::vector<format::VariantRecord> GenotypeCaller::CallAll(
    std::span<const PileupColumn> columns) const {
  std::vector<format::VariantRecord> records;
  for (const PileupColumn& column : columns) {
    std::vector<format::VariantRecord> site = CallSite(column);
    records.insert(records.end(), std::make_move_iterator(site.begin()),
                   std::make_move_iterator(site.end()));
  }
  return records;
}

}  // namespace persona::variant
