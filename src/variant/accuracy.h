// Variant-call accuracy scoring against the mutation model's truth set.
//
// The donor generator (src/genome/mutate.h) records every injected variant; this module
// matches caller output against that list by exact (contig, position, ref, alt) identity
// — possible because the generator emits normalized, non-overlapping alleles — and
// reports precision/recall/F1, per-type breakdowns, and genotype concordance among the
// true positives.

#ifndef PERSONA_SRC_VARIANT_ACCURACY_H_
#define PERSONA_SRC_VARIANT_ACCURACY_H_

#include <cstdint>
#include <span>

#include "src/format/vcf.h"
#include "src/genome/mutate.h"

namespace persona::variant {

struct TypeAccuracy {
  int64_t truth = 0;
  int64_t called = 0;
  int64_t true_positives = 0;

  double Precision() const {
    return called == 0 ? 0 : static_cast<double>(true_positives) / static_cast<double>(called);
  }
  double Recall() const {
    return truth == 0 ? 0 : static_cast<double>(true_positives) / static_cast<double>(truth);
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0 ? 0 : 2 * p * r / (p + r);
  }
};

struct VariantAccuracy {
  TypeAccuracy overall;
  TypeAccuracy snv;
  TypeAccuracy insertion;
  TypeAccuracy deletion;
  int64_t genotype_matches = 0;  // true positives whose GT matches the truth zygosity

  double GenotypeConcordance() const {
    return overall.true_positives == 0
               ? 0
               : static_cast<double>(genotype_matches) /
                     static_cast<double>(overall.true_positives);
  }
};

// Scores `calls` against `truth`. Both may be in any order; duplicate calls at the same
// site count once as a TP and the rest as FPs. Records failing FILTER are skipped when
// `passing_only` is set.
//
// When `reference` is non-null, both sides are left-align normalized before matching
// (see normalize.h) — required for fair indel comparison, since equivalent indels in
// repeats admit multiple placements and truth/caller need not agree on one.
VariantAccuracy ScoreVariants(std::span<const genome::TrueVariant> truth,
                              std::span<const format::VariantRecord> calls,
                              bool passing_only = false,
                              const genome::ReferenceGenome* reference = nullptr);

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_ACCURACY_H_
