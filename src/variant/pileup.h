// Pileup engine: per-reference-position summaries of aligned read evidence.
//
// Variant calling is the paper's stated next integration step (§8: "work ongoing to
// integrate comprehensive data filtering and variant calling"). The pileup is its
// substrate: for every reference position covered by reads, collect the observed bases
// with their qualities and strands (for SNVs) and the insertion/deletion events anchored
// there (for indels), after the usual hygiene filters (MAPQ, base quality, duplicates —
// which is why dedup runs first).
//
// The engine is streaming: reads must arrive in non-decreasing alignment-location order
// (i.e., from a location-sorted AGD dataset), and completed columns are flushed as soon
// as no active read can still touch them. Memory is bounded by read length × coverage,
// not by genome size.
//
// Indels follow the VCF anchoring convention: an insertion between p and p+1, or a
// deletion of bases p+1..p+L, are both recorded at anchor position p.

#ifndef PERSONA_SRC_VARIANT_PILEUP_H_
#define PERSONA_SRC_VARIANT_PILEUP_H_

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/align/alignment.h"
#include "src/genome/reference.h"
#include "src/util/result.h"

namespace persona::variant {

struct PileupOptions {
  int min_mapq = 10;        // reads below this never enter the pileup
  int min_base_qual = 13;   // per-base observations below this are dropped
  bool skip_duplicates = true;
  bool skip_secondary = true;
  // Local indel realignment: reads whose CIGAR contains a gap are re-aligned against a
  // padded reference window with affine-gap Smith-Waterman before piling. Unit-cost
  // edit-distance aligners fragment long gaps ambiguously (each read splits the same
  // 8-bp insertion differently), scattering indel evidence across anchors; affine
  // scoring strongly prefers one contiguous gap, so evidence consolidates. This is the
  // pileup-level analogue of GATK's indel realignment step.
  bool realign_indels = true;
  int realign_padding = 16;  // reference window slack on each side of the alignment
};

// One base observation at one column.
struct BaseObservation {
  uint8_t base_code = 0;  // compress::BaseToCode code (A=0 C=1 G=2 T=3 N=4)
  uint8_t qual = 0;       // Phred
  bool reverse = false;   // strand of the carrying read
};

// Summed evidence at one reference position.
struct PileupColumn {
  genome::GenomeLocation location = genome::kInvalidLocation;
  char ref_base = 'N';
  std::vector<BaseObservation> observations;  // after quality filtering
  // Indel events anchored at this position. Insertions keyed by inserted sequence,
  // deletions keyed by deleted length; values are observation counts.
  std::map<std::string, int32_t> insertions;
  std::map<int64_t, int32_t> deletions;
  int32_t spanning_reads = 0;  // reads whose alignment covers this position (indel
                               // denominators; includes reads whose base was filtered)

  int32_t depth() const { return static_cast<int32_t>(observations.size()); }
  // Observation count per base code (A,C,G,T,N).
  std::array<int32_t, 5> BaseCounts() const;
  // Strand-resolved count for one base code: {forward, reverse}.
  std::array<int32_t, 2> StrandCounts(uint8_t base_code) const;
};

class PileupEngine {
 public:
  // `reference` must outlive the engine.
  PileupEngine(const genome::ReferenceGenome* reference, const PileupOptions& options);

  // Adds one aligned read. Unmapped and filtered reads are counted and skipped.
  // Fails if `result.location` is behind an already-flushed column (input not sorted).
  Status AddRead(std::string_view bases, std::string_view qual,
                 const align::AlignmentResult& result);

  // Moves every column with location < `before` into `out` (sorted by location).
  void FlushBefore(genome::GenomeLocation before, std::vector<PileupColumn>* out);

  // Flushes all remaining columns. The engine is reusable afterwards.
  void FlushAll(std::vector<PileupColumn>* out);

  // Largest location L such that no future (sorted) read can contribute to columns
  // before L. Realignment can shift a read's start left by up to realign_padding, so
  // the frontier is pulled back accordingly.
  genome::GenomeLocation flush_frontier() const {
    const genome::GenomeLocation slack =
        options_.realign_indels ? options_.realign_padding : 0;
    return frontier_ > slack ? frontier_ - slack : 0;
  }

  uint64_t reads_used() const { return reads_used_; }
  uint64_t reads_skipped() const { return reads_skipped_; }

 private:
  PileupColumn& ColumnAt(genome::GenomeLocation location);

  // Re-aligns a gap-containing read against a padded reference window (affine SW).
  // On success updates `*location` and `*ops` (soft clips included); on any failure the
  // originals are left untouched and the original alignment is used.
  void RealignGappedRead(std::string_view fwd, genome::GenomeLocation* location,
                         std::vector<align::CigarOp>* ops) const;

  const genome::ReferenceGenome* reference_;
  PileupOptions options_;
  std::map<genome::GenomeLocation, PileupColumn> columns_;  // active window
  genome::GenomeLocation frontier_ = 0;  // no future read may start before this
  uint64_t reads_used_ = 0;
  uint64_t reads_skipped_ = 0;
};

// Convenience for tests and small datasets: piles up everything at once. Reads need not
// be sorted (they are indexed and processed in location order internally).
Result<std::vector<PileupColumn>> BuildPileup(
    const genome::ReferenceGenome& reference, std::span<const std::string> bases,
    std::span<const std::string> quals, std::span<const align::AlignmentResult> results,
    const PileupOptions& options);

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_PILEUP_H_
