// Diploid Bayesian genotype caller over pileup columns.
//
// The model is the classical one used by samtools/GATK-era germline SNV callers:
// at each site, candidate alleles are the reference base and the most-observed
// alternate. For each diploid genotype g in {ref/ref, ref/alt, alt/alt}, the
// likelihood of the observed bases is
//     P(obs | g) = prod_i  (P(b_i | a1) + P(b_i | a2)) / 2
// with per-observation error from the base's Phred quality: P(b | a) = 1 - e when
// b == a, e/3 otherwise. A heterozygosity prior (theta) weights the genotypes, and the
// call's QUAL is the Phred-scaled posterior probability that the site is *not* variant.
//
// Indels use the same posterior machinery on binary support counts (reads showing the
// indel vs spanning reads that do not), with a fixed indel error rate — a simplification
// of haplotype-based callers that matches how the pileup summarizes indel evidence.

#ifndef PERSONA_SRC_VARIANT_CALLER_H_
#define PERSONA_SRC_VARIANT_CALLER_H_

#include <optional>
#include <span>
#include <vector>

#include "src/format/vcf.h"
#include "src/genome/reference.h"
#include "src/variant/pileup.h"

namespace persona::variant {

struct CallerOptions {
  double heterozygosity = 1e-3;        // prior P(het site), the population theta
  double indel_heterozygosity = 1.25e-4;
  double indel_error_rate = 0.01;      // per-read probability of a spurious indel
  int min_depth = 4;                   // columns shallower than this are not called
  double min_qual = 10.0;              // Phred; calls below are suppressed
  double min_alt_fraction = 0.15;      // candidate gate before likelihood evaluation
  int min_indel_observations = 3;
};

// Genotype posterior summary for one site (diagnostics / tests).
struct GenotypePosteriors {
  double hom_ref = 0;
  double het = 0;
  double hom_alt = 0;
};

class GenotypeCaller {
 public:
  // `reference` must outlive the caller.
  GenotypeCaller(const genome::ReferenceGenome* reference, const CallerOptions& options);

  // Calls one column. Returns nullopt when the site is confidently homozygous-reference
  // or fails the depth/quality gates. At most one SNV and one indel can be emitted per
  // column; both are returned in order (SNV first).
  std::vector<format::VariantRecord> CallSite(const PileupColumn& column) const;

  // Calls every column, concatenating records in genome order.
  std::vector<format::VariantRecord> CallAll(std::span<const PileupColumn> columns) const;

  // The SNV genotype posteriors at a column (exposed for tests of the math).
  std::optional<GenotypePosteriors> SnvPosteriors(const PileupColumn& column,
                                                  uint8_t alt_code) const;

 private:
  std::optional<format::VariantRecord> CallSnv(const PileupColumn& column) const;
  std::optional<format::VariantRecord> CallIndel(const PileupColumn& column) const;

  // Converts a genome-global column location to (contig, offset); nullopt if invalid.
  std::optional<genome::ContigPosition> Locate(genome::GenomeLocation location) const;

  const genome::ReferenceGenome* reference_;
  CallerOptions options_;
};

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_CALLER_H_
