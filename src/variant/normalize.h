// Variant normalization: left-alignment and allele trimming (bcftools/vt "norm"
// semantics).
//
// An indel inside or next to a repeat has many equivalent representations — deleting
// either copy of a tandem "AT" yields the same haplotype. Callers, truth sets, and
// aligner gap placement each pick a representation, so exact-site comparison (and any
// dedup keyed on position+alleles) is only meaningful after normalizing both sides to
// the canonical form: alleles trimmed of shared affixes and the variant shifted as far
// left as the reference allows, keeping the single VCF anchor base.
//
// The accuracy scorer normalizes both truth and calls before matching; the call
// pipeline normalizes records as they are emitted.

#ifndef PERSONA_SRC_VARIANT_NORMALIZE_H_
#define PERSONA_SRC_VARIANT_NORMALIZE_H_

#include "src/format/vcf.h"
#include "src/genome/reference.h"

namespace persona::variant {

// Normalizes `record` in place. Requirements: contig/position in range, alleles
// non-empty, record biallelic. SNVs (and any same-length allele pair) pass through with
// affix trimming only. Fails if the record's REF allele does not match the reference
// sequence at its position (the record is then left untouched).
Status NormalizeVariant(const genome::ReferenceGenome& reference,
                        format::VariantRecord* record);

// Convenience: normalizes every record, skipping (not failing on) records that do not
// match the reference. Returns how many records changed.
int64_t NormalizeVariants(const genome::ReferenceGenome& reference,
                          std::span<format::VariantRecord> records);

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_NORMALIZE_H_
