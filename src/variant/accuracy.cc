#include "src/variant/accuracy.h"

#include <map>
#include <tuple>

#include "src/variant/normalize.h"

namespace persona::variant {
namespace {

using SiteKey = std::tuple<int32_t, int64_t, std::string, std::string>;

// Site key after optional left-align normalization. Unnormalizable records (REF
// mismatch etc.) keep their literal key — they then simply fail to match.
SiteKey KeyFor(const genome::ReferenceGenome* reference, int32_t contig_index,
               int64_t position, const std::string& ref_allele,
               const std::string& alt_allele) {
  if (reference != nullptr) {
    format::VariantRecord record;
    record.contig_index = contig_index;
    record.position = position;
    record.ref_allele = ref_allele;
    record.alt_allele = alt_allele;
    if (NormalizeVariant(*reference, &record).ok()) {
      return {record.contig_index, record.position, record.ref_allele,
              record.alt_allele};
    }
  }
  return {contig_index, position, ref_allele, alt_allele};
}

genome::VariantType TypeOf(const format::VariantRecord& record) {
  if (record.snv()) {
    return genome::VariantType::kSnv;
  }
  return record.insertion() ? genome::VariantType::kInsertion
                            : genome::VariantType::kDeletion;
}

TypeAccuracy& ByType(VariantAccuracy& accuracy, genome::VariantType type) {
  switch (type) {
    case genome::VariantType::kSnv:
      return accuracy.snv;
    case genome::VariantType::kInsertion:
      return accuracy.insertion;
    case genome::VariantType::kDeletion:
      return accuracy.deletion;
  }
  return accuracy.snv;  // unreachable
}

}  // namespace

VariantAccuracy ScoreVariants(std::span<const genome::TrueVariant> truth,
                              std::span<const format::VariantRecord> calls,
                              bool passing_only,
                              const genome::ReferenceGenome* reference) {
  VariantAccuracy accuracy;

  struct TruthEntry {
    const genome::TrueVariant* variant;
    bool matched = false;
  };
  std::map<SiteKey, TruthEntry> truth_by_site;
  for (const genome::TrueVariant& variant : truth) {
    ++accuracy.overall.truth;
    ++ByType(accuracy, variant.type).truth;
    truth_by_site.emplace(KeyFor(reference, variant.contig_index, variant.position,
                                 variant.ref_allele, variant.alt_allele),
                          TruthEntry{&variant});
  }

  for (const format::VariantRecord& call : calls) {
    if (passing_only && call.filter != "PASS") {
      continue;
    }
    ++accuracy.overall.called;
    ++ByType(accuracy, TypeOf(call)).called;

    auto it = truth_by_site.find(KeyFor(reference, call.contig_index, call.position,
                                        call.ref_allele, call.alt_allele));
    if (it == truth_by_site.end() || it->second.matched) {
      continue;  // false positive (or a duplicate call of an already-matched site)
    }
    it->second.matched = true;
    ++accuracy.overall.true_positives;
    ++ByType(accuracy, it->second.variant->type).true_positives;
    if (call.genotype == it->second.variant->GenotypeString()) {
      ++accuracy.genotype_matches;
    }
  }
  return accuracy;
}

}  // namespace persona::variant
