// Coverage statistics over pileup columns (the samtools-depth / mosdepth analogue).
//
// Coverage is the quantity the paper's dataset descriptions are phrased in ("typically
// 30 to 50x", §2.1) and the knob the variant-calling bench sweeps; this module turns a
// pileup into the summary a sequencing lab reports: mean/max depth, breadth of coverage
// at thresholds, and a depth histogram. Works from the same PileupColumns the caller
// consumes, so it costs no extra pass over the reads.

#ifndef PERSONA_SRC_VARIANT_COVERAGE_H_
#define PERSONA_SRC_VARIANT_COVERAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/genome/reference.h"
#include "src/variant/pileup.h"

namespace persona::variant {

struct CoverageReport {
  int64_t genome_length = 0;      // denominator for breadth (reference bases)
  int64_t covered_positions = 0;  // columns with depth >= 1
  int64_t total_depth = 0;        // sum of spanning reads over covered columns
  int32_t max_depth = 0;
  std::vector<int64_t> histogram;  // histogram[d] = positions with depth d (capped)

  // Mean depth over the whole genome (uncovered positions count as zero).
  double MeanDepth() const {
    return genome_length == 0
               ? 0
               : static_cast<double>(total_depth) / static_cast<double>(genome_length);
  }
  // Fraction of the genome covered by at least `threshold` reads.
  double Breadth(int32_t threshold = 1) const;
};

struct CoverageOptions {
  int32_t histogram_cap = 255;  // depths above this land in the last bucket
};

// Accumulates columns incrementally (usable inside the streaming call pipeline).
class CoverageAccumulator {
 public:
  CoverageAccumulator(int64_t genome_length, const CoverageOptions& options);

  void Add(const PileupColumn& column);
  void AddAll(std::span<const PileupColumn> columns);

  const CoverageReport& report() const { return report_; }

 private:
  CoverageOptions options_;
  CoverageReport report_;
};

// Convenience: one-shot report for a finished pileup.
CoverageReport ComputeCoverage(const genome::ReferenceGenome& reference,
                               std::span<const PileupColumn> columns,
                               const CoverageOptions& options = {});

}  // namespace persona::variant

#endif  // PERSONA_SRC_VARIANT_COVERAGE_H_
