#include "src/variant/pileup.h"

#include <algorithm>
#include <numeric>

#include "src/align/smith_waterman.h"
#include "src/compress/base_compaction.h"
#include "src/util/string_util.h"

namespace persona::variant {

std::array<int32_t, 5> PileupColumn::BaseCounts() const {
  std::array<int32_t, 5> counts{};
  for (const BaseObservation& obs : observations) {
    if (obs.base_code < counts.size()) {
      ++counts[obs.base_code];
    }
  }
  return counts;
}

std::array<int32_t, 2> PileupColumn::StrandCounts(uint8_t base_code) const {
  std::array<int32_t, 2> counts{};
  for (const BaseObservation& obs : observations) {
    if (obs.base_code == base_code) {
      ++counts[obs.reverse ? 1 : 0];
    }
  }
  return counts;
}

PileupEngine::PileupEngine(const genome::ReferenceGenome* reference,
                           const PileupOptions& options)
    : reference_(reference), options_(options) {}

void PileupEngine::RealignGappedRead(std::string_view fwd,
                                     genome::GenomeLocation* location,
                                     std::vector<align::CigarOp>* ops) const {
  // Window: the original alignment span, padded on both sides, clipped to the contig.
  auto position = reference_->GlobalToLocal(*location);
  if (!position.ok()) {
    return;
  }
  const auto& contig = reference_->contig(static_cast<size_t>(position->contig_index));
  const genome::GenomeLocation contig_start =
      reference_->contig_start(static_cast<size_t>(position->contig_index));
  int64_t ref_span = 0;
  for (const align::CigarOp& op : *ops) {
    if (op.consumes_reference()) {
      ref_span += op.length;
    }
  }
  const genome::GenomeLocation window_begin =
      std::max(contig_start, *location - options_.realign_padding);
  const genome::GenomeLocation window_end =
      std::min(contig_start + static_cast<int64_t>(contig.sequence.size()),
               *location + ref_span + options_.realign_padding);
  auto window = reference_->Slice(window_begin,
                                  static_cast<size_t>(window_end - window_begin));
  if (!window.ok()) {
    return;
  }

  align::SwResult sw = align::SmithWaterman(*window, fwd);
  if (sw.cigar.empty() ||
      (sw.query_end - sw.query_begin) * 2 < static_cast<int>(fwd.size())) {
    return;  // no alignment, or it covers too little of the read to trust
  }
  auto sw_ops = align::ParseCigar(sw.cigar);
  if (!sw_ops.ok()) {
    return;
  }

  std::vector<align::CigarOp> realigned;
  realigned.reserve(sw_ops->size() + 2);
  if (sw.query_begin > 0) {
    realigned.push_back({'S', sw.query_begin});
  }
  realigned.insert(realigned.end(), sw_ops->begin(), sw_ops->end());
  if (sw.query_end < static_cast<int>(fwd.size())) {
    realigned.push_back({'S', static_cast<int64_t>(fwd.size()) - sw.query_end});
  }
  *location = window_begin + sw.ref_begin;
  *ops = std::move(realigned);
}

PileupColumn& PileupEngine::ColumnAt(genome::GenomeLocation location) {
  auto [it, inserted] = columns_.try_emplace(location);
  if (inserted) {
    it->second.location = location;
    it->second.ref_base = reference_->BaseAt(location);
  }
  return it->second;
}

Status PileupEngine::AddRead(std::string_view bases, std::string_view qual,
                             const align::AlignmentResult& result) {
  if (!result.mapped() || result.mapq < options_.min_mapq ||
      (options_.skip_duplicates && result.duplicate()) ||
      (options_.skip_secondary && (result.flags & align::kFlagSecondary) != 0)) {
    ++reads_skipped_;
    return OkStatus();
  }
  if (result.location < frontier_) {
    return FailedPreconditionError(
        StrFormat("pileup input not sorted: read at %lld after frontier %lld",
                  static_cast<long long>(result.location),
                  static_cast<long long>(frontier_)));
  }
  auto ops_or = align::ParseCigar(result.cigar);
  if (!ops_or.ok() ||
      align::CigarQuerySpan(result.cigar) != static_cast<int64_t>(bases.size()) ||
      qual.size() != bases.size()) {
    ++reads_skipped_;  // malformed alignment record; evidence is untrustworthy
    return OkStatus();
  }
  // The whole reference span must be inside one contig, or the walk would read bases
  // across a contig boundary.
  const int64_t ref_span = align::CigarReferenceSpan(result.cigar);
  if (ref_span <= 0 ||
      !reference_->Slice(result.location, static_cast<size_t>(ref_span)).ok()) {
    ++reads_skipped_;
    return OkStatus();
  }

  frontier_ = std::max(frontier_, result.location);

  // Project onto the forward reference strand (SAM convention: CIGAR and location always
  // refer to the forward strand; reverse reads flip bases and qualities).
  std::string fwd_storage;
  std::string qual_storage;
  std::string_view fwd = bases;
  std::string_view fwd_qual = qual;
  if (result.reverse()) {
    fwd_storage = compress::ReverseComplement(bases);
    qual_storage.assign(qual.rbegin(), qual.rend());
    fwd = fwd_storage;
    fwd_qual = qual_storage;
  }

  genome::GenomeLocation read_start = result.location;
  std::vector<align::CigarOp> ops = *std::move(ops_or);
  if (options_.realign_indels) {
    const bool has_gap = std::any_of(ops.begin(), ops.end(), [](const align::CigarOp& op) {
      return op.op == 'I' || op.op == 'D';
    });
    if (has_gap) {
      RealignGappedRead(fwd, &read_start, &ops);
    }
  }

  genome::GenomeLocation ref_pos = read_start;
  int64_t read_off = 0;
  for (const align::CigarOp& op : ops) {
    switch (op.op) {
      case 'M':
      case '=':
      case 'X':
        for (int64_t i = 0; i < op.length; ++i) {
          PileupColumn& column = ColumnAt(ref_pos + i);
          ++column.spanning_reads;
          const uint8_t q = static_cast<uint8_t>(fwd_qual[static_cast<size_t>(read_off + i)] - 33);
          if (q >= options_.min_base_qual) {
            column.observations.push_back(
                {compress::BaseToCode(fwd[static_cast<size_t>(read_off + i)]), q,
                 result.reverse()});
          }
        }
        ref_pos += op.length;
        read_off += op.length;
        break;
      case 'I':
        if (ref_pos > read_start) {  // leading insertions have no anchor
          PileupColumn& column = ColumnAt(ref_pos - 1);
          ++column.insertions[std::string(
              fwd.substr(static_cast<size_t>(read_off), static_cast<size_t>(op.length)))];
        }
        read_off += op.length;
        break;
      case 'D':
        if (ref_pos > read_start) {
          ++ColumnAt(ref_pos - 1).deletions[op.length];
        }
        for (int64_t i = 0; i < op.length; ++i) {
          ++ColumnAt(ref_pos + i).spanning_reads;  // spanned with a gap
        }
        ref_pos += op.length;
        break;
      case 'N':
        ref_pos += op.length;  // spliced skip: not spanned
        break;
      case 'S':
        read_off += op.length;
        break;
      default:
        break;  // H, P
    }
  }
  ++reads_used_;
  return OkStatus();
}

void PileupEngine::FlushBefore(genome::GenomeLocation before,
                               std::vector<PileupColumn>* out) {
  auto end = columns_.lower_bound(before);
  for (auto it = columns_.begin(); it != end; ++it) {
    out->push_back(std::move(it->second));
  }
  columns_.erase(columns_.begin(), end);
}

void PileupEngine::FlushAll(std::vector<PileupColumn>* out) {
  for (auto& [location, column] : columns_) {
    out->push_back(std::move(column));
  }
  columns_.clear();
}

Result<std::vector<PileupColumn>> BuildPileup(
    const genome::ReferenceGenome& reference, std::span<const std::string> bases,
    std::span<const std::string> quals, std::span<const align::AlignmentResult> results,
    const PileupOptions& options) {
  if (bases.size() != quals.size() || bases.size() != results.size()) {
    return InvalidArgumentError("pileup inputs must have equal lengths");
  }
  // Process in location order so the streaming engine accepts unsorted input here.
  std::vector<size_t> order(bases.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return results[a].location < results[b].location;
  });

  PileupEngine engine(&reference, options);
  for (size_t i : order) {
    Status status = engine.AddRead(bases[i], quals[i], results[i]);
    if (!status.ok()) {
      return status;
    }
  }
  std::vector<PileupColumn> columns;
  engine.FlushAll(&columns);
  return columns;
}

}  // namespace persona::variant
